"""Tests for SMILES tokenisation and validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem import (SmilesTokenError, SmilesValidationError, atom_count,
                        is_atom_token, is_valid_smiles, tokenize,
                        validate_smiles)


class TestTokenize:
    def test_simple_chain(self):
        assert tokenize("CCO") == ["C", "C", "O"]

    def test_two_letter_atoms(self):
        assert tokenize("CClBr") == ["C", "Cl", "Br"]

    def test_bracket_atom(self):
        assert tokenize("C[N+](C)C") == ["C", "[N+]", "(", "C", ")", "C"]

    def test_aromatic_ring(self):
        assert tokenize("c1ccccc1") == ["c", "1", "c", "c", "c", "c", "c", "1"]

    def test_bonds(self):
        assert tokenize("C=C#N") == ["C", "=", "C", "#", "N"]

    def test_two_digit_ring_closure(self):
        assert tokenize("C%12CC%12") == ["C", "%12", "C", "C", "%12"]

    def test_paper_example_db00226(self):
        # The ESPF partitioning example from Sec. III-B.
        smiles = "NC(N)=NCC1COC2(CCCCC2)O1"
        tokens = tokenize(smiles)
        assert "".join(tokens) == smiles
        assert tokens[0] == "N"

    def test_empty_raises(self):
        with pytest.raises(SmilesTokenError):
            tokenize("")

    def test_unknown_character_raises(self):
        with pytest.raises(SmilesTokenError):
            tokenize("CC?")

    def test_lowercase_unknown_aromatic_raises(self):
        with pytest.raises(SmilesTokenError):
            tokenize("Cx")

    def test_roundtrip_concatenation(self):
        smiles = "CC(=O)Oc1ccccc1C(=O)O"  # aspirin
        assert "".join(tokenize(smiles)) == smiles


class TestAtomPredicates:
    def test_atoms(self):
        for token in ("C", "c", "Cl", "Br", "[NH+]", "n", "S"):
            assert is_atom_token(token)

    def test_non_atoms(self):
        for token in ("(", ")", "=", "#", "1", "%12", "/"):
            assert not is_atom_token(token)

    def test_atom_count_aspirin(self):
        assert atom_count("CC(=O)Oc1ccccc1C(=O)O") == 13


class TestValidate:
    @pytest.mark.parametrize("smiles", [
        "CCO",
        "c1ccccc1",
        "CC(=O)Oc1ccccc1C(=O)O",
        "NC(N)=NCC1COC2(CCCCC2)O1",
        "C[N+](=O)[O-]",
        "C1CC1C1CC1",          # ring digit reuse after closure
        "C(F)(F)F",
        "c1ccc2ccccc2c1",
    ])
    def test_valid(self, smiles):
        assert is_valid_smiles(smiles)

    @pytest.mark.parametrize("smiles,fragment", [
        ("(CC)", "start"),           # cannot start with a branch
        ("C(C", "unclosed"),         # unclosed branch
        ("CC)", "unbalanced"),       # close without open
        ("C()C", "empty"),           # empty branch
        ("C1CC", "ring"),            # unclosed ring
        ("=CC", "bond"),             # leading bond
        ("CC=", "dangling"),         # trailing bond
        ("C(=)C", "dangling"),       # bond dangling before ')'
        ("C((C))", "branch"),        # '(' directly after '('
        ("1CC1", "ring closure"),    # ring digit before any atom
    ])
    def test_invalid(self, smiles, fragment):
        with pytest.raises(SmilesValidationError):
            validate_smiles(smiles)
        assert not is_valid_smiles(smiles)

    def test_validate_returns_tokens(self):
        assert validate_smiles("CCO") == ["C", "C", "O"]

    def test_lexical_error_becomes_validation_error(self):
        with pytest.raises(SmilesValidationError):
            validate_smiles("C?C")


@settings(max_examples=50, deadline=None)
@given(st.text(alphabet="CNOScnos", min_size=1, max_size=20))
def test_property_plain_atom_strings_tokenize_losslessly(text):
    assert "".join(tokenize(text)) == text
