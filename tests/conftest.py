"""Shared pytest fixtures.

Also makes ``repro`` importable straight from the source tree when the
package has not been installed (offline environments without wheel support).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
