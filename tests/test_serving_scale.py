"""Tests for the scale-aware screening engine: deterministic top-k
selection, sharded catalogs, blockwise/batched/approximate screening, and
persistence of the precomputed decoder projections.

The engine's exact mode promises *bitwise* determinism: identical scores
and rankings for every block size, shard count, shard layout, and
query-batch size — all equal to the single-block reference
``HyGNN.screen_probs``.  These tests pin that contract down.
"""

import numpy as np
import pytest

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.serving import (DDIScreeningService, ShardedEmbeddingCatalog,
                           TopKAccumulator, merge_top_k, top_k_desc)


def _corpus(n=40, seed=11):
    return [r.smiles for r in MoleculeGenerator(seed=seed).generate_corpus(n)]


@pytest.fixture(scope="module", params=["mlp", "dot"])
def setup(request):
    corpus = _corpus()
    config = HyGNNConfig(parameter=4, embed_dim=16, hidden_dim=16, seed=3,
                         decoder=request.param)
    model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
    return corpus, config, model, hypergraph, builder


def _service(setup, **kwargs):
    corpus, _, model, _, builder = setup
    return DDIScreeningService(model, builder, corpus, **kwargs)


def _legacy_screen(service, model, query, top_k, symmetric=False):
    """The pre-engine screen path: full pair materialization + stable argsort."""
    n = service.num_drugs
    candidates = np.arange(n, dtype=np.int64)
    pairs = np.stack([np.full_like(candidates, query), candidates], axis=1)
    probs = model.predict_proba_from_embeddings(service.embeddings, pairs)
    if symmetric:
        probs = 0.5 * (probs + model.predict_proba_from_embeddings(
            service.embeddings, pairs[:, ::-1]))
    order = [j for j in np.argsort(-probs, kind="stable") if j != query]
    return [(int(j), probs[j]) for j in order[:top_k]]


# ---------------------------------------------------------------------------
# top-k selection primitives
# ---------------------------------------------------------------------------
class TestTopK:
    def test_matches_stable_argsort_with_ties(self):
        rng = np.random.default_rng(0)
        for trial in range(50):
            n = int(rng.integers(1, 200))
            # Heavy quantization forces many exact ties.
            scores = np.round(rng.random(n), 1)
            k = int(rng.integers(0, n + 2))
            expected = np.argsort(-scores, kind="stable")[:k]
            np.testing.assert_array_equal(top_k_desc(scores, k), expected)

    def test_empty_and_degenerate(self):
        assert len(top_k_desc(np.zeros(0), 5)) == 0
        assert len(top_k_desc(np.array([1.0, 2.0]), 0)) == 0
        assert len(top_k_desc(np.array([1.0, 2.0]), -1)) == 0
        np.testing.assert_array_equal(top_k_desc(np.array([1.0, 2.0]), 10),
                                      [1, 0])

    def test_all_equal_scores_prefer_low_indices(self):
        np.testing.assert_array_equal(top_k_desc(np.full(10, 0.5), 3),
                                      [0, 1, 2])

    def test_boundary_ties_in_unsorted_blocks_prefer_low_global_index(self):
        """A block may arrive with descending global indices (permuted shard
        layouts); tie-breaking must still follow the global index order."""
        acc = TopKAccumulator(1)
        acc.update(np.array([5.0, 5.0]), np.array([7, 2]))
        indices, _ = acc.result()
        np.testing.assert_array_equal(indices, [2])
        acc = TopKAccumulator(2)
        acc.update(np.array([1.0, 3.0, 3.0, 3.0]), np.array([9, 8, 0, 4]))
        indices, scores = acc.result()
        np.testing.assert_array_equal(indices, [0, 4])
        np.testing.assert_array_equal(scores, [3.0, 3.0])

    def test_streaming_independent_of_blocking(self):
        rng = np.random.default_rng(1)
        scores = np.round(rng.random(500), 2)
        expected = np.argsort(-scores, kind="stable")[:17]
        for block in (1, 7, 100, 500, 1000):
            acc = TopKAccumulator(17)
            for start in range(0, 500, block):
                acc.update(scores[start:start + block],
                           np.arange(start, min(start + block, 500)))
            indices, values = acc.result()
            np.testing.assert_array_equal(indices, expected)
            np.testing.assert_array_equal(values, scores[expected])

    def test_merge_equals_global_selection(self):
        rng = np.random.default_rng(2)
        scores = np.round(rng.random(300), 2)
        expected = np.argsort(-scores, kind="stable")[:9]
        parts = np.array_split(rng.permutation(300), 4)
        shard_results = []
        for part in parts:
            acc = TopKAccumulator(9)
            acc.update(scores[part], part)
            shard_results.append(acc.result())
        merged_idx, merged_sc = merge_top_k(shard_results, 9)
        np.testing.assert_array_equal(merged_idx, expected)
        np.testing.assert_array_equal(merged_sc, scores[expected])

    def test_batch_top_k_sets_matches_scalar_sets(self):
        from repro.serving.topk import batch_top_k_sets, top_k_set
        rng = np.random.default_rng(3)
        for _ in range(50):
            num_queries = int(rng.integers(1, 8))
            n = int(rng.integers(1, 120))
            k = int(rng.integers(0, n + 2))
            # Heavy quantization forces many exact ties.
            scores = np.round(rng.random((num_queries, n)), 1)
            cols = batch_top_k_sets(scores, k)
            for qi in range(num_queries):
                np.testing.assert_array_equal(
                    cols[qi], np.sort(top_k_set(scores[qi], k)))

    def test_batched_screen_shard_matches_accumulators(self):
        """The vectorised per-shard screen is bitwise the accumulator path
        for every blocking, tie pattern, and per-query budget mix."""
        from repro.serving.shards import (ShardedEmbeddingCatalog,
                                          _screen_shard_batched)
        rng = np.random.default_rng(4)
        for _ in range(60):
            n = int(rng.integers(1, 100))
            num_queries = int(rng.integers(1, 6))
            block = int(rng.integers(1, 40))
            dtype = rng.choice([np.float32, np.float64])
            scores = rng.integers(0, 4, size=(num_queries, n)).astype(dtype)
            emb = rng.standard_normal((n, 3))
            catalog = ShardedEmbeddingCatalog(emb, {"emb": emb},
                                              num_shards=1,
                                              block_size=block)
            offset = [0]

            def score_block(emb_block, _proj_block):
                start = offset[0]
                offset[0] += len(emb_block)
                return scores[:, start:offset[0]]

            padded = [int(rng.integers(0, 13)) for _ in range(num_queries)]
            got = _screen_shard_batched(catalog._shards[0], block,
                                        score_block, num_queries, padded)
            accs = [TopKAccumulator(k) for k in padded]
            for start in range(0, n, block):
                stop = min(start + block, n)
                for qi in range(num_queries):
                    accs[qi].update(scores[qi, start:stop],
                                    np.arange(start, stop))
            for qi in range(num_queries):
                want_idx, want_sc = accs[qi].result()
                got_idx, got_sc = got[qi]
                np.testing.assert_array_equal(got_idx, want_idx)
                np.testing.assert_array_equal(got_sc, want_sc)
                assert got_sc.dtype == want_sc.dtype


# ---------------------------------------------------------------------------
# sharded catalog
# ---------------------------------------------------------------------------
class TestShardedCatalog:
    def _catalog_and_scores(self, seed=0, n=120, d=8):
        rng = np.random.default_rng(seed)
        emb = rng.standard_normal((n, d))
        query = rng.standard_normal(d)
        scores = np.round(emb @ query, 1)  # ties likely after rounding

        def score_block(emb_block, _proj):
            return np.round(emb_block @ query, 1)[None, :]

        return emb, scores, score_block

    def test_screen_matches_argsort(self):
        emb, scores, fn = self._catalog_and_scores()
        catalog = ShardedEmbeddingCatalog(emb, block_size=13, num_shards=3)
        (indices, values), = catalog.screen(fn, 1, 10)
        expected = np.argsort(-scores, kind="stable")[:10]
        np.testing.assert_array_equal(indices, expected)
        np.testing.assert_array_equal(values, scores[expected])

    def test_identical_across_shard_layouts(self):
        emb, scores, fn = self._catalog_and_scores(seed=3)
        rng = np.random.default_rng(7)
        reference = None
        layouts = [None] + [np.array_split(rng.permutation(len(emb)), s)
                            for s in (1, 2, 5)]
        for layout in layouts:
            catalog = ShardedEmbeddingCatalog(
                emb, block_size=17,
                num_shards=4 if layout is None else 1, layout=layout)
            (indices, values), = catalog.screen(fn, 1, 12)
            if reference is None:
                reference = (indices, values)
            np.testing.assert_array_equal(indices, reference[0])
            np.testing.assert_array_equal(values, reference[1])

    def test_exclusions_and_short_catalogs(self):
        emb, scores, fn = self._catalog_and_scores(seed=5, n=6)
        catalog = ShardedEmbeddingCatalog(emb, block_size=2, num_shards=2)
        exclude = np.array([0, 3])
        (indices, _), = catalog.screen(fn, 1, 10, exclude=exclude)
        assert set(indices.tolist()).isdisjoint({0, 3})
        assert len(indices) == 4  # fewer than top_k eligible -> fewer hits

    def test_int_list_exclude_is_shared_not_per_query(self):
        emb, scores, fn2 = self._catalog_and_scores(seed=9, n=12)

        def fn(emb_block, _proj):
            base = fn2(emb_block, _proj)
            return np.concatenate([base, base], axis=0)  # 2 queries

        catalog = ShardedEmbeddingCatalog(emb, block_size=5)
        results = catalog.screen(fn, 2, 12, exclude=[3, 5])
        for indices, _ in results:  # both rows excluded for BOTH queries
            assert set(indices.tolist()).isdisjoint({3, 5})

    def test_one_dim_score_fn_rejected_on_every_block(self):
        """A (block,)-shaped score fn must fail loudly on multi-block
        catalogs, not just when the catalog happens to fit one block."""
        emb = np.random.default_rng(0).standard_normal((10, 4))
        catalog = ShardedEmbeddingCatalog(emb, block_size=4)
        with pytest.raises(ValueError, match="expected"):
            catalog.screen(lambda e, _p: np.zeros(len(e)), 2, 3)
        # 1-D returns are still fine for a single query (atleast_2d).
        (indices, _), = catalog.screen(lambda e, _p: np.zeros(len(e)), 1, 3)
        np.testing.assert_array_equal(indices, [0, 1, 2])

    def test_bad_layout_rejected(self):
        emb = np.zeros((10, 3))
        with pytest.raises(ValueError, match="partition"):
            ShardedEmbeddingCatalog(emb, layout=[np.arange(4)])
        with pytest.raises(ValueError, match="partition"):
            ShardedEmbeddingCatalog(emb, layout=[np.arange(10),
                                                 np.array([2])])

    def test_default_shards_are_views(self):
        emb = np.arange(60, dtype=np.float64).reshape(20, 3)
        proj = {"p": emb * 2.0}
        catalog = ShardedEmbeddingCatalog(emb, proj, num_shards=3)
        for shard in catalog.shards:
            assert shard.embeddings.base is not None
            assert np.shares_memory(shard.embeddings, emb)
            assert np.shares_memory(shard.projections["p"], proj["p"])

    def test_mismatched_projection_rows_rejected(self):
        with pytest.raises(ValueError, match="projection"):
            ShardedEmbeddingCatalog(np.zeros((5, 2)),
                                    {"p": np.zeros((4, 2))})


# ---------------------------------------------------------------------------
# engine screening: bitwise invariance and legacy parity
# ---------------------------------------------------------------------------
class TestEngineParity:
    def test_engine_matches_legacy_ranking(self, setup):
        corpus, _, model, _, _ = setup
        service = _service(setup, block_size=7, num_shards=3)
        for symmetric in (False, True):
            hits = service.screen(4, top_k=8, symmetric=symmetric)
            legacy = _legacy_screen(service, model, 4, 8, symmetric=symmetric)
            assert [h.index for h in hits] == [j for j, _ in legacy]
            for hit, (_, prob) in zip(hits, legacy):
                # The dot kernel is bitwise the legacy op; the MLP split
                # kernel is the same real-valued function with a different
                # BLAS reduction order (ULP-level differences only).
                if model.config.decoder == "dot":
                    assert hit.probability == prob
                else:
                    assert hit.probability == pytest.approx(prob, abs=1e-12)

    def test_bitwise_invariant_to_block_and_shard_choices(self, setup):
        reference = None
        for block_size, num_shards in [(1024, 1), (1, 1), (7, 3), (16, 5),
                                       (1000, 4)]:
            service = _service(setup, block_size=block_size,
                               num_shards=num_shards)
            hits = service.screen(2, top_k=10)
            key = [(h.index, h.probability) for h in hits]
            if reference is None:
                reference = key
            assert key == reference, (block_size, num_shards)

    def test_engine_matches_single_block_reference(self, setup):
        corpus, _, model, _, _ = setup
        service = _service(setup, block_size=5, num_shards=4)
        reference = model.screen_probs(
            service.embeddings[3], model.candidate_projections(
                service.embeddings))[0]
        hits = service.screen(3, top_k=len(corpus))
        for hit in hits:
            assert hit.probability == reference[hit.index]

    def test_tied_probabilities_break_by_index(self, setup):
        corpus, _, model, _, builder = setup
        # Duplicate SMILES produce bitwise-identical embeddings, hence
        # exactly tied probabilities -> ties must resolve by ascending index.
        duplicated = corpus + [corpus[0], corpus[1], corpus[0]]
        service = DDIScreeningService(model, builder, duplicated,
                                      block_size=3, num_shards=2)
        hits = service.screen(5, top_k=len(duplicated))
        legacy = _legacy_screen(service, model, 5, len(duplicated))
        assert [h.index for h in hits] == [j for j, _ in legacy]

    def test_screen_batch_matches_individual_screens(self, setup):
        service = _service(setup, block_size=11, num_shards=2)
        queries = [0, 5, "drug_9", 17]
        batched = service.screen_batch(queries, top_k=6)
        assert len(batched) == len(queries)
        for query, hits in zip(queries, batched):
            single = service.screen(query, top_k=6)
            assert [(h.index, h.probability) for h in hits] == \
                [(h.index, h.probability) for h in single]

    def test_screen_batch_symmetric_and_exclude(self, setup):
        service = _service(setup, block_size=13)
        batched = service.screen_batch([1, 2], top_k=4, exclude=(3, "drug_0"),
                                       symmetric=True)
        for qi, hits in zip([1, 2], batched):
            single = service.screen(qi, top_k=4, exclude=(3, "drug_0"),
                                    symmetric=True)
            assert [(h.index, h.probability) for h in hits] == \
                [(h.index, h.probability) for h in single]
            assert {h.index for h in hits}.isdisjoint({0, 3, qi})

    def test_screen_batch_empty(self, setup):
        assert _service(setup).screen_batch([], top_k=3) == []

    def test_screen_smiles_rides_the_engine(self, setup):
        corpus, _, model, _, builder = setup
        new = _corpus(1, seed=101)[0]
        transient = _service(setup, block_size=9, num_shards=2)
        hits_transient = transient.screen_smiles(new, top_k=5)
        assert transient.num_drugs == len(corpus)
        registered = _service(setup)
        registered.register_drug(new, drug_id="q")
        hits_registered = registered.screen("q", top_k=5)
        assert [h.index for h in hits_transient] == \
            [h.index for h in hits_registered]
        for a, b in zip(hits_transient, hits_registered):
            assert a.probability == b.probability

    def test_engine_rebuilds_after_weight_update(self, setup):
        corpus, _, model, _, _ = setup
        service = _service(setup, block_size=8, num_shards=2)
        before = service.screen(1, top_k=5)
        original = model.encoder.node_embedding.data.copy()
        try:
            model.encoder.node_embedding.data += 0.05
            after = service.screen(1, top_k=5)
            legacy = _legacy_screen(service, model, 1, 5)
            assert [h.index for h in after] == [j for j, _ in legacy]
            assert [h.probability for h in before] != \
                [h.probability for h in after]
        finally:
            model.encoder.node_embedding.data = original

    def test_engine_sees_registered_drugs(self, setup):
        corpus, _, model, _, _ = setup
        service = _service(setup, block_size=6, num_shards=3)
        service.screen(0, top_k=3)  # build the engine for the base catalog
        index = service.register_drug(corpus[7], drug_id="twin_of_7")
        hits = service.screen(7, top_k=service.num_drugs)
        assert index in [h.index for h in hits]
        legacy = _legacy_screen(service, model, 7, service.num_drugs)
        assert [h.index for h in hits] == [j for j, _ in legacy]


class TestScreenEdgeCases:
    """Degenerate screening shapes the out-of-core/parallel tier must honor
    identically to the in-memory engine (see also the mmap round-trip
    parity tests in tests/test_serving_store.py)."""

    def test_top_k_zero(self, setup):
        service = _service(setup, block_size=4, num_shards=2)
        assert service.screen(0, top_k=0) == []
        assert service.screen_batch([1, 2], top_k=0) == [[], []]

    def test_top_k_exceeds_catalog(self, setup):
        corpus, _, model, _, _ = setup
        service = _service(setup, block_size=6, num_shards=3)
        hits = service.screen(4, top_k=10 * len(corpus))
        assert len(hits) == len(corpus) - 1  # everything except the query
        legacy = _legacy_screen(service, model, 4, len(corpus))
        assert [h.index for h in hits] == [j for j, _ in legacy]

    def test_single_drug_catalog(self, setup):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus[:1])
        assert service.screen(0, top_k=5) == []  # only itself, excluded
        pairs = service.score_pairs(np.array([[0, 0]]))
        assert pairs.shape == (1,)

    def test_every_candidate_excluded(self, setup):
        service = _service(setup, block_size=5, num_shards=2)
        everyone = tuple(range(service.num_drugs))
        assert service.screen(3, top_k=4, exclude=everyone) == []
        batched = service.screen_batch([0, 7], top_k=4, exclude=everyone)
        assert batched == [[], []]

    def test_edge_cases_survive_mmap_round_trip(self, setup, tmp_path):
        service = _service(setup, block_size=5, num_shards=2)
        service.save_shards(tmp_path / "store", num_shards=3)
        assert service.open_shards(tmp_path / "store")
        assert service.screen(0, top_k=0) == []
        everyone = tuple(range(service.num_drugs))
        assert service.screen(3, top_k=4, exclude=everyone) == []
        hits = service.screen(4, top_k=10 * service.num_drugs)
        assert len(hits) == service.num_drugs - 1


class TestApproximateMode:
    def test_dot_approx_with_full_oversample_matches_exact(self, setup):
        _, config, *_ = setup
        if config.decoder != "dot":
            pytest.skip("approximate mode is dot-decoder only")
        service = _service(setup, block_size=9, num_shards=2)
        exact = service.screen(3, top_k=5)
        approx = service.screen(3, top_k=5, approx=True,
                                approx_oversample=service.num_drugs)
        assert [(h.index, h.probability) for h in approx] == \
            [(h.index, h.probability) for h in exact]

    def test_dot_approx_default_oversample_finds_top(self, setup):
        _, config, *_ = setup
        if config.decoder != "dot":
            pytest.skip("approximate mode is dot-decoder only")
        service = _service(setup)
        exact = service.screen(6, top_k=3)
        approx = service.screen(6, top_k=3, approx=True)
        # The prefilter ranks by the same inner products (different BLAS
        # reduction); with 4x oversampling the true top-3 must survive.
        assert [h.index for h in approx] == [h.index for h in exact]
        for a, e in zip(approx, exact):
            assert a.probability == e.probability  # exact rerank

    def test_mlp_approx_with_full_oversample_matches_exact(self, setup):
        _, config, *_ = setup
        if config.decoder != "mlp":
            pytest.skip("sketch prefilter test targets the MLP decoder")
        service = _service(setup, block_size=9, num_shards=2)
        exact = service.screen(3, top_k=5)
        # Full oversampling shortlists the entire catalog, so the sketch
        # surrogate cannot drop anyone and the exact rerank must reproduce
        # exact mode bitwise.
        approx = service.screen(3, top_k=5, approx=True,
                                approx_oversample=service.num_drugs)
        assert [(h.index, h.probability) for h in approx] == \
            [(h.index, h.probability) for h in exact]

    def test_mlp_approx_symmetric_reranks_two_sided(self, setup):
        _, config, *_ = setup
        if config.decoder != "mlp":
            pytest.skip("sketch prefilter test targets the MLP decoder")
        service = _service(setup)
        exact = service.screen(5, top_k=4, symmetric=True)
        approx = service.screen(5, top_k=4, symmetric=True, approx=True,
                                approx_oversample=service.num_drugs)
        # Shortlisting is forward-orientation only, but the rerank averages
        # both orientations like exact mode does.
        assert [(h.index, h.probability) for h in approx] == \
            [(h.index, h.probability) for h in exact]

    def test_bad_oversample_rejected(self, setup):
        with pytest.raises(ValueError, match="approx_oversample"):
            _service(setup).screen(0, top_k=3, approx=True,
                                   approx_oversample=0)


# ---------------------------------------------------------------------------
# vectorized lookups and validation messages
# ---------------------------------------------------------------------------
class TestVectorizedLookups:
    def test_score_id_pairs_matches_index_pairs(self, setup):
        service = _service(setup)
        id_pairs = [("drug_0", "drug_3"), ("drug_7", "drug_1"),
                    ("drug_19", "drug_19")]
        np.testing.assert_array_equal(
            service.score_id_pairs(id_pairs),
            service.score_pairs(np.array([[0, 3], [7, 1], [19, 19]])))

    def test_score_id_pairs_empty(self, setup):
        assert len(_service(setup).score_id_pairs([])) == 0

    def test_score_id_pairs_after_registration(self, setup):
        corpus, *_ = setup
        service = _service(setup)
        service.score_id_pairs([("drug_0", "drug_1")])  # build the table
        index = service.register_drug(corpus[0], drug_id="zz_late")
        scores = service.score_id_pairs([("zz_late", "drug_2")])
        np.testing.assert_array_equal(
            scores, service.score_pairs(np.array([[index, 2]])))

    def test_unknown_id_names_pair_position(self, setup):
        service = _service(setup)
        with pytest.raises(KeyError, match=r"'nope'.*pair 1"):
            service.score_id_pairs([("drug_0", "drug_1"),
                                    ("nope", "drug_2")])

    def test_check_pairs_reports_offending_index(self, setup):
        service = _service(setup)
        n = service.num_drugs
        with pytest.raises(IndexError, match=rf"pair 1, position 0.*{n}"):
            service.score_pairs(np.array([[0, 1], [n, 2]]))
        with pytest.raises(IndexError, match="pair 0, position 1.*-4"):
            service.score_pairs(np.array([[0, -4]]))


# ---------------------------------------------------------------------------
# persistence of the precomputed projections
# ---------------------------------------------------------------------------
class TestProjectionPersistence:
    def test_round_trip_is_bitwise(self, setup, tmp_path):
        service = _service(setup)
        expected = service.screen(2, top_k=6)
        path = service.save_cache(tmp_path / "cache.npz")

        warm = _service(setup, block_size=10, num_shards=2)
        assert warm.load_cache(path)
        assert warm._cache.projections is not None  # no lazy recompute needed
        saved_keys = set(service._cache.projections)
        assert set(warm._cache.projections) == saved_keys
        for name in saved_keys:
            np.testing.assert_array_equal(warm._cache.projections[name],
                                          service._cache.projections[name])
        hits = warm.screen(2, top_k=6)
        assert [(h.index, h.probability) for h in hits] == \
            [(h.index, h.probability) for h in expected]
        assert warm.stats.corpus_encodes == 0

    def test_snapshot_without_projections_recomputes_lazily(self, setup,
                                                            tmp_path):
        service = _service(setup)
        expected = service.screen(4, top_k=5)
        service._cache.projections = None  # emulate a pre-projection snapshot
        path = service._cache.save(tmp_path / "old.npz",
                                   catalog_digest=service._catalog_digest())

        warm = _service(setup)
        assert warm.load_cache(path)
        assert warm._cache.projections is None
        hits = warm.screen(4, top_k=5)
        assert warm._cache.projections is not None
        assert [(h.index, h.probability) for h in hits] == \
            [(h.index, h.probability) for h in expected]
        assert warm.stats.corpus_encodes == 0

    def test_dot_projections_alias_embeddings(self, setup, tmp_path):
        """The dot decoder's identity 'projection' must never duplicate the
        embedding matrix — not in memory, not in snapshots, not on append."""
        corpus, config, model, _, builder = setup
        if config.decoder != "dot":
            pytest.skip("aliasing applies to the dot decoder")
        service = _service(setup)
        service.screen(0, top_k=2)
        assert service._cache.projections["emb"] is service._cache.embeddings
        service.register_drug(corpus[1], drug_id="alias-check")
        assert service._cache.projections["emb"] is service._cache.embeddings
        path = service.save_cache(tmp_path / "dot.npz")
        with np.load(path) as archive:
            assert "projection_emb" not in archive.files  # not written twice
        warm = _service(setup)
        assert warm.load_cache(path) is False  # different catalog (appended)
        same = DDIScreeningService(
            model, builder, corpus + [corpus[1]],
            drug_ids=[f"drug_{i}" for i in range(len(corpus))]
            + ["alias-check"])
        assert same.load_cache(path)
        assert same._cache.projections["emb"] is same._cache.embeddings

    def test_registration_appends_projection_rows(self, setup):
        corpus, _, model, _, _ = setup
        service = _service(setup)
        service.screen(0, top_k=2)
        index = service.register_drug(corpus[3], drug_id="extra")
        projections = service._cache.projections
        assert all(len(matrix) == service.num_drugs
                   for matrix in projections.values())
        recomputed = model.candidate_projections(service.embeddings)
        for name in recomputed:
            np.testing.assert_allclose(projections[name], recomputed[name],
                                       rtol=0, atol=1e-12)
        assert index == len(corpus)


class TestServiceValidation:
    def test_bad_engine_knobs_rejected(self, setup):
        corpus, _, model, _, builder = setup
        with pytest.raises(ValueError, match="block_size"):
            DDIScreeningService(model, builder, corpus, block_size=0)
        with pytest.raises(ValueError, match="num_shards"):
            DDIScreeningService(model, builder, corpus, num_shards=0)

    def test_more_shards_than_drugs(self, setup):
        corpus, _, model, _, _ = setup
        service = _service(setup, num_shards=len(corpus) + 25, block_size=1)
        legacy = _legacy_screen(service, model, 0, 5)
        hits = service.screen(0, top_k=5)
        assert [h.index for h in hits] == [j for j, _ in legacy]
