"""Tests for the asyncio serving gateway and the heterogeneous batch entry
points it coalesces into: dynamic micro-batching parity (bitwise vs serial
``screen``), admission control, per-request deadlines, graceful drain,
poison-request isolation, invalidation racing in-flight batches, and the
latency/throughput stats."""

import asyncio

import numpy as np
import pytest

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.serving import (DDIScreeningService, DeadlineExceeded,
                           GatewayClosed, GatewayOverloaded, LatencyWindow,
                           ScreeningGateway)
from repro.serving.shards import normalize_top_k


def _corpus(n=40, seed=11):
    return [r.smiles for r in MoleculeGenerator(seed=seed).generate_corpus(n)]


@pytest.fixture(scope="module")
def setup():
    corpus = _corpus()
    config = HyGNNConfig(parameter=4, embed_dim=16, hidden_dim=16, seed=3)
    model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
    return corpus, config, model, builder


def _service(setup, **kwargs):
    corpus, _, model, builder = setup
    return DDIScreeningService(model, builder, corpus, **kwargs)


@pytest.fixture
def service(setup):
    return _service(setup)


def _hits(results):
    return [[(h.index, h.probability) for h in hits] for hits in results]


# ---------------------------------------------------------------------------
# Heterogeneous batch entry points (the service side of the gateway)
# ---------------------------------------------------------------------------
class TestHeterogeneousBatch:
    def test_per_query_top_k_matches_serial_bitwise(self, service):
        queries = [0, 7, 3, 12]
        top_ks = [5, 1, 9, 3]
        batched = service.screen_batch(queries, top_k=top_ks)
        serial = [service.screen(q, top_k=k) for q, k in zip(queries, top_ks)]
        assert _hits(batched) == _hits(serial)

    def test_per_query_top_k_sharded_engine(self, setup):
        service = _service(setup, block_size=7, num_shards=3)
        queries = [2, 2, 9]
        top_ks = [8, 2, 4]
        batched = service.screen_batch(queries, top_k=top_ks)
        serial = [service.screen(q, top_k=k) for q, k in zip(queries, top_ks)]
        assert _hits(batched) == _hits(serial)

    def test_per_query_exclude_matches_serial_bitwise(self, service):
        queries = [0, 1, 5]
        excludes = [(2, 3), (), ("drug_0", 7)]
        batched = service.screen_batch(queries, top_k=4, exclude=excludes)
        serial = [service.screen(q, top_k=4, exclude=e)
                  for q, e in zip(queries, excludes)]
        assert _hits(batched) == _hits(serial)

    def test_mixed_top_k_and_exclude(self, service):
        queries = [4, 4, 8]
        top_ks = [2, 6, 3]
        excludes = [(1,), (1, 2, 3), ()]
        batched = service.screen_batch(queries, top_k=top_ks,
                                       exclude=excludes)
        serial = [service.screen(q, top_k=k, exclude=e)
                  for q, k, e in zip(queries, top_ks, excludes)]
        assert _hits(batched) == _hits(serial)

    def test_flat_exclude_stays_shared(self, service):
        # Two ints for two queries must mean "exclude rows 3 and 5 for
        # every query", not per-query.
        batched = service.screen_batch([0, 1], top_k=4, exclude=(3, 5))
        serial = [service.screen(q, top_k=4, exclude=(3, 5)) for q in (0, 1)]
        assert _hits(batched) == _hits(serial)

    def test_per_query_exclude_length_mismatch(self, service):
        with pytest.raises(ValueError, match="per-query exclude"):
            service.screen_batch([0, 1, 2], exclude=[(1,), (2,)])

    def test_per_query_top_k_length_mismatch(self, service):
        with pytest.raises(ValueError, match="per-query top_k"):
            service.screen_batch([0, 1, 2], top_k=[1, 2])

    def test_screen_smiles_batch_matches_serial_bitwise(self, setup):
        corpus, *_ = setup
        service = _service(setup)
        smiles = [corpus[3], corpus[17], corpus[8]]
        top_ks = [4, 2, 6]
        batched = service.screen_smiles_batch(smiles, top_k=top_ks)
        serial = [service.screen_smiles(s, top_k=k)
                  for s, k in zip(smiles, top_ks)]
        assert _hits(batched) == _hits(serial)

    def test_empty_batches(self, service):
        assert service.screen_batch([]) == []
        assert service.screen_smiles_batch([]) == []

    def test_normalize_top_k(self):
        assert normalize_top_k(3, 2) == [3, 3]
        assert normalize_top_k([1, 2], 2) == [1, 2]
        assert normalize_top_k(np.int32(4), 1) == [4]
        with pytest.raises(TypeError):
            normalize_top_k(True, 1)
        with pytest.raises(TypeError):
            normalize_top_k([1, False], 2)
        with pytest.raises(TypeError):
            normalize_top_k(2.5, 1)
        with pytest.raises(ValueError):
            normalize_top_k([1, 2, 3], 2)


# ---------------------------------------------------------------------------
# Gateway: batching parity
# ---------------------------------------------------------------------------
class TestGatewayParity:
    def test_mixed_flush_bitwise_identical_to_serial(self, setup):
        corpus, *_ = setup
        service = _service(setup)
        specs = [(0, 5, ()), (1, 3, (2, 5)), (7, 7, ()),
                 (3, 1, ("drug_0",)), (0, 2, ()), (12, 4, (0, 1, 2))]
        serial = [service.screen(q, top_k=k, exclude=e) for q, k, e in specs]
        pair_lists = [np.array([[0, 1], [2, 3]]), np.array([[5, 6]])]
        pairs_ref = service.score_pairs(np.concatenate(pair_lists))
        smiles_ref = service.screen_smiles(corpus[5], top_k=4)

        async def main():
            async with ScreeningGateway(service, max_batch=16,
                                        max_wait_ms=10) as gateway:
                tasks = [gateway.screen(q, top_k=k, exclude=e)
                         for q, k, e in specs]
                tasks += [gateway.score_pairs(p) for p in pair_lists]
                tasks.append(gateway.screen_smiles(corpus[5], top_k=4))
                return await asyncio.gather(*tasks)

        out = asyncio.run(main())
        assert _hits(out[:6]) == _hits(serial)
        # Coalesced score_pairs equals one vectorized call over the
        # combined batch, sliced back per caller.
        np.testing.assert_array_equal(np.concatenate(out[6:8]), pairs_ref)
        assert _hits([out[8]]) == _hits([smiles_ref])

    def test_single_flush_coalesces_heterogeneous_top_k(self, setup):
        service = _service(setup)
        specs = [(0, 5), (1, 1), (2, 9), (3, 3)]
        serial = [service.screen(q, top_k=k) for q, k in specs]
        base_batches = service.stats.gateway_batches

        async def main():
            async with ScreeningGateway(service, max_batch=4,
                                        max_wait_ms=1000) as gateway:
                return await asyncio.gather(
                    *[gateway.screen(q, top_k=k) for q, k in specs])

        out = asyncio.run(main())
        assert _hits(out) == _hits(serial)
        # All four went out as one coalesced screen_batch call.
        assert service.stats.gateway_batches - base_batches == 1
        assert service.stats.gateway_batch_sizes.get(4, 0) >= 1

    def test_unbatched_gateway_matches_too(self, setup):
        service = _service(setup)
        serial = [service.screen(q, top_k=3) for q in (0, 1, 2)]

        async def main():
            async with ScreeningGateway(service, max_batch=1,
                                        max_wait_ms=0) as gateway:
                return await asyncio.gather(
                    *[gateway.screen(q, top_k=3) for q in (0, 1, 2)])

        assert _hits(asyncio.run(main())) == _hits(serial)


# ---------------------------------------------------------------------------
# Gateway: operational behaviour
# ---------------------------------------------------------------------------
class TestGatewayOperations:
    def test_admission_control_fast_fails(self, setup):
        service = _service(setup)
        service.refresh()  # warm the cache outside the measured path

        async def main():
            gateway = ScreeningGateway(service, max_batch=4,
                                       max_wait_ms=50, max_queue=1)
            results = await asyncio.gather(
                *[gateway.screen(q, top_k=2) for q in (0, 1, 2)],
                return_exceptions=True)
            await gateway.close()
            return results

        results = asyncio.run(main())
        rejected = [r for r in results if isinstance(r, GatewayOverloaded)]
        served = [r for r in results if isinstance(r, list)]
        assert rejected and served
        assert service.stats.gateway_rejections == len(rejected)

    def test_deadline_exceeded_before_flush(self, setup):
        service = _service(setup)
        service.refresh()

        async def main():
            async with ScreeningGateway(service, max_batch=8,
                                        max_wait_ms=60) as gateway:
                return await asyncio.gather(
                    gateway.screen(0, top_k=2, timeout_ms=1),
                    return_exceptions=True)

        (result,) = asyncio.run(main())
        assert isinstance(result, DeadlineExceeded)
        assert service.stats.gateway_expirations == 1

    def test_close_drains_pending_requests(self, setup):
        service = _service(setup)
        serial = [service.screen(q, top_k=3) for q in (0, 1, 2)]

        async def main():
            gateway = ScreeningGateway(service, max_batch=64,
                                       max_wait_ms=60_000)
            tasks = [asyncio.ensure_future(gateway.screen(q, top_k=3))
                     for q in (0, 1, 2)]
            await asyncio.sleep(0.01)  # let the batcher start buffering
            await gateway.close()      # must flush, not abandon
            return await asyncio.gather(*tasks)

        assert _hits(asyncio.run(main())) == _hits(serial)

    def test_closed_gateway_rejects_new_requests(self, setup):
        service = _service(setup)

        async def main():
            gateway = ScreeningGateway(service)
            await gateway.close()
            with pytest.raises(GatewayClosed):
                await gateway.screen(0)

        asyncio.run(main())

    def test_drain_waits_for_backlog(self, setup):
        service = _service(setup)

        async def main():
            gateway = ScreeningGateway(service, max_batch=64,
                                       max_wait_ms=60_000)
            tasks = [asyncio.ensure_future(gateway.screen(q, top_k=2))
                     for q in (0, 1)]
            await asyncio.sleep(0.01)
            await gateway.drain()
            # The request futures are resolved; one loop pass lets the
            # awaiting tasks resume.  max_wait_ms is 60 s, so completion
            # here can only come from the drain-triggered flush.
            done, pending = await asyncio.wait(tasks, timeout=1.0)
            assert not pending
            await gateway.close()

        asyncio.run(main())

    def test_poison_request_fails_alone(self, setup):
        service = _service(setup)
        expected = service.screen(0, top_k=3)

        async def main():
            async with ScreeningGateway(service, max_batch=3,
                                        max_wait_ms=1000) as gateway:
                return await asyncio.gather(
                    gateway.screen(0, top_k=3),
                    gateway.screen("no_such_drug", top_k=3),
                    gateway.screen(0, top_k=3),
                    return_exceptions=True)

        good, bad, good2 = asyncio.run(main())
        assert isinstance(bad, KeyError)
        assert _hits([good]) == _hits([expected])
        assert _hits([good2]) == _hits([expected])

    def test_bad_pairs_fail_at_submit(self, setup):
        service = _service(setup)

        async def main():
            async with ScreeningGateway(service) as gateway:
                with pytest.raises(IndexError):
                    await gateway.score_pairs(
                        np.array([[0, service.num_drugs + 3]]))
                with pytest.raises(TypeError):
                    await gateway.score_pairs(np.array([[True, False]]))

        asyncio.run(main())

    def test_empty_pairs_round_trip(self, setup):
        service = _service(setup)

        async def main():
            async with ScreeningGateway(service) as gateway:
                return await gateway.score_pairs(np.zeros((0, 2), dtype=int))

        assert len(asyncio.run(main())) == 0


# ---------------------------------------------------------------------------
# Invalidation racing an in-flight batch
# ---------------------------------------------------------------------------
class TestInvalidationRace:
    def test_weight_update_between_enqueue_and_flush(self):
        # Dedicated model: the test mutates weights.
        corpus = _corpus(n=24, seed=5)
        config = HyGNNConfig(parameter=4, embed_dim=12, hidden_dim=12, seed=7)
        model, _, builder = HyGNN.for_corpus(corpus, config)
        service = DDIScreeningService(model, builder, corpus)
        service.refresh()
        assert service.stats.corpus_encodes == 1

        async def main():
            async with ScreeningGateway(service, max_batch=4,
                                        max_wait_ms=60_000) as gateway:
                tasks = [asyncio.ensure_future(gateway.screen(q, top_k=3))
                         for q in (0, 1, 2)]
                await asyncio.sleep(0.01)   # requests are enqueued, no flush
                assert not any(t.done() for t in tasks)
                # The weight update lands while the batch is in flight.
                model.encoder.node_embedding.data += 0.05
                # The fourth request completes the batch and triggers the
                # flush, which must re-check freshness before scoring.
                tasks.append(asyncio.ensure_future(gateway.screen(3,
                                                                  top_k=3)))
                return await asyncio.gather(*tasks)

        results = asyncio.run(main())
        # One rebuild, after the update: the flush saw the new weights.
        assert service.stats.corpus_encodes == 2
        # Every request in the flush was answered from the *new* cache
        # version — bitwise equal to serial post-update screens, so no
        # request mixed embeddings across versions.
        serial = [service.screen(q, top_k=3) for q in (0, 1, 2, 3)]
        assert service.stats.corpus_encodes == 2
        assert _hits(results) == _hits(serial)


# ---------------------------------------------------------------------------
# Stats: latency window, percentiles, histogram
# ---------------------------------------------------------------------------
class TestGatewayStats:
    def test_latency_window_percentiles(self):
        window = LatencyWindow(capacity=8)
        assert np.isnan(window.p50)
        assert window.qps == 0.0
        for i, latency in enumerate([0.1, 0.2, 0.3, 0.4]):
            window.record(latency, completed_at=float(i))
        assert window.p50 == pytest.approx(0.25)
        assert window.p99 == pytest.approx(0.397)
        assert window.qps == pytest.approx(1.0)  # 3 intervals over 3 s
        assert window.count == 4

    def test_latency_window_is_bounded(self):
        window = LatencyWindow(capacity=4)
        for i in range(10):
            window.record(float(i), completed_at=float(i))
        assert len(window) == 4
        assert window.count == 10
        assert window.percentile(0) == 6.0  # oldest retained sample

    def test_gateway_populates_stats(self, setup):
        service = _service(setup)

        async def main():
            async with ScreeningGateway(service, max_batch=4,
                                        max_wait_ms=20) as gateway:
                await asyncio.gather(
                    *[gateway.screen(q, top_k=2) for q in range(8)])

        asyncio.run(main())
        stats = service.stats
        assert stats.gateway_requests == 8
        assert stats.gateway_latency.count == 8
        assert stats.gateway_latency.p99 >= stats.gateway_latency.p50 > 0
        assert stats.gateway_latency.qps > 0
        assert sum(size * count
                   for size, count in stats.gateway_batch_sizes.items()) == 8
        summary = stats.as_dict()["gateway_latency"]
        assert summary["count"] == 8
        assert summary["p50_ms"] > 0
