"""Recompute-in-backward checkpointing and the reversible HyGNN encoder.

Covers the three layers of the memory-lean training stack:

- ``repro.nn.functional.invertible_checkpoint`` — the registry op whose
  forward frees its input and whose backward reconstructs it via the
  recorded inverse before replaying the subgraph with gradients;
- ``ReversibleHyGNNEncoder`` — coupled residual attention halves whose
  checkpointed forward is bitwise-identical to the stored-activation walk,
  with the frozen-context serving split intact;
- the per-batch trainer mode (``step_per_batch``) that steps the decoder
  every mini-batch against a staleness-bounded encoder snapshot.
"""

import numpy as np
import pytest

from repro.core import (HyGNN, HyGNNConfig, HyGNNEncoder,
                        ReversibleHyGNNEncoder, Trainer)
from repro.core.encoder import EncoderContext
from repro.data import random_split
from repro.hypergraph import Hypergraph
from repro.nn import Tape, Tensor, bce_with_logits
from repro.nn import functional as F


def _coupling_pair(w1, w2, half):
    """A tiny additive coupling and its exact inverse over plain matmuls."""

    def fn(x):
        x1, x2 = x[:, :half], x[:, half:]
        y1 = x1 + x2 @ w1
        y2 = x2 + F.tanh(y1) @ w2
        return F.concat([y1, y2], axis=1)

    def fn_inverse(y):
        y1, y2 = y[:, :half], y[:, half:]
        x2 = y2 - F.tanh(y1) @ w2
        x1 = y1 - x2 @ w1
        return F.concat([x1, x2], axis=1)

    return fn, fn_inverse


def _make_hypergraph(num_nodes=12, num_edges=8, extra=30, seed=3):
    rng = np.random.default_rng(seed)
    node_ids = np.concatenate([rng.integers(0, num_nodes, size=extra),
                               rng.integers(0, num_nodes, size=num_edges)])
    edge_ids = np.concatenate([rng.integers(0, num_edges, size=extra),
                               np.arange(num_edges)])
    return Hypergraph(num_nodes, num_edges, node_ids, edge_ids)


def _make_encoder(hidden_dim=8, num_layers=3, seed=9, num_heads=1):
    return ReversibleHyGNNEncoder(
        num_substructures=12, embed_dim=6, hidden_dim=hidden_dim,
        rng=np.random.default_rng(seed), num_layers=num_layers,
        dropout=0.0, num_heads=num_heads)


# ---------------------------------------------------------------------------
# The checkpoint op
# ---------------------------------------------------------------------------

class TestInvertibleCheckpoint:
    HALF = 2

    def _setup(self, rng, rows=5):
        w1 = Tensor(rng.normal(size=(self.HALF, self.HALF)),
                    requires_grad=True)
        w2 = Tensor(rng.normal(size=(self.HALF, self.HALF)),
                    requires_grad=True)
        x0 = Tensor(rng.normal(size=(rows, 2 * self.HALF)),
                    requires_grad=True)
        fn, fn_inverse = _coupling_pair(w1, w2, self.HALF)
        return w1, w2, x0, fn, fn_inverse

    def test_forward_matches_stored_composition_bitwise(self, rng):
        w1, w2, x0, fn, fn_inverse = self._setup(rng)
        stored = fn(x0)
        ckpt = F.invertible_checkpoint(fn, fn_inverse, x0, (w1, w2))
        np.testing.assert_array_equal(ckpt.numpy(), stored.numpy())

    def test_gradients_match_stored_composition(self, rng):
        w1, w2, x0, fn, fn_inverse = self._setup(rng)
        # Chain two checkpoints so the second input is an intermediate that
        # actually gets freed and reconstructed.
        mid = F.invertible_checkpoint(fn, fn_inverse, x0, (w1, w2))
        loss = (F.invertible_checkpoint(fn, fn_inverse, mid, (w1, w2))
                ** 2).sum()
        loss.backward()
        ckpt_grads = [t.grad.copy() for t in (x0, w1, w2)]
        for t in (x0, w1, w2):
            t.grad = None
        (fn(fn(x0)) ** 2).sum().backward()
        for got, ref in zip(ckpt_grads, (x0, w1, w2)):
            np.testing.assert_allclose(got, ref.grad, rtol=1e-9, atol=1e-12)

    def test_intermediate_input_freed_then_restored(self, rng):
        w1, w2, x0, fn, fn_inverse = self._setup(rng)
        mid = F.invertible_checkpoint(fn, fn_inverse, x0, (w1, w2))
        original = mid.data.copy()
        out = F.invertible_checkpoint(fn, fn_inverse, mid, (w1, w2))
        assert mid.data.size == 0  # freed by the second checkpoint forward
        out.sum().backward()
        assert mid.data.shape == original.shape  # reconstructed in backward
        # Reconstruction round-off is the only permitted divergence.
        np.testing.assert_allclose(mid.data, original, rtol=1e-9, atol=1e-12)

    def test_leaf_input_is_never_freed(self, rng):
        w1, w2, x0, fn, fn_inverse = self._setup(rng)
        out = F.invertible_checkpoint(fn, fn_inverse, x0, (w1, w2),
                                      free_input=True)
        assert x0.data.size > 0  # leaves are user-owned state
        out.sum().backward()
        assert x0.grad is not None

    def test_inverse_shape_mismatch_raises(self, rng):
        w1, w2, x0, fn, fn_inverse = self._setup(rng)

        def bad_inverse(y):
            return fn_inverse(y)[:-1]

        mid = F.invertible_checkpoint(fn, fn_inverse, x0, (w1, w2))
        out = F.invertible_checkpoint(fn, bad_inverse, mid, (w1, w2))
        with pytest.raises(ValueError, match="fn_inverse produced shape"):
            out.sum().backward()

    def test_rejects_non_tensor_params(self, rng):
        _, _, x0, fn, fn_inverse = self._setup(rng)
        with pytest.raises(TypeError):
            F.invertible_checkpoint(fn, fn_inverse, x0,
                                    (np.zeros((2, 2)),))

    def test_rejects_non_tensor_fn_result(self, rng):
        _, _, x0, _, fn_inverse = self._setup(rng)
        with pytest.raises(TypeError):
            F.invertible_checkpoint(lambda x: x.numpy(), fn_inverse, x0)

    def test_taped_replay_is_bitwise_reproducible(self, rng):
        w1, w2, x0, fn, fn_inverse = self._setup(rng)

        def build():
            mid = F.invertible_checkpoint(fn, fn_inverse, x0, (w1, w2))
            out = F.invertible_checkpoint(fn, fn_inverse, mid, (w1, w2))
            return (out ** 2).sum()

        tape = Tape.record(build)

        def epoch():
            tape.forward()
            root = tape.root.item()
            tape.backward()
            return root, [t.grad.copy() for t in (x0, w1, w2)]

        first_root, first_grads = epoch()
        second_root, second_grads = epoch()
        assert first_root == second_root
        for a, b in zip(first_grads, second_grads):
            np.testing.assert_array_equal(a, b)

    def test_transient_tape_root_is_freed_after_backward(self, rng):
        """Checkpoint outputs carry no pinned tape buffer: backward frees
        them, and the next ``forward()`` recomputes fresh data."""
        w1, w2, x0, fn, fn_inverse = self._setup(rng)
        tape = Tape.record(
            lambda: F.invertible_checkpoint(fn, fn_inverse, x0, (w1, w2)))
        tape.forward()
        value = tape.root.data.copy()
        tape.backward(grad=np.ones_like(value))
        assert tape.root.data.size == 0
        tape.forward()
        np.testing.assert_array_equal(tape.root.data, value)


# ---------------------------------------------------------------------------
# The reversible encoder
# ---------------------------------------------------------------------------

class TestReversibleEncoder:
    @pytest.fixture
    def setup(self):
        hg = _make_hypergraph()
        encoder = _make_encoder()
        encoder.eval()
        return encoder, hg

    def test_checkpointed_matches_stored_bitwise(self, setup):
        encoder, hg = setup
        encoder.recompute = True
        checkpointed = encoder.encode_hypergraph(hg).numpy().copy()
        encoder.recompute = False
        stored = encoder.encode_hypergraph(hg).numpy().copy()
        np.testing.assert_array_equal(checkpointed, stored)

    def test_gradients_match_stored_activations(self, setup):
        encoder, hg = setup

        def grads(recompute):
            encoder.recompute = recompute
            for p in encoder.parameters():
                p.grad = None
            (encoder.encode_hypergraph(hg) ** 2).sum().backward()
            return [p.grad.copy() for p in encoder.parameters()]

        for got, ref in zip(grads(True), grads(False)):
            np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    def test_taped_encode_replay_bitwise(self, setup):
        encoder, hg = setup
        encoder.recompute = True
        tape = Tape.record(
            lambda: (encoder.encode_hypergraph(hg) ** 2).sum())

        def epoch():
            tape.forward()
            root = tape.root.item()
            tape.backward()
            return root, [p.grad.copy() for p in encoder.parameters()]

        first_root, first_grads = epoch()
        second_root, second_grads = epoch()
        assert first_root == second_root
        for a, b in zip(first_grads, second_grads):
            np.testing.assert_array_equal(a, b)

    def test_context_subset_reencode_matches_full(self, setup):
        encoder, hg = setup
        full, context = encoder.encode_with_context(
            hg.node_ids, hg.edge_ids, hg.num_edges,
            partitions=(hg.node_partition, hg.edge_partition))
        subset = encoder.encode_edges_subset(
            context, hg.node_ids, hg.edge_ids, hg.num_edges,
            edge_partition=hg.edge_partition)
        np.testing.assert_array_equal(subset.numpy(), full.numpy())

    def test_context_round_trips_through_index_arrays(self, setup):
        """The serving cache stores ``layer_node_feats`` by integer index;
        a reload must reproduce subset encodes bitwise."""
        encoder, hg = setup
        full, context = encoder.encode_with_context(
            hg.node_ids, hg.edge_ids, hg.num_edges)
        assert context.num_layers == 2 * len(encoder.blocks)
        arrays = {f"context_layer_{i}": layer.data.copy()
                  for i, layer in enumerate(context.layer_node_feats)}
        reloaded = EncoderContext(layer_node_feats=tuple(
            Tensor(arrays[f"context_layer_{i}"])
            for i in range(context.num_layers)))
        subset = encoder.encode_edges_subset(
            reloaded, hg.node_ids, hg.edge_ids, hg.num_edges)
        np.testing.assert_array_equal(subset.numpy(), full.numpy())

    def test_subset_rejects_mismatched_context(self, setup):
        encoder, hg = setup
        _, context = encoder.encode_with_context(
            hg.node_ids, hg.edge_ids, hg.num_edges)
        truncated = EncoderContext(
            layer_node_feats=context.layer_node_feats[:-1])
        with pytest.raises(ValueError, match="layer count"):
            encoder.encode_edges_subset(truncated, hg.node_ids, hg.edge_ids,
                                        hg.num_edges)

    def test_substructure_attention_is_edge_normalised(self, setup):
        encoder, hg = setup
        attention = encoder.substructure_attention(hg)
        assert attention.shape == (hg.num_incidences,)
        assert np.all(np.isfinite(attention))
        sums = np.zeros(hg.num_edges)
        np.add.at(sums, hg.edge_ids, attention)
        np.testing.assert_allclose(sums, 1.0, rtol=1e-12)

    def test_requires_even_hidden_dim(self):
        with pytest.raises(ValueError, match="even hidden_dim"):
            ReversibleHyGNNEncoder(num_substructures=5, embed_dim=4,
                                   hidden_dim=7,
                                   rng=np.random.default_rng(0))

    def test_model_selects_reversible_encoder(self):
        config = HyGNNConfig(reversible=True, embed_dim=8, hidden_dim=8)
        model = HyGNN(num_substructures=10, config=config)
        assert isinstance(model.encoder, ReversibleHyGNNEncoder)
        plain = HyGNN(num_substructures=10,
                      config=HyGNNConfig(embed_dim=8, hidden_dim=8))
        assert not isinstance(plain.encoder, ReversibleHyGNNEncoder)


# ---------------------------------------------------------------------------
# Multi-head attention ride-along
# ---------------------------------------------------------------------------

class TestMultiHeadAttention:
    def test_standard_encoder_shapes_and_grads(self, rng):
        hg = _make_hypergraph()
        encoder = HyGNNEncoder(num_substructures=12, embed_dim=6,
                               hidden_dim=8, rng=rng, dropout=0.0,
                               num_heads=2)
        encoder.eval()
        out = encoder.encode_hypergraph(hg)
        assert out.shape == (hg.num_edges, 8)
        (out ** 2).sum().backward()
        assert all(p.grad is not None for p in encoder.parameters())

    def test_reversible_encoder_with_heads(self):
        hg = _make_hypergraph()
        encoder = _make_encoder(hidden_dim=8, num_heads=2)
        encoder.eval()
        encoder.recompute = True
        checkpointed = encoder.encode_hypergraph(hg).numpy().copy()
        encoder.recompute = False
        stored = encoder.encode_hypergraph(hg).numpy().copy()
        assert checkpointed.shape == (hg.num_edges, 8)
        np.testing.assert_array_equal(checkpointed, stored)

    def test_heads_must_divide_width(self):
        with pytest.raises(ValueError, match="num_heads"):
            HyGNNConfig(num_heads=3, hidden_dim=8, embed_dim=8)
        with pytest.raises(ValueError, match="num_heads"):
            HyGNNConfig(num_heads=3, hidden_dim=8, embed_dim=8,
                        reversible=True)

    def test_single_head_has_no_projection(self, rng):
        encoder = HyGNNEncoder(num_substructures=5, embed_dim=4,
                               hidden_dim=4, rng=rng)
        assert not hasattr(encoder.layers[0][0], "head_proj")


# ---------------------------------------------------------------------------
# Per-batch trainer mode
# ---------------------------------------------------------------------------

class TestPerBatchTrainer:
    def _fit(self, **overrides):
        hg = _make_hypergraph(num_nodes=20, num_edges=16, extra=60, seed=11)
        rng = np.random.default_rng(11)
        pairs = rng.integers(0, hg.num_edges, size=(160, 2))
        labels = rng.integers(0, 2, size=160).astype(np.float64)
        split = random_split(len(pairs), seed=11)
        settings = dict(embed_dim=8, hidden_dim=8, dropout=0.0, epochs=4,
                        patience=100, seed=5, batch_size=32,
                        step_per_batch=True, snapshot_staleness=2)
        settings.update(overrides)
        config = HyGNNConfig(**settings)
        model = HyGNN(num_substructures=hg.num_nodes, config=config)
        trainer = Trainer(model, config)
        return trainer.fit(hg, pairs, labels, split)

    def test_loss_decreases_with_reversible_encoder(self):
        history = self._fit(reversible=True)
        losses = history.train_loss
        assert len(losses) == 4
        assert all(np.isfinite(loss) for loss in losses)
        assert losses[-1] < losses[0]

    def test_loss_decreases_with_standard_encoder(self):
        history = self._fit(reversible=False)
        assert all(np.isfinite(loss) for loss in history.train_loss)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_step_per_batch_requires_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            HyGNNConfig(step_per_batch=True)

    def test_snapshot_staleness_must_be_positive(self):
        with pytest.raises(ValueError, match="snapshot_staleness"):
            HyGNNConfig(snapshot_staleness=0)


# ---------------------------------------------------------------------------
# Tape replay diagnostics (ride-along)
# ---------------------------------------------------------------------------

class TestTapeReplayDiagnostics:
    def test_shape_mismatch_names_consumer_and_shapes(self, rng):
        weight = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        tape = Tape.record(lambda: (weight @ weight.transpose()).sum())
        with pytest.raises(ValueError) as excinfo:
            tape.forward({weight: np.zeros((2, 2))})
        message = str(excinfo.value)
        assert "(2, 2)" in message and "(4, 3)" in message
        assert "feeding op '" in message  # names the consuming op
