"""Tests for Module / Linear / Dropout / Embedding / MLP."""

import numpy as np
import pytest

from repro.nn import (MLP, Dropout, Embedding, LeakyReLU, Linear, Module,
                      ReLU, Sequential, Tensor)
from repro.nn.gradcheck import gradcheck


class TestModule:
    def test_parameters_recurse_children(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 3, rng)
                self.b = Linear(3, 1, rng)

        net = Net()
        names = dict(net.named_parameters())
        assert set(names) == {"a.weight", "a.bias", "b.weight", "b.bias"}

    def test_num_parameters(self, rng):
        lin = Linear(4, 3, rng)
        assert lin.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        net.eval()
        assert not net.layers[1].training
        net.train()
        assert net.layers[1].training

    def test_zero_grad_clears(self, rng):
        lin = Linear(2, 1, rng)
        out = lin(Tensor(np.ones((3, 2)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        a = Linear(3, 2, rng)
        b = Linear(3, 2, np.random.default_rng(999))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_rejects_missing_keys(self, rng):
        a = Linear(3, 2, rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight.data})

    def test_load_state_dict_rejects_bad_shape(self, rng):
        a = Linear(3, 2, rng)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 3))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLinear:
    def test_output_shape(self, rng):
        lin = Linear(5, 7, rng)
        assert lin(Tensor(np.ones((3, 5)))).shape == (3, 7)

    def test_no_bias(self, rng):
        lin = Linear(5, 7, rng, bias=False)
        assert lin.bias is None
        assert lin.num_parameters() == 35

    def test_gradients_flow(self, rng):
        lin = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)))
        gradcheck(lambda: (lin(x) ** 2).sum(), list(lin.parameters()))

    def test_repr(self, rng):
        assert "Linear(in=3, out=2" in repr(Linear(3, 2, rng))


class TestDropout:
    def test_rejects_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(-0.1, rng)
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_eval_mode_identity(self, rng):
        drop = Dropout(0.9, rng).eval()
        x = Tensor(np.ones(50))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_train_mode_zeroes_entries(self, rng):
        drop = Dropout(0.5, rng)
        out = drop(Tensor(np.ones(1000)))
        assert (out.data == 0).sum() > 300


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([0, 3, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[1], out.data[2])

    def test_grad_accumulates_on_repeats(self, rng):
        emb = Embedding(5, 2, rng)
        out = emb(np.array([1, 1, 2])).sum()
        out.backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[2], [1.0, 1.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestMLP:
    def test_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_hidden_relu_output_linear(self, rng):
        mlp = MLP([4, 8, 1], rng)
        # Output layer must be linear: negative outputs possible.
        out = mlp(Tensor(rng.normal(size=(200, 4))))
        assert (out.data < 0).any()

    def test_gradcheck_two_layers(self, rng):
        mlp = MLP([3, 5, 2], rng)
        x = Tensor(rng.normal(size=(4, 3)))
        gradcheck(lambda: (mlp(x) ** 2).sum(), list(mlp.parameters()))

    def test_dropout_only_in_train_mode(self, rng):
        mlp = MLP([3, 16, 1], rng, dropout=0.5)
        x = Tensor(rng.normal(size=(8, 3)))
        mlp.eval()
        a = mlp(x).data
        b = mlp(x).data
        np.testing.assert_allclose(a, b)

    def test_parameter_count(self, rng):
        mlp = MLP([4, 8, 2], rng)
        assert mlp.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2)


class TestActivationsModules:
    def test_relu_module(self, rng):
        assert (ReLU()(Tensor([-1.0, 1.0])).data == [0.0, 1.0]).all()

    def test_leaky_relu_module(self, rng):
        out = LeakyReLU(0.1)(Tensor([-10.0]))
        np.testing.assert_allclose(out.data, [-1.0])
