"""End-to-end integration tests across module boundaries.

These exercise the same pipelines the experiments run, at tiny scale:
dataset generation → hypergraph → training → evaluation → persistence.
"""

import os

import numpy as np
import pytest

from repro.core import HyGNN, HyGNNConfig, Trainer, train_hygnn
from repro.core.serialize import load_model, save_model
from repro.data import (balanced_pairs_and_labels, cold_start_split,
                        load_benchmark, load_dataset, random_split)
from repro.hypergraph import DrugHypergraphBuilder
from repro.metrics import roc_auc_score


@pytest.fixture(scope="module")
def tiny_run():
    """One trained model shared by the read-only integration tests."""
    dataset = load_dataset("twosides", scale=0.06, seed=0)
    pairs, labels = balanced_pairs_and_labels(dataset, seed=0)
    split = random_split(len(pairs), seed=0)
    config = HyGNNConfig(method="kmer", parameter=5, epochs=120, patience=30,
                         embed_dim=32, hidden_dim=32)
    model, hypergraph, history, summary = train_hygnn(
        dataset.smiles, pairs, labels, split, config)
    return dataset, pairs, labels, split, config, model, hypergraph, summary


class TestFullPipeline:
    def test_learns_above_chance(self, tiny_run):
        *_, summary = tiny_run
        assert summary.roc_auc > 65.0

    def test_probabilities_valid(self, tiny_run):
        dataset, pairs, _, split, _, model, hypergraph, _ = tiny_run
        probs = model.predict_proba(hypergraph, pairs[split.test])
        assert np.all((probs >= 0) & (probs <= 1))
        assert np.isfinite(probs).all()

    def test_symmetric_pairs_score_identically_with_dot(self):
        """Dot decoder is order-invariant: score(x,y) == score(y,x)."""
        dataset = load_dataset("twosides", scale=0.06, seed=0)
        config = HyGNNConfig(method="kmer", parameter=5, decoder="dot",
                             epochs=2, embed_dim=16, hidden_dim=16)
        model, hypergraph, _ = HyGNN.for_corpus(dataset.smiles, config)
        pairs = np.array([[0, 1], [2, 3]])
        flipped = pairs[:, ::-1].copy()
        np.testing.assert_allclose(model.predict_proba(hypergraph, pairs),
                                   model.predict_proba(hypergraph, flipped))

    def test_training_is_deterministic_across_processes(self, tiny_run):
        dataset, pairs, labels, split, config, _, _, summary = tiny_run
        _, _, _, summary2 = train_hygnn(dataset.smiles, pairs, labels,
                                        split, config)
        assert summary == summary2

    def test_attention_is_probability_per_drug(self, tiny_run):
        *_, model, hypergraph, _ = tiny_run
        weights = model.encoder.substructure_attention(hypergraph)
        for edge in range(min(hypergraph.num_edges, 10)):
            mask = hypergraph.edge_ids == edge
            if mask.any():
                assert weights[mask].sum() == pytest.approx(1.0)


class TestColdStartPipeline:
    def test_unseen_drugs_scored_from_structure(self):
        dataset = load_dataset("twosides", scale=0.08, seed=1)
        pairs, labels = balanced_pairs_and_labels(dataset, seed=1)
        split, unseen = cold_start_split(pairs, dataset.num_drugs, seed=1)
        unseen_set = set(unseen.tolist())
        config = HyGNNConfig(method="kmer", parameter=5, epochs=120,
                             patience=30, embed_dim=32, hidden_dim=32)
        builder = DrugHypergraphBuilder(method=config.method,
                                        parameter=config.parameter)
        builder.fit([d.smiles for i, d in enumerate(dataset.drugs)
                     if i not in unseen_set])
        hypergraph = builder.transform(dataset.smiles)
        model = HyGNN(num_substructures=builder.num_nodes, config=config)
        trainer = Trainer(model, config)
        trainer.fit(hypergraph, pairs, labels, split)
        scores = model.predict_proba(hypergraph, pairs[split.test])
        assert roc_auc_score(labels[split.test], scores) > 0.6


class TestPersistence:
    @pytest.mark.parametrize("method,parameter", [("kmer", 5), ("espf", 5)])
    def test_roundtrip_preserves_predictions(self, tmp_path, method,
                                             parameter):
        dataset = load_dataset("twosides", scale=0.06, seed=0)
        pairs, _ = balanced_pairs_and_labels(dataset, seed=0)
        config = HyGNNConfig(method=method, parameter=parameter, epochs=3,
                             embed_dim=16, hidden_dim=16)
        model, hypergraph, builder = HyGNN.for_corpus(dataset.smiles, config)
        before = model.predict_proba(hypergraph, pairs[:25])

        path = tmp_path / "model.npz"
        save_model(path, model, builder)
        restored_model, restored_builder = load_model(path)
        restored_hg = restored_builder.transform(dataset.smiles)
        after = restored_model.predict_proba(restored_hg, pairs[:25])
        np.testing.assert_allclose(before, after, atol=1e-12)

    def test_roundtrip_preserves_config(self, tmp_path):
        dataset = load_dataset("twosides", scale=0.06, seed=0)
        config = HyGNNConfig(method="kmer", parameter=7, decoder="dot",
                             epochs=2, embed_dim=16, hidden_dim=16)
        model, _, builder = HyGNN.for_corpus(dataset.smiles, config)
        path = tmp_path / "model.npz"
        save_model(path, model, builder)
        restored, restored_builder = load_model(path)
        assert restored.config == config
        assert restored_builder.parameter == 7

    def test_restored_builder_tokenizes_new_drugs(self, tmp_path):
        dataset = load_dataset("twosides", scale=0.06, seed=0)
        config = HyGNNConfig(method="espf", parameter=5, epochs=2,
                             embed_dim=16, hidden_dim=16)
        model, _, builder = HyGNN.for_corpus(dataset.smiles, config)
        path = tmp_path / "model.npz"
        save_model(path, model, builder)
        _, restored_builder = load_model(path)
        novel = "CCOc1ccccc1N"
        assert (restored_builder.drug_token_sets([novel])
                == builder.drug_token_sets([novel]))

    def test_load_rejects_future_format(self, tmp_path):
        import json
        path = tmp_path / "bad.npz"
        meta = np.frombuffer(json.dumps(
            {"format_version": 999}).encode(), dtype=np.uint8)
        np.savez(path, __meta__=meta)
        with pytest.raises(ValueError):
            load_model(path)


class TestCrossDatasetConsistency:
    def test_shared_drugs_have_identical_smiles(self):
        benchmark = load_benchmark(scale=0.07, seed=0)
        ts, db = benchmark.twosides, benchmark.drugbank
        for local, uni in enumerate(ts.universe_indices):
            assert ts.drugs[local].smiles == db.drugs[uni].smiles

    def test_model_trained_on_one_corpus_scores_other(self):
        """Transfer sanity: a TWOSIDES-trained model ranks DrugBank pairs
        (restricted to shared drugs) above chance."""
        benchmark = load_benchmark(scale=0.08, seed=0)
        ts, db = benchmark.twosides, benchmark.drugbank
        pairs, labels = balanced_pairs_and_labels(ts, seed=0)
        split = random_split(len(pairs), seed=0)
        config = HyGNNConfig(method="kmer", parameter=5, epochs=120,
                             patience=30, embed_dim=32, hidden_dim=32)
        model, hypergraph, _, _ = train_hygnn(ts.smiles, pairs, labels,
                                              split, config)
        # Build an eval set from DrugBank labels over TWOSIDES drugs.
        ts_map = {int(u): i for i, u in enumerate(ts.universe_indices)}
        eval_pairs, eval_labels = [], []
        rng = np.random.default_rng(0)
        for i, j in db.positive_pairs[:400]:
            if int(i) in ts_map and int(j) in ts_map:
                eval_pairs.append((ts_map[int(i)], ts_map[int(j)]))
                eval_labels.append(1.0)
        n_pos = len(eval_pairs)
        while len(eval_pairs) < 2 * n_pos:
            a, b = rng.integers(ts.num_drugs, size=2)
            if a != b and not ts.is_positive(int(a), int(b)):
                eval_pairs.append((int(a), int(b)))
                eval_labels.append(0.0)
        scores = model.predict_proba(hypergraph, np.array(eval_pairs))
        assert roc_auc_score(np.array(eval_labels), scores) > 0.6
