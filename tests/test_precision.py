"""Precision-tier tests: dtype stability of the serving kernels, int8
quantization invariants, the MLP sketch prefilter, and manifest hygiene.

The contracts pinned here back the three speed/accuracy dials of the
screening service (``precision="float32"``, ``approx=True``,
``quantize="int8"``): float32 inputs must flow through scoring and top-k
selection without silently widening, int8 round-trips must stay inside
half a column scale, the sketch shortlist must keep the exact top-k, and
low-precision artifacts must never validate against exact-tier services.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.nn import functional as F
from repro.serving import (DDIScreeningService, ShardStore, TopKAccumulator,
                           dequantize_int8, merge_top_k, quantize_int8,
                           rank_agreement, recall_at_k, resolve_precision,
                           top_k_desc)

DTYPES = [np.float32, np.float64]


def _corpus(n=40, seed=11):
    return [r.smiles for r in MoleculeGenerator(seed=seed).generate_corpus(n)]


@pytest.fixture(scope="module", params=["mlp", "dot"])
def setup(request):
    corpus = _corpus()
    config = HyGNNConfig(parameter=4, embed_dim=16, hidden_dim=16, seed=3,
                         decoder=request.param)
    model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
    return corpus, config, model, hypergraph, builder


def _service(setup, **kwargs):
    corpus, _, model, _, builder = setup
    return DDIScreeningService(model, builder, corpus, **kwargs)


# ---------------------------------------------------------------------------
# dtype stability of the scoring / selection primitives
# ---------------------------------------------------------------------------
class TestDtypeStability:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_stable_sigmoid_preserves_dtype(self, dtype):
        z = np.linspace(-40, 40, 17, dtype=dtype)
        probs = F.stable_sigmoid(z)
        assert probs.dtype == dtype
        assert np.all((probs >= 0) & (probs <= 1))

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_topk_accumulator_preserves_dtype(self, dtype):
        rng = np.random.default_rng(0)
        acc = TopKAccumulator(5)
        for start in range(0, 40, 8):
            block = rng.random(8).astype(dtype)
            acc.update(block, np.arange(start, start + 8, dtype=np.int64))
        indices, scores = acc.result()
        assert scores.dtype == dtype
        assert len(indices) == 5

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_merge_top_k_preserves_dtype(self, dtype):
        shards = [(np.array([0, 1]), np.array([0.9, 0.1], dtype=dtype)),
                  (np.array([2, 3]), np.array([0.5, 0.4], dtype=dtype))]
        _, scores = merge_top_k(shards, 3)
        assert scores.dtype == dtype

    def test_top_k_accepts_integer_scores(self):
        # Integer blocks (quantized paths, tests) promote to float64.
        acc = TopKAccumulator(2)
        acc.update(np.array([3, 1, 2], dtype=np.int32),
                   np.arange(3, dtype=np.int64))
        _, scores = acc.result()
        assert scores.dtype == np.float64
        np.testing.assert_array_equal(top_k_desc(np.array([3, 1, 2]), 2),
                                      [0, 2])

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_score_block_preserves_dtype(self, setup, dtype):
        _, config, model, *_ = setup
        decoder = model.decoder
        rng = np.random.default_rng(7)
        emb = rng.standard_normal((12, config.embed_dim)).astype(dtype)
        cand_proj = decoder.candidate_projections(emb)
        query_proj = decoder.project_queries(emb[:3], sides=("as_left",))
        scores = decoder.score_block(query_proj, cand_proj)
        assert scores.shape == (3, 12)
        assert scores.dtype == dtype

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_float32_scores_match_float64_closely(self, setup, dtype):
        if dtype != np.float32:
            pytest.skip("comparison runs once, against the float64 path")
        _, config, model, *_ = setup
        decoder = model.decoder
        rng = np.random.default_rng(7)
        emb64 = rng.standard_normal((12, config.embed_dim))
        ref = decoder.score_block(
            decoder.project_queries(emb64[:3], sides=("as_left",)),
            decoder.candidate_projections(emb64))
        emb32 = emb64.astype(np.float32)
        got = decoder.score_block(
            decoder.project_queries(emb32[:3], sides=("as_left",)),
            decoder.candidate_projections(emb32))
        np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-4)


class TestResolvePrecision:
    def test_known_precisions(self):
        assert resolve_precision("float64") == np.float64
        assert resolve_precision("float32") == np.float32

    @pytest.mark.parametrize("bad", ["float16", "int8", "double", ""])
    def test_unknown_precision_rejected(self, bad):
        with pytest.raises(ValueError, match="precision"):
            resolve_precision(bad)

    def test_service_rejects_unknown_precision(self, setup):
        with pytest.raises(ValueError, match="precision"):
            _service(setup, precision="float16")

    def test_service_reports_precision(self, setup):
        assert _service(setup).precision == "float64"
        service = _service(setup, precision="float32")
        assert service.precision == "float32"
        assert service.embeddings.dtype == np.float32


# ---------------------------------------------------------------------------
# int8 quantization invariants
# ---------------------------------------------------------------------------
finite_matrices = st.tuples(
    st.integers(1, 12), st.integers(1, 6), st.integers(0, 2 ** 31 - 1),
    st.floats(1e-6, 1e6),
).map(lambda spec: np.random.default_rng(spec[2]).uniform(
    -spec[3], spec[3], size=(spec[0], spec[1])))


class TestInt8Quantization:
    @settings(max_examples=60, deadline=None)
    @given(matrix=finite_matrices)
    def test_round_trip_error_within_half_scale(self, matrix):
        codes, scales = quantize_int8(matrix)
        assert codes.dtype == np.int8
        assert scales.shape == (matrix.shape[1],)
        restored = dequantize_int8(codes, scales, dtype=np.float64)
        error = np.abs(restored - matrix)
        # Nearest-code rounding: every entry reconstructs within half its
        # column's scale (tiny slack for the float64 divide/multiply).
        bound = scales / 2 + 1e-9 * np.maximum(np.abs(matrix), 1.0)
        assert np.all(error <= bound)

    def test_zero_columns_get_unit_scale(self):
        matrix = np.zeros((5, 3))
        matrix[:, 1] = np.linspace(-2, 2, 5)
        codes, scales = quantize_int8(matrix)
        assert scales[0] == 1.0 and scales[2] == 1.0
        assert np.all(codes[:, [0, 2]] == 0)
        assert codes[:, 1].max() == 127 and codes[:, 1].min() == -127

    def test_dequantize_default_dtype_is_float32(self):
        codes, scales = quantize_int8(np.ones((2, 2)))
        assert dequantize_int8(codes, scales).dtype == np.float32

    def test_non_matrix_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            quantize_int8(np.arange(5.0))


# ---------------------------------------------------------------------------
# the MLP sketch prefilter
# ---------------------------------------------------------------------------
class TestSketchPrefilter:
    def test_shortlist_keeps_exact_topk(self, setup):
        _, config, *_ = setup
        if config.decoder != "mlp":
            pytest.skip("sketch prefilter targets the MLP decoder")
        service = _service(setup, block_size=9, num_shards=2)
        hits = 0.0
        for query in range(0, service.num_drugs, 5):
            exact = service.screen(query, top_k=5)
            approx = service.screen(query, top_k=5, approx=True,
                                    approx_oversample=8)
            hits += recall_at_k([h.index for h in exact],
                                [h.index for h in approx])
        assert hits / len(range(0, service.num_drugs, 5)) >= 0.9

    def test_sketch_rank_knob_controls_sketch_width(self, setup):
        _, config, *_ = setup
        if config.decoder != "mlp":
            pytest.skip("sketch prefilter targets the MLP decoder")
        service = _service(setup, sketch_rank=4)
        service.screen(0, top_k=3, approx=True)  # builds the sketch
        factors = service._cache.sketch_factors
        assert factors is not None
        assert factors["components"].shape[1] == 4

    def test_approx_after_registration_still_screens(self, setup):
        corpus, config, model, _, builder = setup
        if config.decoder != "mlp":
            pytest.skip("sketch prefilter targets the MLP decoder")
        service = DDIScreeningService(model, builder, corpus[:30])
        service.screen(0, top_k=3, approx=True)  # builds the sketch
        service.register_drugs(corpus[30:])
        hits = service.screen(0, top_k=3, approx=True)
        assert len(hits) == 3
        # The append reused the existing factors — the sketch was never
        # dropped and recomputed from scratch.
        assert service._cache.sketch_factors is not None


# ---------------------------------------------------------------------------
# precision / quantization in artifact validation
# ---------------------------------------------------------------------------
class TestArtifactIsolation:
    def test_float32_cache_never_loads_into_float64_service(
            self, setup, tmp_path):
        low = _service(setup, precision="float32")
        snapshot = tmp_path / "cache.npz"
        low.save_cache(snapshot)
        exact = _service(setup)
        assert not exact.load_cache(snapshot)
        with pytest.raises(ValueError, match="fingerprint"):
            exact.load_cache(snapshot, strict=True)
        # ... and the reverse direction.
        exact_snapshot = tmp_path / "exact.npz"
        exact.save_cache(exact_snapshot)
        assert not low.load_cache(exact_snapshot)

    def test_float32_store_never_attaches_to_float64_service(
            self, setup, tmp_path):
        low = _service(setup, precision="float32")
        manifest = low.save_shards(tmp_path / "store")
        exact = _service(setup)
        assert not exact.open_shards(manifest)
        assert low.open_shards(manifest, strict=True)

    def test_quantized_store_serves_approx_and_falls_back_exact(
            self, setup, tmp_path):
        service = _service(setup, block_size=7, num_shards=3)
        reference = service.screen(2, top_k=6)
        manifest = service.save_shards(tmp_path / "q8", quantize="int8")
        store = ShardStore(manifest)
        assert store.is_quantized and store.quantization == "int8"
        assert service.open_shards(manifest, strict=True)
        # Exact mode ignores the int8 pages and reproduces the in-memory
        # screen bitwise.
        fallback = service.screen(2, top_k=6)
        assert [(h.index, h.probability) for h in fallback] == \
            [(h.index, h.probability) for h in reference]
        # Approximate mode prefilters on the store and exact-reranks.
        approx = service.screen(2, top_k=6, approx=True,
                                approx_oversample=service.num_drugs)
        assert [(h.index, h.probability) for h in approx] == \
            [(h.index, h.probability) for h in reference]

    def test_quantized_store_rejects_parallel_demand(self, setup, tmp_path):
        service = _service(setup, num_workers=2)
        manifest = service.save_shards(tmp_path / "q8", quantize="int8")
        assert service.open_shards(manifest, strict=True)
        with pytest.raises(RuntimeError, match="non-quantized"):
            service.screen(0, top_k=3, parallel=True)

    def test_quantized_store_is_much_smaller(self, setup, tmp_path):
        service = _service(setup)
        exact = ShardStore(service.save_shards(tmp_path / "exact"))
        quantized = ShardStore(
            service.save_shards(tmp_path / "q8", quantize="int8"))
        assert quantized.nbytes() <= exact.nbytes() / 6


# ---------------------------------------------------------------------------
# malformed quantization manifests
# ---------------------------------------------------------------------------
def _corrupt(manifest_path, mutate):
    manifest = json.loads(manifest_path.read_text())
    mutate(manifest)
    manifest_path.write_text(json.dumps(manifest))


def _drop_scheme(manifest):
    manifest["quantization"]["scheme"] = "int3"


def _drop_embedding_scales(manifest):
    del manifest["quantization"]["scales"]["embeddings"]


def _wrong_scale_width(manifest):
    manifest["quantization"]["scales"]["embeddings"] = [1.0, 2.0]


def _drop_projection_scales(manifest):
    manifest["quantization"]["scales"]["projections"] = {}


def _non_mapping(manifest):
    manifest["quantization"] = "int8"


class TestMalformedQuantizationManifest:
    MUTATIONS = [_drop_scheme, _drop_embedding_scales, _wrong_scale_width,
                 _non_mapping]

    @pytest.mark.parametrize("mutate", MUTATIONS,
                             ids=lambda m: m.__name__.lstrip("_"))
    def test_open_is_best_effort_unless_strict(self, setup, tmp_path, mutate):
        service = _service(setup)
        manifest = service.save_shards(tmp_path / "q8", quantize="int8")
        _corrupt(manifest, mutate)
        with pytest.raises(ValueError, match="malformed manifest"):
            ShardStore(manifest)
        fresh = _service(setup)
        assert not fresh.open_shards(manifest)  # tolerated: no attach
        with pytest.raises(ValueError, match="malformed manifest"):
            fresh.open_shards(manifest, strict=True)

    def test_missing_projection_scales_rejected(self, setup, tmp_path):
        _, config, *_ = setup
        if config.decoder != "mlp":
            pytest.skip("the dot store's only projection aliases the "
                        "embeddings, which need no separate scales")
        service = _service(setup)
        manifest = service.save_shards(tmp_path / "q8", quantize="int8")
        _corrupt(manifest, _drop_projection_scales)
        with pytest.raises(ValueError, match="malformed manifest"):
            ShardStore(manifest)
        assert not _service(setup).open_shards(manifest)

    def test_unquantized_store_has_no_scales(self, setup, tmp_path):
        service = _service(setup)
        store = ShardStore(service.save_shards(tmp_path / "exact"))
        assert not store.is_quantized
        assert store.quantization is None
        with pytest.raises(ValueError, match="not quantized"):
            store.scales()


# ---------------------------------------------------------------------------
# gate helpers
# ---------------------------------------------------------------------------
class TestGateHelpers:
    def test_rank_agreement_is_set_overlap(self):
        assert rank_agreement([1, 2, 3], [3, 2, 1]) == 1.0
        assert rank_agreement([1, 2, 3, 4], [1, 2, 9, 8]) == 0.5
        assert rank_agreement([], []) == 1.0

    def test_recall_at_k_truncates(self):
        assert recall_at_k([1, 2, 3, 4], [1, 2, 9, 8], k=2) == 1.0
        assert recall_at_k([1, 2], [2, 1]) == 1.0
