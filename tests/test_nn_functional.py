"""Tests for activations, segment ops, and sparse matmul."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import SegmentPartition, Tensor
from repro.nn import functional as F
from repro.nn.gradcheck import gradcheck


def _randt(shape, seed=0, shift=0.0, grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) + shift, requires_grad=grad)


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        x = _randt((4, 3), seed=1)
        gradcheck(lambda: (F.relu(x) * 2.0).sum(), [x])

    def test_leaky_relu_values(self):
        out = F.leaky_relu(Tensor([-2.0, 3.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_leaky_relu_grad(self):
        x = _randt((5,), seed=2)
        gradcheck(lambda: F.leaky_relu(x, 0.2).sum(), [x])

    def test_sigmoid_range(self):
        out = F.sigmoid(Tensor([-100.0, 0.0, 100.0]))
        assert np.all(out.data >= 0) and np.all(out.data <= 1)
        assert out.data[1] == pytest.approx(0.5)
        # Moderate inputs stay strictly inside (0, 1).
        mid = F.sigmoid(Tensor([-10.0, 10.0]))
        assert np.all(mid.data > 0) and np.all(mid.data < 1)

    def test_sigmoid_extreme_no_overflow(self):
        out = F.sigmoid(Tensor([-1000.0, 1000.0]))
        assert np.isfinite(out.data).all()

    def test_sigmoid_grad(self):
        x = _randt((6,), seed=3)
        gradcheck(lambda: F.sigmoid(x).sum(), [x])

    def test_tanh_grad(self):
        x = _randt((6,), seed=4)
        gradcheck(lambda: F.tanh(x).sum(), [x])

    def test_elu_values(self):
        out = F.elu(Tensor([-1.0, 1.0]))
        np.testing.assert_allclose(out.data, [np.expm1(-1.0), 1.0])

    def test_elu_grad(self):
        x = _randt((6,), seed=5)
        gradcheck(lambda: F.elu(x).sum(), [x])

    def test_softmax_rows_sum_to_one(self):
        x = _randt((3, 5), seed=6, grad=False)
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3))

    def test_softmax_shift_invariance(self):
        x = np.random.default_rng(7).normal(size=(2, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_softmax_grad(self):
        x = _randt((2, 4), seed=8)
        w = Tensor(np.random.default_rng(9).normal(size=(2, 4)))
        gradcheck(lambda: (F.softmax(x) * w).sum(), [x])

    def test_log_softmax_grad(self):
        x = _randt((2, 4), seed=10)
        w = Tensor(np.random.default_rng(11).normal(size=(2, 4)))
        gradcheck(lambda: (F.log_softmax(x) * w).sum(), [x])

    def test_clip_values_and_grad_mask(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        out = F.clip(x, -1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestConcatGather:
    def test_concat_values(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        out = F.concat([a, b], axis=1)
        assert out.shape == (2, 5)

    def test_concat_grad(self):
        a = _randt((2, 2), seed=12)
        b = _randt((2, 3), seed=13)
        w = Tensor(np.random.default_rng(14).normal(size=(2, 5)))
        gradcheck(lambda: (F.concat([a, b], axis=1) * w).sum(), [a, b])

    def test_concat_axis0_grad(self):
        a = _randt((2, 3), seed=15)
        b = _randt((4, 3), seed=16)
        w = Tensor(np.random.default_rng(17).normal(size=(6, 3)))
        gradcheck(lambda: (F.concat([a, b], axis=0) * w).sum(), [a, b])

    def test_gather_rows_values(self):
        x = Tensor(np.arange(12, dtype=float).reshape(4, 3))
        out = F.gather_rows(x, np.array([3, 0]))
        np.testing.assert_allclose(out.data, [[9, 10, 11], [0, 1, 2]])

    def test_gather_rows_repeated_grad(self):
        x = _randt((4, 3), seed=18)
        idx = np.array([1, 1, 2])
        gradcheck(lambda: (F.gather_rows(x, idx) ** 2).sum(), [x])


class TestDropout:
    def test_identity_when_eval(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_identity_when_p_zero(self):
        x = Tensor(np.ones(5))
        out = F.dropout(x, 0.0, training=True, rng=np.random.default_rng(0))
        assert out is x

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, True, np.random.default_rng(0))

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(42)
        x = Tensor(np.ones(200_00))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_grad_uses_same_mask(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones(100), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        # Gradient equals the mask (either 0 or 1/(1-p)).
        np.testing.assert_allclose(np.unique(x.grad), [0.0, 2.0])


class TestSegmentOps:
    def test_segment_sum_values(self):
        x = Tensor(np.arange(8, dtype=float).reshape(4, 2))
        seg = np.array([0, 0, 1, 1])
        out = F.segment_sum(x, seg, 2)
        np.testing.assert_allclose(out.data, [[2, 4], [10, 12]])

    def test_segment_sum_empty_segment(self):
        x = Tensor(np.ones((2, 2)))
        out = F.segment_sum(x, np.array([0, 0]), 3)
        np.testing.assert_allclose(out.data[1:], np.zeros((2, 2)))

    def test_segment_sum_out_of_range(self):
        with pytest.raises(ValueError):
            F.segment_sum(Tensor(np.ones((2, 2))), np.array([0, 5]), 2)

    def test_segment_sum_grad(self):
        x = _randt((6, 3), seed=19)
        seg = np.array([0, 1, 1, 2, 2, 2])
        w = Tensor(np.random.default_rng(20).normal(size=(3, 3)))
        gradcheck(lambda: (F.segment_sum(x, seg, 3) * w).sum(), [x])

    def test_segment_mean_values(self):
        x = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = F.segment_mean(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [6.0]])

    def test_segment_mean_empty_segment_zero(self):
        x = Tensor(np.ones((1, 2)))
        out = F.segment_mean(x, np.array([0]), 2)
        np.testing.assert_allclose(out.data[1], [0.0, 0.0])

    def test_segment_softmax_normalises_per_segment(self):
        scores = Tensor(np.random.default_rng(21).normal(size=7))
        seg = np.array([0, 0, 0, 1, 1, 2, 2])
        out = F.segment_softmax(scores, seg, 3)
        for k in range(3):
            assert out.data[seg == k].sum() == pytest.approx(1.0)

    def test_segment_softmax_single_member_is_one(self):
        out = F.segment_softmax(Tensor([5.0]), np.array([0]), 1)
        np.testing.assert_allclose(out.data, [1.0])

    def test_segment_softmax_stability_large_scores(self):
        out = F.segment_softmax(Tensor([1000.0, 1000.0]), np.array([0, 0]), 1)
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_segment_softmax_grad(self):
        scores = _randt((8,), seed=22)
        seg = np.array([0, 0, 1, 1, 1, 2, 2, 2])
        w = Tensor(np.random.default_rng(23).normal(size=8))
        gradcheck(lambda: (F.segment_softmax(scores, seg, 3) * w).sum(), [scores])

    def test_segment_softmax_rejects_2d(self):
        with pytest.raises(ValueError):
            F.segment_softmax(Tensor(np.ones((2, 2))), np.array([0, 1]), 2)

    def test_segment_ids_must_be_1d(self):
        with pytest.raises(ValueError):
            F.segment_sum(Tensor(np.ones((2, 2))), np.array([[0], [1]]), 2)

    def test_partition_caches_inverse_counts(self):
        partition = SegmentPartition(np.array([0, 0, 2]), 4)
        inv = partition.inv_counts
        np.testing.assert_allclose(inv, [0.5, 1.0, 1.0, 1.0])
        assert partition.inv_counts is inv  # computed once, reused

    def test_segment_mean_uses_partition_inverse_counts(self):
        x = Tensor(np.array([[2.0], [4.0], [6.0]]))
        ids = np.array([0, 0, 1])
        partition = SegmentPartition(ids, 2)
        with_part = F.segment_mean(x, ids, 2, partition=partition)
        without = F.segment_mean(x, ids, 2)
        np.testing.assert_array_equal(with_part.data, without.data)


def _fused_reference(att, values, value_ids, segment_ids, num_segments,
                     partition):
    """The unfused composition segment_attend replaces."""
    messages = F.gather_rows(values, value_ids) * att.reshape(-1, 1)
    return F.segment_sum(messages, segment_ids, num_segments,
                         partition=partition)


class TestFusedKernels:
    """incidence_scores / segment_attend vs their unfused compositions."""

    def _incidence(self, seed=0, num_keys=7, num_queries=5, nnz=23, dim=4):
        rng = np.random.default_rng(seed)
        keys = Tensor(rng.normal(size=(num_keys, dim)), requires_grad=True)
        queries = Tensor(rng.normal(size=(num_queries, dim)),
                         requires_grad=True)
        key_ids = rng.integers(0, num_keys, size=nnz)
        query_ids = rng.integers(0, num_queries, size=nnz)
        return keys, queries, key_ids, query_ids

    @pytest.mark.parametrize("block_rows", [1, 3, 1024])
    def test_incidence_scores_bitwise_vs_reference(self, block_rows):
        keys, queries, key_ids, query_ids = self._incidence()
        fused = F.incidence_scores(keys, queries, key_ids, query_ids,
                                   block_rows=block_rows)
        reference = (F.gather_rows(keys, key_ids)
                     * F.gather_rows(queries, query_ids)).sum(axis=1)
        np.testing.assert_array_equal(fused.data, reference.data)

    def test_incidence_scores_empty(self):
        keys, queries, _, _ = self._incidence(nnz=0)
        out = F.incidence_scores(keys, queries, np.array([], dtype=np.int64),
                                 np.array([], dtype=np.int64))
        assert out.shape == (0,)
        (out.sum() + (keys.sum() + queries.sum()) * 0.0).backward()

    def test_incidence_scores_rejects_mismatched_ids(self):
        keys, queries, key_ids, query_ids = self._incidence()
        with pytest.raises(ValueError):
            F.incidence_scores(keys, queries, key_ids, query_ids[:-1])

    def test_incidence_scores_rejects_width_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            F.incidence_scores(Tensor(rng.normal(size=(3, 4))),
                               Tensor(rng.normal(size=(3, 5))),
                               np.array([0]), np.array([0]))

    def test_incidence_scores_rejects_mismatched_partition(self):
        keys, queries, key_ids, query_ids = self._incidence()
        wrong = SegmentPartition(np.zeros(3, dtype=np.int64), 1)
        with pytest.raises(ValueError):
            F.incidence_scores(keys, queries, key_ids, query_ids,
                               key_partition=wrong)

    @pytest.mark.parametrize("with_partitions", [False, True])
    def test_incidence_scores_grad_matches_reference(self, with_partitions):
        keys, queries, key_ids, query_ids = self._incidence(seed=3)
        kp = SegmentPartition(key_ids, keys.shape[0]) \
            if with_partitions else None
        qp = SegmentPartition(query_ids, queries.shape[0]) \
            if with_partitions else None
        (F.incidence_scores(keys, queries, key_ids, query_ids,
                            key_partition=kp, query_partition=qp)
         ** 2).sum().backward()
        fused_gk, fused_gq = keys.grad.copy(), queries.grad.copy()
        keys.grad = queries.grad = None
        ((F.gather_rows(keys, key_ids) * F.gather_rows(queries, query_ids))
         .sum(axis=1) ** 2).sum().backward()
        np.testing.assert_allclose(fused_gk, keys.grad, atol=1e-12)
        np.testing.assert_allclose(fused_gq, queries.grad, atol=1e-12)

    def _attend(self, seed=0, num_values=6, num_segments=5, nnz=21, dim=3):
        rng = np.random.default_rng(seed)
        att = Tensor(rng.random(size=nnz), requires_grad=True)
        values = Tensor(rng.normal(size=(num_values, dim)),
                        requires_grad=True)
        value_ids = rng.integers(0, num_values, size=nnz)
        segment_ids = rng.integers(0, num_segments, size=nnz)
        return att, values, value_ids, segment_ids, num_segments

    @pytest.mark.parametrize("block_rows", [1, 4, 1024])
    def test_segment_attend_bitwise_vs_reference(self, block_rows):
        att, values, value_ids, segment_ids, n = self._attend()
        partition = SegmentPartition(segment_ids, n)
        fused = F.segment_attend(att, values, value_ids, segment_ids, n,
                                 partition=partition, block_rows=block_rows)
        reference = _fused_reference(att, values, value_ids, segment_ids, n,
                                     partition)
        np.testing.assert_array_equal(fused.data, reference.data)

    def test_segment_attend_builds_partition_when_absent(self):
        att, values, value_ids, segment_ids, n = self._attend(seed=1)
        fused = F.segment_attend(att, values, value_ids, segment_ids, n)
        partition = SegmentPartition(segment_ids, n)
        reference = _fused_reference(att, values, value_ids, segment_ids, n,
                                     partition)
        np.testing.assert_array_equal(fused.data, reference.data)

    def test_segment_attend_empty_segments_are_zero(self):
        att = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        values = Tensor(np.ones((2, 2)), requires_grad=True)
        out = F.segment_attend(att, values, np.array([0, 1]),
                               np.array([0, 0]), 3)
        np.testing.assert_allclose(out.data[1:], np.zeros((2, 2)))

    def test_segment_attend_empty_incidence(self):
        values = Tensor(np.ones((2, 2)), requires_grad=True)
        empty = np.array([], dtype=np.int64)
        out = F.segment_attend(Tensor(empty.astype(float),
                                      requires_grad=True),
                               values, empty, empty, 3)
        np.testing.assert_array_equal(out.data, np.zeros((3, 2)))

    def test_segment_attend_rejects_bad_shapes(self):
        att, values, value_ids, segment_ids, n = self._attend()
        with pytest.raises(ValueError):
            F.segment_attend(att, values, value_ids[:-1], segment_ids, n)
        with pytest.raises(ValueError):
            F.segment_attend(values, values, value_ids, segment_ids, n)
        with pytest.raises(ValueError):
            F.segment_attend(att, att, value_ids, segment_ids, n)

    @pytest.mark.parametrize("with_value_partition", [False, True])
    def test_segment_attend_grad_matches_reference(self,
                                                   with_value_partition):
        att, values, value_ids, segment_ids, n = self._attend(seed=5)
        partition = SegmentPartition(segment_ids, n)
        vp = SegmentPartition(value_ids, values.shape[0]) \
            if with_value_partition else None
        (F.segment_attend(att, values, value_ids, segment_ids, n,
                          partition=partition, value_partition=vp)
         ** 2).sum().backward()
        fused_ga, fused_gv = att.grad.copy(), values.grad.copy()
        att.grad = values.grad = None
        (_fused_reference(att, values, value_ids, segment_ids, n, partition)
         ** 2).sum().backward()
        np.testing.assert_allclose(fused_ga, att.grad, atol=1e-12)
        np.testing.assert_allclose(fused_gv, values.grad, atol=1e-12)

    def test_oversized_segment_gets_own_block(self):
        # one segment larger than block_rows must still reduce correctly
        att, values, value_ids, _, _ = self._attend(seed=7, nnz=21)
        segment_ids = np.zeros(21, dtype=np.int64)
        segment_ids[-1] = 2
        partition = SegmentPartition(segment_ids, 3)
        fused = F.segment_attend(att, values, value_ids, segment_ids, 3,
                                 partition=partition, block_rows=4)
        reference = _fused_reference(att, values, value_ids, segment_ids, 3,
                                     partition)
        np.testing.assert_array_equal(fused.data, reference.data)


class TestSparseMatmul:
    def test_values_match_dense(self):
        rng = np.random.default_rng(24)
        dense = (rng.random((5, 4)) < 0.4).astype(float)
        mat = sp.csr_matrix(dense)
        x = Tensor(rng.normal(size=(4, 3)))
        out = F.sparse_matmul(mat, x)
        np.testing.assert_allclose(out.data, dense @ x.data)

    def test_grad(self):
        rng = np.random.default_rng(25)
        dense = (rng.random((5, 4)) < 0.5).astype(float)
        mat = sp.csr_matrix(dense)
        x = _randt((4, 3), seed=26)
        w = Tensor(rng.normal(size=(5, 3)))
        gradcheck(lambda: (F.sparse_matmul(mat, x) * w).sum(), [x])

    def test_accepts_coo_input(self):
        mat = sp.coo_matrix(np.eye(3))
        x = Tensor(np.arange(6, dtype=float).reshape(3, 2))
        out = F.sparse_matmul(mat, x)
        np.testing.assert_allclose(out.data, x.data)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=5))
def test_property_segment_sum_total_preserved(n, k):
    rng = np.random.default_rng(n * 7 + k)
    x = Tensor(rng.normal(size=(n, 2)))
    seg = rng.integers(0, k, size=n)
    out = F.segment_sum(x, seg, k)
    np.testing.assert_allclose(out.data.sum(axis=0), x.data.sum(axis=0))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=5))
def test_property_segment_softmax_probabilities(n, k):
    rng = np.random.default_rng(n * 13 + k)
    seg = rng.integers(0, k, size=n)
    out = F.segment_softmax(Tensor(rng.normal(size=n) * 10), seg, k)
    assert np.all(out.data > 0) and np.all(out.data <= 1.0 + 1e-12)
    for seg_id in np.unique(seg):
        assert out.data[seg == seg_id].sum() == pytest.approx(1.0)
