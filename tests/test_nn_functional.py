"""Tests for activations, segment ops, and sparse matmul."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.gradcheck import gradcheck


def _randt(shape, seed=0, shift=0.0, grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) + shift, requires_grad=grad)


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        x = _randt((4, 3), seed=1)
        gradcheck(lambda: (F.relu(x) * 2.0).sum(), [x])

    def test_leaky_relu_values(self):
        out = F.leaky_relu(Tensor([-2.0, 3.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_leaky_relu_grad(self):
        x = _randt((5,), seed=2)
        gradcheck(lambda: F.leaky_relu(x, 0.2).sum(), [x])

    def test_sigmoid_range(self):
        out = F.sigmoid(Tensor([-100.0, 0.0, 100.0]))
        assert np.all(out.data >= 0) and np.all(out.data <= 1)
        assert out.data[1] == pytest.approx(0.5)
        # Moderate inputs stay strictly inside (0, 1).
        mid = F.sigmoid(Tensor([-10.0, 10.0]))
        assert np.all(mid.data > 0) and np.all(mid.data < 1)

    def test_sigmoid_extreme_no_overflow(self):
        out = F.sigmoid(Tensor([-1000.0, 1000.0]))
        assert np.isfinite(out.data).all()

    def test_sigmoid_grad(self):
        x = _randt((6,), seed=3)
        gradcheck(lambda: F.sigmoid(x).sum(), [x])

    def test_tanh_grad(self):
        x = _randt((6,), seed=4)
        gradcheck(lambda: F.tanh(x).sum(), [x])

    def test_elu_values(self):
        out = F.elu(Tensor([-1.0, 1.0]))
        np.testing.assert_allclose(out.data, [np.expm1(-1.0), 1.0])

    def test_elu_grad(self):
        x = _randt((6,), seed=5)
        gradcheck(lambda: F.elu(x).sum(), [x])

    def test_softmax_rows_sum_to_one(self):
        x = _randt((3, 5), seed=6, grad=False)
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3))

    def test_softmax_shift_invariance(self):
        x = np.random.default_rng(7).normal(size=(2, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_softmax_grad(self):
        x = _randt((2, 4), seed=8)
        w = Tensor(np.random.default_rng(9).normal(size=(2, 4)))
        gradcheck(lambda: (F.softmax(x) * w).sum(), [x])

    def test_log_softmax_grad(self):
        x = _randt((2, 4), seed=10)
        w = Tensor(np.random.default_rng(11).normal(size=(2, 4)))
        gradcheck(lambda: (F.log_softmax(x) * w).sum(), [x])

    def test_clip_values_and_grad_mask(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        out = F.clip(x, -1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestConcatGather:
    def test_concat_values(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        out = F.concat([a, b], axis=1)
        assert out.shape == (2, 5)

    def test_concat_grad(self):
        a = _randt((2, 2), seed=12)
        b = _randt((2, 3), seed=13)
        w = Tensor(np.random.default_rng(14).normal(size=(2, 5)))
        gradcheck(lambda: (F.concat([a, b], axis=1) * w).sum(), [a, b])

    def test_concat_axis0_grad(self):
        a = _randt((2, 3), seed=15)
        b = _randt((4, 3), seed=16)
        w = Tensor(np.random.default_rng(17).normal(size=(6, 3)))
        gradcheck(lambda: (F.concat([a, b], axis=0) * w).sum(), [a, b])

    def test_gather_rows_values(self):
        x = Tensor(np.arange(12, dtype=float).reshape(4, 3))
        out = F.gather_rows(x, np.array([3, 0]))
        np.testing.assert_allclose(out.data, [[9, 10, 11], [0, 1, 2]])

    def test_gather_rows_repeated_grad(self):
        x = _randt((4, 3), seed=18)
        idx = np.array([1, 1, 2])
        gradcheck(lambda: (F.gather_rows(x, idx) ** 2).sum(), [x])


class TestDropout:
    def test_identity_when_eval(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_identity_when_p_zero(self):
        x = Tensor(np.ones(5))
        out = F.dropout(x, 0.0, training=True, rng=np.random.default_rng(0))
        assert out is x

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, True, np.random.default_rng(0))

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(42)
        x = Tensor(np.ones(200_00))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_grad_uses_same_mask(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones(100), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        # Gradient equals the mask (either 0 or 1/(1-p)).
        np.testing.assert_allclose(np.unique(x.grad), [0.0, 2.0])


class TestSegmentOps:
    def test_segment_sum_values(self):
        x = Tensor(np.arange(8, dtype=float).reshape(4, 2))
        seg = np.array([0, 0, 1, 1])
        out = F.segment_sum(x, seg, 2)
        np.testing.assert_allclose(out.data, [[2, 4], [10, 12]])

    def test_segment_sum_empty_segment(self):
        x = Tensor(np.ones((2, 2)))
        out = F.segment_sum(x, np.array([0, 0]), 3)
        np.testing.assert_allclose(out.data[1:], np.zeros((2, 2)))

    def test_segment_sum_out_of_range(self):
        with pytest.raises(ValueError):
            F.segment_sum(Tensor(np.ones((2, 2))), np.array([0, 5]), 2)

    def test_segment_sum_grad(self):
        x = _randt((6, 3), seed=19)
        seg = np.array([0, 1, 1, 2, 2, 2])
        w = Tensor(np.random.default_rng(20).normal(size=(3, 3)))
        gradcheck(lambda: (F.segment_sum(x, seg, 3) * w).sum(), [x])

    def test_segment_mean_values(self):
        x = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = F.segment_mean(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [6.0]])

    def test_segment_mean_empty_segment_zero(self):
        x = Tensor(np.ones((1, 2)))
        out = F.segment_mean(x, np.array([0]), 2)
        np.testing.assert_allclose(out.data[1], [0.0, 0.0])

    def test_segment_softmax_normalises_per_segment(self):
        scores = Tensor(np.random.default_rng(21).normal(size=7))
        seg = np.array([0, 0, 0, 1, 1, 2, 2])
        out = F.segment_softmax(scores, seg, 3)
        for k in range(3):
            assert out.data[seg == k].sum() == pytest.approx(1.0)

    def test_segment_softmax_single_member_is_one(self):
        out = F.segment_softmax(Tensor([5.0]), np.array([0]), 1)
        np.testing.assert_allclose(out.data, [1.0])

    def test_segment_softmax_stability_large_scores(self):
        out = F.segment_softmax(Tensor([1000.0, 1000.0]), np.array([0, 0]), 1)
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_segment_softmax_grad(self):
        scores = _randt((8,), seed=22)
        seg = np.array([0, 0, 1, 1, 1, 2, 2, 2])
        w = Tensor(np.random.default_rng(23).normal(size=8))
        gradcheck(lambda: (F.segment_softmax(scores, seg, 3) * w).sum(), [scores])

    def test_segment_softmax_rejects_2d(self):
        with pytest.raises(ValueError):
            F.segment_softmax(Tensor(np.ones((2, 2))), np.array([0, 1]), 2)

    def test_segment_ids_must_be_1d(self):
        with pytest.raises(ValueError):
            F.segment_sum(Tensor(np.ones((2, 2))), np.array([[0], [1]]), 2)


class TestSparseMatmul:
    def test_values_match_dense(self):
        rng = np.random.default_rng(24)
        dense = (rng.random((5, 4)) < 0.4).astype(float)
        mat = sp.csr_matrix(dense)
        x = Tensor(rng.normal(size=(4, 3)))
        out = F.sparse_matmul(mat, x)
        np.testing.assert_allclose(out.data, dense @ x.data)

    def test_grad(self):
        rng = np.random.default_rng(25)
        dense = (rng.random((5, 4)) < 0.5).astype(float)
        mat = sp.csr_matrix(dense)
        x = _randt((4, 3), seed=26)
        w = Tensor(rng.normal(size=(5, 3)))
        gradcheck(lambda: (F.sparse_matmul(mat, x) * w).sum(), [x])

    def test_accepts_coo_input(self):
        mat = sp.coo_matrix(np.eye(3))
        x = Tensor(np.arange(6, dtype=float).reshape(3, 2))
        out = F.sparse_matmul(mat, x)
        np.testing.assert_allclose(out.data, x.data)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=5))
def test_property_segment_sum_total_preserved(n, k):
    rng = np.random.default_rng(n * 7 + k)
    x = Tensor(rng.normal(size=(n, 2)))
    seg = rng.integers(0, k, size=n)
    out = F.segment_sum(x, seg, k)
    np.testing.assert_allclose(out.data.sum(axis=0), x.data.sum(axis=0))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=5))
def test_property_segment_softmax_probabilities(n, k):
    rng = np.random.default_rng(n * 13 + k)
    seg = rng.integers(0, k, size=n)
    out = F.segment_softmax(Tensor(rng.normal(size=n) * 10), seg, k)
    assert np.all(out.data > 0) and np.all(out.data <= 1.0 + 1e-12)
    for seg_id in np.unique(seg):
        assert out.data[seg == seg_id].sum() == pytest.approx(1.0)
