"""Tests for ESPF (Algorithm 2) and k-mer (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem import (ESPF, MoleculeGenerator, kmer_vocabulary, kmerize,
                        kmerize_corpus, tokenize)


@pytest.fixture(scope="module")
def corpus():
    return [r.smiles for r in MoleculeGenerator(seed=3).generate_corpus(60)]


class TestESPF:
    def test_requires_fit_before_encode(self):
        with pytest.raises(RuntimeError):
            ESPF().encode("CCO")

    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError):
            ESPF().fit([])

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            ESPF(frequency_threshold=0).fit(["CCO"])

    def test_merges_frequent_pair(self):
        espf = ESPF(frequency_threshold=3).fit(["CCO", "CCN", "CCS"])
        # 'CC' occurs 3 times -> merged.
        assert ("C", "C") in espf.merges
        assert espf.encode("CCO")[0] == "CC"

    def test_threshold_blocks_rare_pairs(self):
        espf = ESPF(frequency_threshold=4).fit(["CCO", "CCN", "CCS"])
        # 'CC' occurs only 3 times -> below threshold, nothing merged.
        assert espf.num_merges == 0

    def test_encoding_reconstructs_smiles(self, corpus):
        espf = ESPF(frequency_threshold=5).fit(corpus)
        for smiles in corpus[:20]:
            assert "".join(espf.encode(smiles)) == smiles

    def test_higher_threshold_fewer_nodes(self, corpus):
        sizes = [len(ESPF(frequency_threshold=t).fit(corpus).vocabulary(corpus))
                 for t in (5, 10, 15, 20, 25)]
        # Monotone non-increasing: the Table II/III trend.
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sizes[0] > sizes[-1]

    def test_max_vocab_size_caps_merges(self, corpus):
        espf = ESPF(frequency_threshold=2, max_vocab_size=7).fit(corpus)
        assert espf.num_merges <= 7

    def test_merged_tokens_are_substrings_of_drugs(self, corpus):
        espf = ESPF(frequency_threshold=5).fit(corpus)
        vocab = espf.vocabulary(corpus)
        joined = "\n".join(corpus)
        for token in vocab:
            assert token in joined

    def test_encode_unseen_drug(self, corpus):
        espf = ESPF(frequency_threshold=5).fit(corpus)
        unseen = "CCOc1ccccc1N"
        tokens = espf.encode(unseen)
        assert "".join(tokens) == unseen

    def test_deterministic(self, corpus):
        a = ESPF(frequency_threshold=5).fit(corpus)
        b = ESPF(frequency_threshold=5).fit(corpus)
        assert a.merges == b.merges

    def test_single_token_drug(self):
        espf = ESPF(frequency_threshold=2).fit(["CC", "CC"])
        assert espf.encode("C") == ["C"]


class TestKmer:
    def test_paper_example_2mers(self):
        # Sec. III-B: sequence NCCO -> 2-mers {NC, CC, CO}.
        assert kmerize("NCCO", 2) == ["NC", "CC", "CO"]

    def test_paper_example_3mers(self):
        assert kmerize("NCCO", 3) == ["NCC", "CCO"]

    def test_count_formula(self):
        smiles = "CCOCCN"
        for k in (1, 2, 3, 6):
            assert len(kmerize(smiles, k)) == len(smiles) - k + 1

    def test_k_equal_length(self):
        assert kmerize("CCO", 3) == ["CCO"]

    def test_short_string_returns_whole(self):
        assert kmerize("CC", 5) == ["CC"]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmerize("CCO", 0)

    def test_empty_smiles(self):
        with pytest.raises(ValueError):
            kmerize("", 3)

    def test_corpus_returns_drug_dict_and_multiset(self):
        drug_dict, sub_list = kmerize_corpus(["NCCO", "CCO"], 2)
        assert drug_dict["NCCO"] == ["NC", "CC", "CO"]
        assert drug_dict["CCO"] == ["CC", "CO"]
        assert len(sub_list) == 5

    def test_vocabulary_distinct(self):
        vocab = kmer_vocabulary(["NCCO", "CCO"], 2)
        assert sorted(vocab) == ["CC", "CO", "NC"]

    def test_larger_k_more_nodes_on_real_corpus(self, corpus):
        sizes = [len(kmer_vocabulary(corpus, k)) for k in (3, 6, 9)]
        assert sizes[0] < sizes[1] < sizes[2]


class TestGenerator:
    def test_unique_smiles(self):
        records = MoleculeGenerator(seed=11).generate_corpus(80)
        smiles = [r.smiles for r in records]
        assert len(set(smiles)) == 80

    def test_all_valid(self):
        from repro.chem import is_valid_smiles
        records = MoleculeGenerator(seed=12).generate_corpus(50)
        assert all(is_valid_smiles(r.smiles) for r in records)

    def test_deterministic_given_seed(self):
        a = MoleculeGenerator(seed=5).generate_corpus(20)
        b = MoleculeGenerator(seed=5).generate_corpus(20)
        assert [r.smiles for r in a] == [r.smiles for r in b]

    def test_different_seeds_differ(self):
        a = MoleculeGenerator(seed=5).generate_corpus(20)
        b = MoleculeGenerator(seed=6).generate_corpus(20)
        assert [r.smiles for r in a] != [r.smiles for r in b]

    def test_pharmacophores_subset_of_fragments(self):
        for record in MoleculeGenerator(seed=7).generate_corpus(30):
            assert record.pharmacophores <= set(record.fragment_names)

    def test_drug_ids_sequential(self):
        records = MoleculeGenerator(seed=8).generate_corpus(5)
        assert [r.drug_id for r in records] == [f"SD{i:04d}" for i in range(5)]

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            MoleculeGenerator(min_fragments=1)
        with pytest.raises(ValueError):
            MoleculeGenerator(min_fragments=5, max_fragments=3)
        with pytest.raises(ValueError):
            MoleculeGenerator(seed=0).generate_corpus(0)

    def test_pharmacophore_substring_present(self):
        """Latent reactive groups are literal substrings of the SMILES."""
        from repro.chem import fragment_by_name
        for record in MoleculeGenerator(seed=9).generate_corpus(30):
            for name in record.pharmacophores:
                assert fragment_by_name(name).smiles in record.smiles


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="CNO", min_size=1, max_size=30),
       st.integers(min_value=1, max_value=10))
def test_property_kmer_reconstruction(smiles, k):
    """Overlapping k-mers reconstruct the original string."""
    kmers = kmerize(smiles, k)
    if len(smiles) < k:
        assert kmers == [smiles]
    else:
        rebuilt = kmers[0] + "".join(km[-1] for km in kmers[1:])
        assert rebuilt == smiles


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=6))
def test_property_espf_tokens_cover_original(k):
    corpus = [r.smiles for r in MoleculeGenerator(seed=k).generate_corpus(15)]
    espf = ESPF(frequency_threshold=3).fit(corpus)
    for smiles in corpus:
        tokens = espf.encode(smiles)
        assert "".join(tokens) == smiles
        base = tokenize(smiles)
        assert len(tokens) <= len(base)
