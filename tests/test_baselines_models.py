"""Tests for GNN baselines, CASTER, Decagon, LR, and the unified runner."""

import numpy as np
import pytest

from repro.baselines import (BASELINE_NAMES, BaselineConfig, Caster,
                             CasterConfig, Decagon, DecagonConfig,
                             GraphEncoder, LogisticRegression,
                             UnsupervisedConfig, WalkConfig, pair_features,
                             run_baseline, train_unsupervised_gnn)
from repro.data import (balanced_pairs_and_labels, build_multimodal_graph,
                        make_benchmark, random_split)
from repro.graphs import Graph
from repro.nn.gradcheck import gradcheck


@pytest.fixture(scope="module")
def small_setup():
    bench = make_benchmark(scale=0.06, seed=0)
    ds = bench.twosides
    pairs, labels = balanced_pairs_and_labels(ds, seed=0)
    split = random_split(len(pairs), seed=0)
    return bench, ds, pairs, labels, split


@pytest.fixture
def ring_graph():
    edges = [[i, (i + 1) % 8] for i in range(8)]
    return Graph(8, np.array(edges))


class TestLogisticRegression:
    def test_learns_separable_data(self, rng):
        X = rng.normal(size=(400, 6))
        w = rng.normal(size=6)
        y = (X @ w > 0).astype(float)
        clf = LogisticRegression(epochs=300, seed=0).fit(X, y)
        acc = (clf.predict(X) == y).mean()
        assert acc > 0.95

    def test_probabilities_in_range(self, rng):
        X = rng.normal(size=(50, 3))
        y = (rng.random(50) > 0.5).astype(float)
        clf = LogisticRegression(epochs=50).fit(X, y)
        probs = clf.predict_proba(X)
        assert np.all(probs > 0) and np.all(probs < 1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.ones((2, 2)))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((3, 2)), np.ones(2))

    def test_pair_features_concatenation(self):
        emb = np.arange(12, dtype=float).reshape(4, 3)
        feats = pair_features(emb, np.array([[0, 2], [1, 3]]))
        np.testing.assert_allclose(feats[0], [0, 1, 2, 6, 7, 8])
        assert feats.shape == (2, 6)


class TestGraphEncoders:
    @pytest.mark.parametrize("model", ["gcn", "gat", "graphsage"])
    def test_output_shape(self, model, ring_graph, rng):
        encoder = GraphEncoder(model, ring_graph, dim=8, rng=rng)
        assert encoder().shape == (8, 8)

    def test_unknown_model(self, ring_graph, rng):
        with pytest.raises(ValueError):
            GraphEncoder("sage++", ring_graph, 8, rng)

    @pytest.mark.parametrize("model", ["gcn", "gat", "graphsage"])
    def test_gradients_flow_to_features(self, model, ring_graph, rng):
        encoder = GraphEncoder(model, ring_graph, dim=4, rng=rng)
        out = (encoder() ** 2).sum()
        out.backward()
        assert encoder.features.grad is not None
        assert np.abs(encoder.features.grad).max() > 0

    def test_gcn_layer_gradcheck(self, ring_graph, rng):
        encoder = GraphEncoder("gcn", ring_graph, dim=3, rng=rng)
        gradcheck(lambda: (encoder() ** 2).sum(),
                  list(encoder.layer1.parameters()))

    def test_unsupervised_training_learns_ring(self, ring_graph):
        config = UnsupervisedConfig(dim=16, epochs=150, seed=0)
        emb = train_unsupervised_gnn("gcn", ring_graph, config)
        assert emb.shape == (8, 16)
        norm = emb / (np.linalg.norm(emb, axis=1, keepdims=True) + 1e-12)
        adjacent = np.mean([norm[i] @ norm[(i + 1) % 8] for i in range(8)])
        opposite = np.mean([norm[i] @ norm[(i + 4) % 8] for i in range(8)])
        assert adjacent > opposite

    def test_empty_graph_returns_random_features(self):
        empty = Graph(5, np.empty((0, 2)))
        emb = train_unsupervised_gnn("gcn", empty, UnsupervisedConfig(dim=4))
        assert emb.shape == (5, 4)

    def test_gat_fused_matches_unfused_bitwise(self, ring_graph, rng):
        """The GAT layers ride the fused segment kernels via the
        ``[a_src, 1] · [1, a_dst]`` bilinear embedding of the additive
        score; forward outputs must be bitwise-identical to the unfused
        gather-based composition, and gradients must agree to the fused
        kernels' round-off contract (partitioned backward scatter)."""
        from repro.core import fused_kernels

        encoder = GraphEncoder("gat", ring_graph, dim=8, rng=rng)

        def run():
            for p in encoder.parameters():
                p.grad = None
            out = encoder()
            (out ** 2).sum().backward()
            return out.numpy().copy(), [p.grad.copy()
                                        for p in encoder.parameters()]

        with fused_kernels(True):
            fused_out, fused_grads = run()
        with fused_kernels(False):
            unfused_out, unfused_grads = run()
        np.testing.assert_array_equal(fused_out, unfused_out)
        for got, ref in zip(fused_grads, unfused_grads):
            np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-14)

    def test_gat_layer_gradcheck(self, ring_graph, rng):
        encoder = GraphEncoder("gat", ring_graph, dim=3, rng=rng)
        gradcheck(lambda: (encoder() ** 2).sum(),
                  list(encoder.layer1.parameters())
                  + list(encoder.layer2.parameters()))


class TestCaster:
    def test_fit_and_evaluate(self, small_setup):
        _, ds, pairs, labels, split = small_setup
        caster = Caster(CasterConfig(epochs=60, patience=15, seed=0))
        caster.fit(ds.smiles, pairs, labels, split)
        summary = caster.evaluate(pairs[split.test], labels[split.test])
        assert summary.roc_auc > 55.0

    def test_pair_functional_is_union(self, small_setup):
        _, ds, pairs, labels, split = small_setup
        caster = Caster(CasterConfig(epochs=2))
        caster.fit(ds.smiles, pairs, labels, split)
        vectors = caster._drug_vectors(ds.smiles)
        functional = caster.pair_functional(vectors, np.array([[0, 1]]))
        np.testing.assert_allclose(functional[0],
                                   np.maximum(vectors[0], vectors[1]))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            Caster().predict_proba(np.array([[0, 1]]))


class TestDecagon:
    def test_fit_and_evaluate(self, small_setup):
        bench, ds, pairs, labels, split = small_setup
        graph = build_multimodal_graph(bench.universe, ds, seed=0)
        decagon = Decagon(DecagonConfig(epochs=60, patience=15, dim=32))
        decagon.fit(graph, pairs, labels, split)
        summary = decagon.evaluate(pairs[split.test], labels[split.test])
        assert summary.roc_auc > 55.0

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            Decagon().predict_proba(np.array([[0, 1]]))


class TestRunner:
    def test_unknown_baseline(self, small_setup):
        _, ds, pairs, labels, split = small_setup
        with pytest.raises(KeyError):
            run_baseline("gpt", ds, pairs, labels, split)

    def test_decagon_requires_universe(self, small_setup):
        _, ds, pairs, labels, split = small_setup
        with pytest.raises(ValueError):
            run_baseline("decagon", ds, pairs, labels, split)

    def test_baseline_names_cover_paper_rows(self):
        assert "deepwalk" in BASELINE_NAMES
        assert "node2vec" in BASELINE_NAMES
        assert "graphsage-ssg" in BASELINE_NAMES
        assert "caster" in BASELINE_NAMES
        assert "decagon" in BASELINE_NAMES
        assert len(BASELINE_NAMES) == 10

    @pytest.mark.parametrize("name", ["deepwalk", "gcn-ddi", "gcn-ssg",
                                      "caster"])
    def test_each_family_beats_chance(self, name, small_setup):
        bench, ds, pairs, labels, split = small_setup
        config = BaselineConfig(
            walk=WalkConfig(num_walks=4, walk_length=25, epochs=1),
            unsupervised=UnsupervisedConfig(epochs=50),
            caster=CasterConfig(epochs=50, patience=10))
        summary = run_baseline(name, ds, pairs, labels, split, config,
                               universe=bench.universe)
        assert summary.roc_auc > 55.0
