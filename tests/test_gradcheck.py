"""Numerical-vs-analytic gradient validation for the HyGNN building blocks.

``repro.nn.gradcheck`` ships as a utility; this suite wires it across the
attention levels (including the partitioned segment fast paths), both
decoders, the segment kernels, and the encoder end-to-end — so a broken
backward in any of them fails loudly here rather than as a silent training
regression.
"""

import numpy as np
import pytest

from repro.core import (DotDecoder, HyGNNEncoder, HyperedgeLevelAttention,
                        MLPDecoder, NodeLevelAttention,
                        ReversibleHyGNNEncoder)
from repro.nn import SegmentPartition, Tensor
from repro.nn import functional as F
from repro.nn.gradcheck import gradcheck, numerical_gradient

# A small incidence list with an empty hyperedge is deliberately NOT
# included: hypergraph construction guarantees every corpus edge has at
# least one member, and softmax over an empty segment is undefined.
NODE_IDS = np.array([0, 1, 1, 2, 2, 3, 0])
EDGE_IDS = np.array([0, 0, 1, 1, 2, 2, 2])
NUM_NODES, NUM_EDGES = 4, 3


@pytest.fixture
def partitions():
    return (SegmentPartition(NODE_IDS, NUM_NODES),
            SegmentPartition(EDGE_IDS, NUM_EDGES))


def _inputs(rng, node_dim=3, edge_dim=3):
    p = Tensor(rng.normal(size=(NUM_NODES, node_dim)), requires_grad=True)
    q = Tensor(rng.normal(size=(NUM_EDGES, edge_dim)), requires_grad=True)
    return p, q


class TestGradcheckUtility:
    def test_detects_wrong_gradient(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)

        def broken_square():
            out = Tensor._result(x.data ** 2, (x,), "broken")

            def backward():
                x._accumulate(out.grad * x.data)  # missing the factor 2

            out._backward = backward
            return out.sum()

        with pytest.raises(AssertionError):
            gradcheck(broken_square, [x])

    def test_numerical_gradient_of_quadratic(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        numeric = numerical_gradient(lambda: (x ** 2).sum(), x)
        np.testing.assert_allclose(numeric, 2 * x.data, rtol=1e-6, atol=1e-6)


class TestAttentionGradients:
    @pytest.mark.parametrize("use_partition", [False, True])
    def test_hyperedge_level_params_and_inputs(self, rng, partitions,
                                               use_partition):
        node_part = partitions[0] if use_partition else None
        layer = HyperedgeLevelAttention(node_dim=3, edge_dim=3, out_dim=2,
                                        rng=rng)
        p, q = _inputs(rng)
        gradcheck(lambda: (layer(p, q, NODE_IDS, EDGE_IDS,
                                 node_partition=node_part) ** 2).sum(),
                  list(layer.parameters()) + [p, q])

    @pytest.mark.parametrize("use_partition", [False, True])
    def test_node_level_params_and_inputs(self, rng, partitions,
                                          use_partition):
        edge_part = partitions[1] if use_partition else None
        layer = NodeLevelAttention(node_dim=3, edge_dim=3, out_dim=2, rng=rng)
        p, q = _inputs(rng)
        gradcheck(lambda: (layer(p, q, NODE_IDS, EDGE_IDS,
                                 edge_partition=edge_part) ** 2).sum(),
                  list(layer.parameters()) + [p, q])


class TestDecoderGradients:
    def test_mlp_decoder_params_and_inputs(self, rng):
        decoder = MLPDecoder(embed_dim=3, hidden_dim=4, rng=rng)
        left = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        right = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        gradcheck(lambda: (decoder(left, right) ** 2).sum(),
                  list(decoder.parameters()) + [left, right])

    def test_dot_decoder_inputs(self, rng):
        decoder = DotDecoder()
        left = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        right = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        gradcheck(lambda: (decoder(left, right) ** 2).sum(), [left, right])


class TestFusedKernelGradients:
    @pytest.mark.parametrize("use_partitions", [False, True])
    def test_incidence_scores(self, rng, partitions, use_partitions):
        node_part, edge_part = partitions if use_partitions else (None, None)
        keys = Tensor(rng.normal(size=(NUM_EDGES, 3)), requires_grad=True)
        queries = Tensor(rng.normal(size=(NUM_NODES, 3)), requires_grad=True)
        gradcheck(lambda: (F.incidence_scores(
            keys, queries, EDGE_IDS, NODE_IDS, key_partition=edge_part,
            query_partition=node_part) ** 2).sum(), [keys, queries])

    @pytest.mark.parametrize("use_partitions", [False, True])
    def test_segment_attend(self, rng, partitions, use_partitions):
        node_part, edge_part = partitions if use_partitions else (None, None)
        att = Tensor(rng.random(size=len(NODE_IDS)), requires_grad=True)
        values = Tensor(rng.normal(size=(NUM_EDGES, 2)), requires_grad=True)
        gradcheck(lambda: (F.segment_attend(
            att, values, EDGE_IDS, NODE_IDS, NUM_NODES, partition=node_part,
            value_partition=edge_part) ** 2).sum(), [att, values])

    def test_segment_attend_tiny_blocks(self, rng, partitions):
        """Multi-block streaming keeps gradients exact at every boundary."""
        node_part, edge_part = partitions
        att = Tensor(rng.random(size=len(NODE_IDS)), requires_grad=True)
        values = Tensor(rng.normal(size=(NUM_EDGES, 2)), requires_grad=True)
        gradcheck(lambda: (F.segment_attend(
            att, values, EDGE_IDS, NODE_IDS, NUM_NODES, partition=node_part,
            value_partition=edge_part, block_rows=2) ** 2).sum(),
            [att, values])


class TestSegmentKernelGradients:
    @pytest.mark.parametrize("use_partition", [False, True])
    def test_segment_softmax(self, rng, partitions, use_partition):
        edge_part = partitions[1] if use_partition else None
        scores = Tensor(rng.normal(size=len(EDGE_IDS)), requires_grad=True)
        gradcheck(lambda: (F.segment_softmax(
            scores, EDGE_IDS, NUM_EDGES,
            partition=edge_part) ** 2).sum(), [scores])

    @pytest.mark.parametrize("use_partition", [False, True])
    def test_segment_sum_and_mean(self, rng, partitions, use_partition):
        node_part = partitions[0] if use_partition else None
        x = Tensor(rng.normal(size=(len(NODE_IDS), 2)), requires_grad=True)
        gradcheck(lambda: (F.segment_sum(
            x, NODE_IDS, NUM_NODES, partition=node_part) ** 2).sum(), [x])
        gradcheck(lambda: (F.segment_mean(
            x, NODE_IDS, NUM_NODES, partition=node_part) ** 2).sum(), [x])


class TestEncoderGradients:
    def test_end_to_end_single_layer(self, rng):
        encoder = HyGNNEncoder(num_substructures=NUM_NODES, embed_dim=3,
                               hidden_dim=2, rng=rng, dropout=0.0)
        gradcheck(lambda: (encoder(NODE_IDS, EDGE_IDS, NUM_EDGES) ** 2).sum(),
                  list(encoder.parameters()))

    def test_subset_path_gradients_flow_to_embedding(self, rng):
        """encode_edges_subset stays differentiable end to end."""
        encoder = HyGNNEncoder(num_substructures=NUM_NODES, embed_dim=3,
                               hidden_dim=2, rng=rng, dropout=0.0)
        encoder.eval()

        def loss():
            _, context = encoder.encode_with_context(NODE_IDS, EDGE_IDS,
                                                     NUM_EDGES)
            subset = encoder.encode_edges_subset(
                context, np.array([0, 3]), np.array([0, 0]), 1)
            return (subset ** 2).sum()

        gradcheck(loss, list(encoder.parameters()))


class TestMultiHeadGradients:
    @pytest.mark.parametrize("use_partition", [False, True])
    def test_hyperedge_level_two_heads(self, rng, partitions, use_partition):
        node_part = partitions[0] if use_partition else None
        layer = HyperedgeLevelAttention(node_dim=3, edge_dim=3, out_dim=2,
                                        rng=rng, num_heads=2)
        p, q = _inputs(rng)
        gradcheck(lambda: (layer(p, q, NODE_IDS, EDGE_IDS,
                                 node_partition=node_part) ** 2).sum(),
                  list(layer.parameters()) + [p, q])

    @pytest.mark.parametrize("use_partition", [False, True])
    def test_node_level_two_heads(self, rng, partitions, use_partition):
        edge_part = partitions[1] if use_partition else None
        layer = NodeLevelAttention(node_dim=3, edge_dim=3, out_dim=2,
                                   rng=rng, num_heads=2)
        p, q = _inputs(rng)
        gradcheck(lambda: (layer(p, q, NODE_IDS, EDGE_IDS,
                                 edge_partition=edge_part) ** 2).sum(),
                  list(layer.parameters()) + [p, q])


class TestReversibleGradients:
    @staticmethod
    def _coupling(w1, w2, half):
        def fn(x):
            x1, x2 = x[:, :half], x[:, half:]
            y1 = x1 + x2 @ w1
            y2 = x2 + F.tanh(y1) @ w2
            return F.concat([y1, y2], axis=1)

        def fn_inverse(y):
            y1, y2 = y[:, :half], y[:, half:]
            x2 = y2 - F.tanh(y1) @ w2
            x1 = y1 - x2 @ w1
            return F.concat([x1, x2], axis=1)

        return fn, fn_inverse

    def test_invertible_checkpoint_op(self, rng):
        w1 = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        fn, fn_inverse = self._coupling(w1, w2, 2)
        gradcheck(lambda: (F.invertible_checkpoint(
            fn, fn_inverse, x, (w1, w2)) ** 2).sum(), [x, w1, w2])

    def test_chained_checkpoints_reconstruct_freed_input(self, rng):
        """The second checkpoint frees the first's output; its backward
        gradient flows through an inverse-reconstructed input."""
        w1 = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        fn, fn_inverse = self._coupling(w1, w2, 2)

        def loss():
            mid = F.invertible_checkpoint(fn, fn_inverse, x, (w1, w2))
            return (F.invertible_checkpoint(fn, fn_inverse, mid,
                                            (w1, w2)) ** 2).sum()

        gradcheck(loss, [x, w1, w2])

    def test_reversible_encoder_end_to_end(self, rng):
        encoder = ReversibleHyGNNEncoder(num_substructures=NUM_NODES,
                                         embed_dim=3, hidden_dim=2, rng=rng,
                                         num_layers=2, dropout=0.0)
        assert encoder.recompute
        gradcheck(lambda: (encoder(NODE_IDS, EDGE_IDS, NUM_EDGES) ** 2).sum(),
                  list(encoder.parameters()))
