"""Tests for the from-scratch classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (EvaluationSummary, accuracy_score, confusion_counts,
                           f1_from_scores, f1_score, pr_auc_score,
                           precision_score, recall_score, roc_auc_score,
                           roc_curve)


class TestConfusionAndF1:
    def test_confusion_counts(self):
        y = [1, 1, 0, 0, 1]
        p = [1, 0, 0, 1, 1]
        assert confusion_counts(y, p) == (2, 1, 1, 1)

    def test_precision_recall(self):
        y = [1, 1, 0, 0, 1]
        p = [1, 0, 0, 1, 1]
        assert precision_score(y, p) == pytest.approx(2 / 3)
        assert recall_score(y, p) == pytest.approx(2 / 3)

    def test_f1_hand_computed(self):
        y = [1, 1, 0, 0, 1]
        p = [1, 0, 0, 1, 1]
        assert f1_score(y, p) == pytest.approx(2 / 3)

    def test_f1_perfect(self):
        assert f1_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_f1_all_wrong_is_zero(self):
        assert f1_score([1, 1, 0], [0, 0, 1]) == 0.0

    def test_f1_no_positive_predictions(self):
        assert f1_score([1, 0], [0, 0]) == 0.0

    def test_accuracy(self):
        assert accuracy_score([1, 0, 1, 0], [1, 0, 0, 0]) == 0.75

    def test_f1_from_scores_threshold(self):
        y = [1, 0]
        scores = [0.6, 0.4]
        assert f1_from_scores(y, scores, threshold=0.5) == 1.0
        assert f1_from_scores(y, scores, threshold=0.7) == 0.0

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            f1_score([0, 2], [0, 1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            f1_score([], [])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            f1_score([1, 0], [1])


class TestROCAUC:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_ties_give_half(self):
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_hand_computed_value(self):
        # Pairs: (pos=0.8 vs negs 0.1, 0.7) -> 2 wins; (pos=0.4 vs 0.1 win,
        # vs 0.7 lose) -> 1 win. AUC = 3/4.
        y = [1, 1, 0, 0]
        s = [0.8, 0.4, 0.1, 0.7]
        assert roc_auc_score(y, s) == pytest.approx(0.75)

    def test_tie_between_pos_and_neg_counts_half(self):
        assert roc_auc_score([1, 0], [0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.5, 0.6])

    def test_score_shift_invariance(self):
        y = [0, 1, 1, 0, 1]
        s = np.array([0.2, 0.6, 0.9, 0.4, 0.5])
        assert roc_auc_score(y, s) == pytest.approx(roc_auc_score(y, s + 10))

    def test_curve_endpoints(self):
        fpr, tpr, _ = roc_curve([0, 1, 1, 0], [0.1, 0.9, 0.8, 0.3])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0


class TestPRAUC:
    def test_perfect_ranking(self):
        assert pr_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_hand_computed_value(self):
        # Descending: (0.8,1) (0.7,0) (0.4,1) (0.1,0)
        # AP = 0.5*1.0 + 0.5*(2/3) = 5/6.
        y = [1, 1, 0, 0]
        s = [0.8, 0.4, 0.1, 0.7]
        assert pr_auc_score(y, s) == pytest.approx(5 / 6)

    def test_all_negative_raises(self):
        with pytest.raises(ValueError):
            pr_auc_score([0, 0], [0.1, 0.2])

    def test_baseline_equals_prevalence_for_constant_scores(self):
        y = [1, 0, 0, 0]
        assert pr_auc_score(y, [0.5] * 4) == pytest.approx(0.25)

    def test_worst_ranking_low_but_positive(self):
        score = pr_auc_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9])
        assert 0 < score < 0.6


class TestEvaluationSummary:
    def test_percent_scaling(self):
        summary = EvaluationSummary.from_scores([0, 1, 1, 0],
                                                [0.2, 0.9, 0.8, 0.1])
        assert summary.f1 == 100.0
        assert summary.roc_auc == 100.0
        assert summary.pr_auc == 100.0

    def test_as_row_keys(self):
        summary = EvaluationSummary(90.0, 95.0, 93.0)
        assert set(summary.as_row()) == {"F1", "ROC-AUC", "PR-AUC"}

    def test_str_format(self):
        text = str(EvaluationSummary(90.123, 95.5, 93.0))
        assert "F1=90.12" in text


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=200), st.integers(min_value=0, max_value=10**6))
def test_property_roc_auc_in_unit_interval(n, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    if y.min() == y.max():
        y[0] = 1 - y[0]
    s = rng.random(n)
    auc = roc_auc_score(y, s)
    assert 0.0 <= auc <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=200), st.integers(min_value=0, max_value=10**6))
def test_property_roc_auc_complement_symmetry(n, seed):
    """AUC(y, s) + AUC(y, -s) == 1 (with midrank tie handling)."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    if y.min() == y.max():
        y[0] = 1 - y[0]
    s = rng.random(n)
    assert roc_auc_score(y, s) + roc_auc_score(y, -s) == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=100), st.integers(min_value=0, max_value=10**6))
def test_property_pr_auc_at_least_prevalence_for_perfect(n, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    if y.min() == y.max():
        y[0] = 1 - y[0]
    # Perfect scores: positives all above negatives.
    s = y + rng.random(n) * 0.5
    assert pr_auc_score(y, s) == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=100), st.integers(min_value=0, max_value=10**6))
def test_property_f1_bounded(n, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    p = rng.integers(0, 2, size=n)
    assert 0.0 <= f1_score(y, p) <= 1.0
