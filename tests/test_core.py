"""Tests for the HyGNN core: attention layers, encoder, decoders, trainer."""

import numpy as np
import pytest

from repro.core import (DotDecoder, HyGNN, HyGNNConfig, HyGNNEncoder,
                        HyperedgeLevelAttention, MLPDecoder,
                        NodeLevelAttention, Trainer, grid_configs,
                        make_decoder, paper_grid, train_hygnn)
from repro.data import balanced_pairs_and_labels, make_benchmark, random_split
from repro.hypergraph import Hypergraph, build_drug_hypergraph
from repro.nn import Tensor
from repro.nn.gradcheck import gradcheck


@pytest.fixture(scope="module")
def tiny_hypergraph():
    # 4 nodes, 3 hyperedges, hand-built.
    return Hypergraph(4, 3,
                      node_ids=[0, 1, 1, 2, 2, 3],
                      edge_ids=[0, 0, 1, 1, 2, 2])


@pytest.fixture(scope="module")
def small_training_setup():
    bench = make_benchmark(scale=0.06, seed=0)
    ds = bench.twosides
    pairs, labels = balanced_pairs_and_labels(ds, seed=0)
    split = random_split(len(pairs), seed=0)
    return ds, pairs, labels, split


class TestAttentionLayers:
    def test_hyperedge_level_output_shape(self, tiny_hypergraph, rng):
        layer = HyperedgeLevelAttention(node_dim=5, edge_dim=6, out_dim=7, rng=rng)
        p = Tensor(rng.normal(size=(4, 5)))
        q = Tensor(rng.normal(size=(3, 6)))
        out = layer(p, q, tiny_hypergraph.node_ids, tiny_hypergraph.edge_ids)
        assert out.shape == (4, 7)

    def test_node_level_output_shape(self, tiny_hypergraph, rng):
        layer = NodeLevelAttention(node_dim=5, edge_dim=6, out_dim=7, rng=rng)
        p = Tensor(rng.normal(size=(4, 5)))
        q = Tensor(rng.normal(size=(3, 6)))
        out = layer(p, q, tiny_hypergraph.node_ids, tiny_hypergraph.edge_ids)
        assert out.shape == (3, 7)

    def test_hyperedge_level_gradients(self, tiny_hypergraph, rng):
        layer = HyperedgeLevelAttention(node_dim=3, edge_dim=3, out_dim=2, rng=rng)
        p = Tensor(rng.normal(size=(4, 3)))
        q = Tensor(rng.normal(size=(3, 3)))
        gradcheck(lambda: (layer(p, q, tiny_hypergraph.node_ids,
                                 tiny_hypergraph.edge_ids) ** 2).sum(),
                  list(layer.parameters()))

    def test_node_level_gradients(self, tiny_hypergraph, rng):
        layer = NodeLevelAttention(node_dim=3, edge_dim=3, out_dim=2, rng=rng)
        p = Tensor(rng.normal(size=(4, 3)))
        q = Tensor(rng.normal(size=(3, 3)))
        gradcheck(lambda: (layer(p, q, tiny_hypergraph.node_ids,
                                 tiny_hypergraph.edge_ids) ** 2).sum(),
                  list(layer.parameters()))

    def test_attention_weights_normalised_per_edge(self, tiny_hypergraph, rng):
        layer = NodeLevelAttention(node_dim=3, edge_dim=3, out_dim=2, rng=rng)
        p = Tensor(rng.normal(size=(4, 3)))
        q = Tensor(rng.normal(size=(3, 3)))
        weights = layer.attention_weights(p, q, tiny_hypergraph.node_ids,
                                          tiny_hypergraph.edge_ids)
        for edge in range(3):
            mask = tiny_hypergraph.edge_ids == edge
            assert weights[mask].sum() == pytest.approx(1.0)


class TestEncoder:
    def test_output_shape(self, tiny_hypergraph, rng):
        enc = HyGNNEncoder(num_substructures=4, embed_dim=8, hidden_dim=6,
                           rng=rng, dropout=0.0)
        out = enc.encode_hypergraph(tiny_hypergraph)
        assert out.shape == (3, 6)

    def test_rejects_zero_layers(self, rng):
        with pytest.raises(ValueError):
            HyGNNEncoder(4, 8, 6, rng, num_layers=0)

    def test_two_layer_encoder(self, tiny_hypergraph, rng):
        enc = HyGNNEncoder(4, 8, 6, rng, num_layers=2, dropout=0.0)
        assert enc.encode_hypergraph(tiny_hypergraph).shape == (3, 6)

    def test_node_id_out_of_vocab_raises(self, rng):
        enc = HyGNNEncoder(2, 4, 4, rng, dropout=0.0)
        with pytest.raises(ValueError):
            enc.forward(np.array([5]), np.array([0]), 1)

    def test_inductive_new_edges(self, tiny_hypergraph, rng):
        """The encoder embeds hyperedges it never saw in training."""
        enc = HyGNNEncoder(4, 8, 6, rng, dropout=0.0)
        # New incidence over the same node vocabulary: 2 new drugs.
        out = enc.forward(np.array([0, 3]), np.array([0, 1]), 2)
        assert out.shape == (2, 6)

    def test_deterministic_in_eval_mode(self, tiny_hypergraph, rng):
        enc = HyGNNEncoder(4, 8, 6, rng, dropout=0.5)
        enc.eval()
        a = enc.encode_hypergraph(tiny_hypergraph).numpy()
        b = enc.encode_hypergraph(tiny_hypergraph).numpy()
        np.testing.assert_allclose(a, b)

    def test_substructure_attention_shape(self, tiny_hypergraph, rng):
        enc = HyGNNEncoder(4, 8, 6, rng, dropout=0.0)
        weights = enc.substructure_attention(tiny_hypergraph)
        assert weights.shape == (tiny_hypergraph.num_incidences,)
        assert weights.sum() == pytest.approx(tiny_hypergraph.num_edges)


class TestDecoders:
    def test_mlp_decoder_shape(self, rng):
        dec = MLPDecoder(embed_dim=6, hidden_dim=4, rng=rng)
        left = Tensor(rng.normal(size=(5, 6)))
        right = Tensor(rng.normal(size=(5, 6)))
        assert dec(left, right).shape == (5,)

    def test_dot_decoder_matches_numpy(self, rng):
        dec = DotDecoder()
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(4, 3))
        out = dec(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, (a * b).sum(axis=1))

    def test_dot_decoder_has_no_parameters(self):
        assert DotDecoder().num_parameters() == 0

    def test_mlp_decoder_gradients(self, rng):
        dec = MLPDecoder(embed_dim=3, hidden_dim=4, rng=rng)
        left = Tensor(rng.normal(size=(3, 3)))
        right = Tensor(rng.normal(size=(3, 3)))
        gradcheck(lambda: (dec(left, right) ** 2).sum(),
                  list(dec.parameters()))

    def test_factory(self, rng):
        assert isinstance(make_decoder("mlp", 4, 4, rng), MLPDecoder)
        assert isinstance(make_decoder("DOT", 4, 4, rng), DotDecoder)
        with pytest.raises(ValueError):
            make_decoder("bilinear", 4, 4, rng)


class TestConfig:
    def test_defaults_match_paper_best_variant(self):
        config = HyGNNConfig()
        assert config.method == "kmer" and config.decoder == "mlp"
        assert config.num_layers == 1  # single-layer HyGNN (Sec. IV-B)

    def test_validation(self):
        with pytest.raises(ValueError):
            HyGNNConfig(method="fingerprint")
        with pytest.raises(ValueError):
            HyGNNConfig(decoder="bilinear")
        with pytest.raises(ValueError):
            HyGNNConfig(dropout=1.5)
        with pytest.raises(ValueError):
            HyGNNConfig(epochs=0)

    def test_with_updates(self):
        config = HyGNNConfig().with_updates(hidden_dim=128)
        assert config.hidden_dim == 128

    def test_paper_grid_is_table4(self):
        grid = paper_grid()
        assert set(grid["learning_rate"]) == {1e-2, 5e-2, 1e-3, 5e-3}
        assert set(grid["hidden_dim"]) == {32, 64, 128}
        assert set(grid["dropout"]) == {0.1, 0.5}
        assert set(grid["weight_decay"]) == {1e-2, 1e-3}
        assert len(grid_configs(HyGNNConfig(), grid)) == 48


class TestModelAndTrainer:
    def test_forward_logits_shape(self, small_training_setup):
        ds, pairs, labels, split = small_training_setup
        config = HyGNNConfig(epochs=2, embed_dim=16, hidden_dim=16)
        model, hg, _ = HyGNN.for_corpus(ds.smiles, config)
        logits = model(hg, pairs[:10])
        assert logits.shape == (10,)

    def test_predict_proba_in_unit_interval(self, small_training_setup):
        ds, pairs, labels, split = small_training_setup
        config = HyGNNConfig(epochs=2, embed_dim=16, hidden_dim=16)
        model, hg, _ = HyGNN.for_corpus(ds.smiles, config)
        probs = model.predict_proba(hg, pairs[:20])
        assert np.all(probs >= 0) and np.all(probs <= 1)

    def test_predict_proba_preserves_training_mode(self, small_training_setup):
        ds, pairs, labels, split = small_training_setup
        config = HyGNNConfig(epochs=2, embed_dim=16, hidden_dim=16)
        model, hg, _ = HyGNN.for_corpus(ds.smiles, config)
        model.train()
        model.predict_proba(hg, pairs[:5])
        assert model.training

    def test_training_reduces_loss(self, small_training_setup):
        ds, pairs, labels, split = small_training_setup
        config = HyGNNConfig(epochs=40, patience=40, embed_dim=16,
                             hidden_dim=16, seed=1)
        model, hg, _ = HyGNN.for_corpus(ds.smiles, config)
        trainer = Trainer(model, config)
        history = trainer.fit(hg, pairs, labels, split)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_training_beats_chance(self, small_training_setup):
        ds, pairs, labels, split = small_training_setup
        config = HyGNNConfig(epochs=120, patience=30, embed_dim=32,
                             hidden_dim=32, seed=0)
        model, hg, history, summary = train_hygnn(
            ds.smiles, pairs, labels, split, config)
        assert summary.roc_auc > 60.0  # way above the 50% chance level

    def test_early_stopping_restores_best_weights(self, small_training_setup):
        ds, pairs, labels, split = small_training_setup
        config = HyGNNConfig(epochs=60, patience=5, embed_dim=16,
                             hidden_dim=16, seed=2)
        model, hg, _ = HyGNN.for_corpus(ds.smiles, config)
        trainer = Trainer(model, config)
        history = trainer.fit(hg, pairs, labels, split)
        if history.stopped_early:
            assert history.best_epoch < history.epochs_run - 1

    def test_deterministic_given_seed(self, small_training_setup):
        ds, pairs, labels, split = small_training_setup
        config = HyGNNConfig(epochs=8, embed_dim=16, hidden_dim=16, seed=7)
        _, _, _, s1 = train_hygnn(ds.smiles, pairs, labels, split, config)
        _, _, _, s2 = train_hygnn(ds.smiles, pairs, labels, split, config)
        assert s1 == s2
