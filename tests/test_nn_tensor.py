"""Unit and property tests for the autograd Tensor core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.gradcheck import gradcheck
from repro.nn.tensor import unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_from_array_casts_dtype(self):
        t = Tensor(np.array([1, 2], dtype=np.int32))
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_item_on_single_element_array(self):
        assert Tensor(np.array([[2.0]])).item() == pytest.approx(2.0)

    def test_item_on_multi_element_raises_value_error(self):
        with pytest.raises(ValueError, match="single-element"):
            Tensor([1.0, 2.0]).item()

    def test_item_on_empty_raises_value_error(self):
        with pytest.raises(ValueError, match="single-element"):
            Tensor(np.zeros((0,))).item()

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_detach_drops_grad_flag(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert unbroadcast(g, (3, 4)).shape == (3, 4)

    def test_sum_prepended_axis(self):
        g = np.ones((5, 3))
        out = unbroadcast(g, (3,))
        assert out.shape == (3,)
        assert np.all(out == 5)

    def test_sum_stretched_axis(self):
        g = np.ones((3, 4))
        out = unbroadcast(g, (3, 1))
        assert out.shape == (3, 1)
        assert np.all(out == 4)

    def test_combined(self):
        g = np.ones((2, 3, 4))
        out = unbroadcast(g, (1, 4))
        assert out.shape == (1, 4)
        assert np.all(out == 6)


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0]) + 2.0
        np.testing.assert_allclose(out.data, [3.0])

    def test_radd(self):
        out = 2.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_sub(self):
        out = Tensor([5.0]) - Tensor([2.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_rsub(self):
        out = 5.0 - Tensor([2.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_mul_broadcast(self):
        out = Tensor(np.ones((2, 3))) * Tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose(out.data, [[1, 2, 3], [1, 2, 3]])

    def test_div(self):
        out = Tensor([6.0]) / Tensor([2.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_rtruediv(self):
        out = 6.0 / Tensor([2.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_pow(self):
        out = Tensor([2.0]) ** 3
        np.testing.assert_allclose(out.data, [8.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_matmul_matrix_vector(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        v = Tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose((a @ v).data, a.data @ v.data)


class TestBackwardBasics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar_without_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_shape_check(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(3))

    def test_grad_accumulates(self):
        t = Tensor([1.0], requires_grad=True)
        out = (t * 2).sum()
        out.backward()
        out2 = (t * 3).sum()
        out2.backward()
        np.testing.assert_allclose(t.grad, [5.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph(self):
        # y = x*x + x*x must give dy/dx = 4x (shared subexpression reuse).
        x = Tensor([3.0], requires_grad=True)
        xx = x * x
        y = (xx + xx).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_no_grad_tracked_for_constant(self):
        a = Tensor([1.0])
        b = Tensor([2.0], requires_grad=True)
        out = (a * b).sum()
        out.backward()
        assert a.grad is None
        np.testing.assert_allclose(b.grad, [1.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestGradients:
    def test_add_broadcast_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(3,)), requires_grad=True)
        gradcheck(lambda: (a + b).sum(), [a, b])

    def test_mul_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 3)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(2, 3)), requires_grad=True)
        gradcheck(lambda: (a * b).sum(), [a, b])

    def test_div_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3,)) + 3.0, requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(3,)) + 3.0, requires_grad=True)
        gradcheck(lambda: (a / b).sum(), [a, b])

    def test_matmul_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 2)), requires_grad=True)
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vector_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        v = Tensor(np.random.default_rng(1).normal(size=(4,)), requires_grad=True)
        gradcheck(lambda: (a @ v).sum(), [a, v])

    def test_vector_matmul_grad(self):
        v = Tensor(np.random.default_rng(0).normal(size=(3,)), requires_grad=True)
        a = Tensor(np.random.default_rng(1).normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda: (v @ a).sum(), [v, a])

    def test_dot_grad(self):
        u = Tensor(np.random.default_rng(0).normal(size=(5,)), requires_grad=True)
        v = Tensor(np.random.default_rng(1).normal(size=(5,)), requires_grad=True)
        gradcheck(lambda: u @ v, [u, v])

    def test_pow_grad(self):
        a = Tensor(np.abs(np.random.default_rng(0).normal(size=(4,))) + 0.5,
                   requires_grad=True)
        gradcheck(lambda: (a ** 3).sum(), [a])

    def test_exp_log_grad(self):
        a = Tensor(np.abs(np.random.default_rng(0).normal(size=(4,))) + 0.5,
                   requires_grad=True)
        gradcheck(lambda: a.exp().log().sum(), [a])

    def test_reshape_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 6)), requires_grad=True)
        gradcheck(lambda: (a.reshape(3, 4) * 2.0).sum(), [a])

    def test_transpose_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 3)), requires_grad=True)
        w = Tensor(np.random.default_rng(1).normal(size=(3, 2)))
        gradcheck(lambda: (a.T * w).sum(), [a])

    def test_getitem_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 4])
        gradcheck(lambda: (a[idx] ** 2).sum(), [a])

    def test_sum_axis_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        w = Tensor(np.random.default_rng(1).normal(size=(4,)))
        gradcheck(lambda: (a.sum(axis=0) * w).sum(), [a])

    def test_mean_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda: a.mean(), [a])

    def test_mean_axis_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        w = Tensor(np.random.default_rng(1).normal(size=(3,)))
        gradcheck(lambda: (a.mean(axis=1) * w).sum(), [a])

    def test_max_grad_unique(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]]), requires_grad=True)
        out = a.max(axis=1).sum()
        out.backward()
        expected = np.array([[0, 1, 0], [1, 0, 0]], dtype=float)
        np.testing.assert_allclose(a.grad, expected)

    def test_max_grad_ties_split(self):
        a = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
def test_property_add_commutes(n, m):
    rng = np.random.default_rng(n * 31 + m)
    a, b = rng.normal(size=(n, m)), rng.normal(size=(n, m))
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    np.testing.assert_allclose(left, right)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4))
def test_property_matmul_matches_numpy(n, m, p):
    rng = np.random.default_rng(n * 100 + m * 10 + p)
    a, b = rng.normal(size=(n, m)), rng.normal(size=(m, p))
    np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False),
                min_size=1, max_size=8))
def test_property_sum_linearity_gradient(values):
    x = Tensor(np.array(values), requires_grad=True)
    (x.sum() * 3.0).backward()
    np.testing.assert_allclose(x.grad, np.full(len(values), 3.0))
