"""Tests for optimizers, losses, and initialisation."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Tensor, bce, bce_with_logits, mse
from repro.nn import functional as F
from repro.nn import init
from repro.nn.gradcheck import gradcheck


class TestSGD:
    def test_basic_step(self):
        p = Tensor([1.0], requires_grad=True)
        p.grad = np.array([0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = Tensor([0.0], requires_grad=True)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-1.0])
        p.grad = np.array([1.0])
        opt.step()  # velocity = 0.9 * 1 + 1 = 1.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay_shrinks(self):
        p = Tensor([2.0], requires_grad=True)
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_skips_params_without_grad(self):
        p = Tensor([1.0], requires_grad=True)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_nonpositive_lr(self):
        p = Tensor([1.0], requires_grad=True)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, |first step| == lr regardless of grad scale.
        p = Tensor([0.0], requires_grad=True)
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        np.testing.assert_allclose(np.abs(p.data), [0.01], rtol=1e-6)

    def test_zero_grad_clears(self):
        p = Tensor([0.0], requires_grad=True)
        opt = Adam([p], lr=0.01)
        p.grad = np.array([1.0])
        opt.zero_grad()
        assert p.grad is None

    def test_converges_on_quadratic(self):
        p = Tensor([5.0], requires_grad=True)
        opt = Adam([p], lr=0.2)
        for _ in range(300):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay_pulls_to_zero(self):
        p = Tensor([3.0], requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        for _ in range(200):
            opt.zero_grad()
            p.grad = np.zeros_like(p.data)
            opt.step()
        assert abs(p.data[0]) < 0.5


class TestBCEWithLogits:
    def test_matches_manual_formula(self):
        logits = Tensor([0.3, -1.2, 2.0])
        y = np.array([1.0, 0.0, 1.0])
        expected = -(y * np.log(1 / (1 + np.exp(-logits.data)))
                     + (1 - y) * np.log(1 - 1 / (1 + np.exp(-logits.data))))
        loss = bce_with_logits(logits, y)
        assert loss.item() == pytest.approx(expected.mean())

    def test_extreme_logits_finite(self):
        loss = bce_with_logits(Tensor([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            bce_with_logits(Tensor([0.0, 1.0]), np.array([1.0]))

    def test_gradient(self):
        logits = Tensor(np.random.default_rng(0).normal(size=6), requires_grad=True)
        y = (np.random.default_rng(1).random(6) > 0.5).astype(float)
        gradcheck(lambda: bce_with_logits(logits, y), [logits])

    def test_gradient_matches_sigmoid_minus_target(self):
        logits = Tensor(np.array([0.0]), requires_grad=True)
        bce_with_logits(logits, np.array([1.0])).backward()
        np.testing.assert_allclose(logits.grad, [0.5 - 1.0])

    def test_perfect_prediction_near_zero_loss(self):
        loss = bce_with_logits(Tensor([20.0, -20.0]), np.array([1.0, 0.0]))
        assert loss.item() < 1e-8


class TestBCEOnProbabilities:
    def test_matches_logits_version(self):
        z = np.array([0.7, -0.3, 1.5])
        y = np.array([1.0, 0.0, 1.0])
        probs = F.sigmoid(Tensor(z))
        a = bce(probs, y).item()
        b = bce_with_logits(Tensor(z), y).item()
        assert a == pytest.approx(b, rel=1e-9)

    def test_gradient_through_sigmoid(self):
        z = Tensor(np.random.default_rng(3).normal(size=5), requires_grad=True)
        y = (np.random.default_rng(4).random(5) > 0.5).astype(float)
        gradcheck(lambda: bce(F.sigmoid(z), y), [z])


class TestMSE:
    def test_value(self):
        loss = mse(Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_gradient(self):
        x = Tensor(np.random.default_rng(5).normal(size=4), requires_grad=True)
        y = np.random.default_rng(6).normal(size=4)
        gradcheck(lambda: mse(x, y), [x])


class TestInit:
    def test_xavier_uniform_bounds(self, rng):
        t = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(t.data).max() <= bound
        assert t.requires_grad

    def test_xavier_normal_std(self, rng):
        t = init.xavier_normal((400, 400), rng)
        assert t.data.std() == pytest.approx(np.sqrt(2.0 / 800), rel=0.1)

    def test_kaiming_uniform_bounds(self, rng):
        t = init.kaiming_uniform((100, 50), rng, negative_slope=0.0)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 100)
        assert np.abs(t.data).max() <= bound

    def test_zeros(self):
        t = init.zeros((3, 3))
        assert (t.data == 0).all() and t.requires_grad

    def test_vector_fans(self, rng):
        t = init.xavier_uniform((10,), rng)
        assert t.shape == (10,)


class TestEndToEndTraining:
    def test_linear_model_learns_separable_data(self, rng):
        X = rng.normal(size=(300, 8))
        w_true = rng.normal(size=8)
        y = (X @ w_true > 0).astype(float)
        lin = Linear(8, 1, rng)
        opt = Adam(lin.parameters(), lr=0.05)
        for _ in range(250):
            opt.zero_grad()
            loss = bce_with_logits(lin(Tensor(X)).reshape(300), y)
            loss.backward()
            opt.step()
        acc = ((lin(Tensor(X)).data.reshape(-1) > 0) == y).mean()
        assert acc > 0.95

    def test_loss_decreases_monotonically_enough(self, rng):
        X = rng.normal(size=(100, 4))
        y = (X[:, 0] > 0).astype(float)
        lin = Linear(4, 1, rng)
        opt = SGD(lin.parameters(), lr=0.5)
        losses = []
        for _ in range(50):
            opt.zero_grad()
            loss = bce_with_logits(lin(Tensor(X)).reshape(100), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5
