"""Tests for the experiment harness (fast profile; shape checks only)."""

import numpy as np
import pytest

from repro.experiments import (EXPERIMENTS, FAST, ExperimentResult,
                               RunProfile, run_table1, run_table2,
                               select_cross_labeled_pairs)
from repro.experiments.base import PROFILES
from repro.data import load_benchmark


class TestInfrastructure:
    def test_profiles_registered(self):
        assert set(PROFILES) == {"fast", "default", "full"}
        assert PROFILES["full"].hygnn_epochs == 2000  # the paper's schedule
        assert PROFILES["full"].scale == 1.0

    def test_profile_hygnn_config(self):
        config = FAST.hygnn_config(decoder="dot")
        assert config.epochs == FAST.hygnn_epochs
        assert config.decoder == "dot"

    def test_profile_baseline_config_seeded(self):
        a = FAST.baseline_config(seed=3)
        assert a.walk.seed == 3 and a.unsupervised.seed == 3

    def test_experiment_registry_covers_all_artifacts(self):
        expected = {f"table{i}" for i in range(1, 10)}
        expected |= {"fig2", "fig3", "fig4", "ablation"}
        assert set(EXPERIMENTS) == expected

    def test_result_rendering(self):
        result = ExperimentResult(
            experiment_id="x", title="demo",
            rows=[{"a": 1, "b": 2.5}], paper_rows=[{"a": 9, "b": None}],
            notes="hello")
        text = result.render()
        assert "demo" in text and "2.50" in text and "hello" in text
        assert "-" in text  # None formatted as dash

    def test_result_empty_rows(self):
        result = ExperimentResult(experiment_id="x", title="t")
        assert result.format_table() == "(no rows)"


class TestCheapExperiments:
    def test_table1_densities(self):
        result = run_table1(FAST)
        by_name = {r["dataset"]: r for r in result.rows}
        assert by_name["TWOSIDES"]["density"] == pytest.approx(0.3056,
                                                               abs=0.02)
        assert by_name["DrugBank"]["density"] == pytest.approx(0.1316,
                                                               abs=0.02)

    def test_table2_trends(self):
        result = run_table2(FAST)
        espf = [r["espf_nodes"] for r in result.rows]
        kmer = [r["kmer_nodes"] for r in result.rows]
        assert all(a >= b for a, b in zip(espf, espf[1:]))
        assert kmer[0] < kmer[2]

    def test_case_study_pair_selection(self):
        benchmark = load_benchmark(scale=FAST.scale, seed=FAST.seed)
        cases = select_cross_labeled_pairs(benchmark.twosides,
                                           benchmark.drugbank,
                                           n_positive=3, n_negative=3, seed=0)
        labels = [c["validate_label"] for c in cases]
        assert labels.count(1) >= 1 and labels.count(0) >= 1
        # Every selected pair is unlabeled in the training corpus.
        for case in cases:
            a, b = case["pair"]
            assert not benchmark.twosides.is_positive(a, b)

    def test_case_study_positive_pairs_validated_correctly(self):
        benchmark = load_benchmark(scale=FAST.scale, seed=FAST.seed)
        ts, db = benchmark.twosides, benchmark.drugbank
        cases = select_cross_labeled_pairs(ts, db, n_positive=3,
                                           n_negative=3, seed=0)
        db_map = {int(u): i for i, u in enumerate(db.universe_indices)}
        for case in cases:
            a, b = case["pair"]
            u_a = int(ts.universe_indices[a])
            u_b = int(ts.universe_indices[b])
            is_db_pos = db.is_positive(db_map[u_a], db_map[u_b])
            assert is_db_pos == bool(case["validate_label"])
