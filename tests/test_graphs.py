"""Tests for the simple-graph substrate (DDI graph, SSG, normalisations)."""

import numpy as np
import pytest

from repro.graphs import (Graph, build_ddi_graph, build_ssg_graph,
                          gcn_normalized_adjacency, row_normalized_adjacency)


class TestGraph:
    def test_canonicalises_edges(self):
        g = Graph(4, np.array([[2, 1], [1, 2], [0, 3]]))
        assert g.num_edges == 2

    def test_drops_self_loops(self):
        g = Graph(3, np.array([[1, 1], [0, 2]]))
        assert g.num_edges == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([[0, 5]]))

    def test_adjacency_symmetric_binary(self):
        g = Graph(3, np.array([[0, 1], [1, 2]]))
        adj = g.adjacency().toarray()
        np.testing.assert_array_equal(adj, adj.T)
        assert set(np.unique(adj)) <= {0.0, 1.0}

    def test_degrees(self):
        g = Graph(3, np.array([[0, 1], [1, 2]]))
        np.testing.assert_array_equal(g.degrees(), [1, 2, 1])

    def test_neighbors(self):
        g = Graph(4, np.array([[0, 1], [1, 2], [1, 3]]))
        assert sorted(g.neighbors(1)) == [0, 2, 3]
        assert g.neighbors(0).tolist() == [1]

    def test_has_edge(self):
        g = Graph(3, np.array([[0, 1]]))
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 1)

    def test_empty_graph(self):
        g = Graph(3, np.empty((0, 2)))
        assert g.num_edges == 0
        assert g.adjacency().nnz == 0


class TestBuilders:
    def test_ddi_graph_uses_training_pairs_only(self):
        g = build_ddi_graph(5, np.array([[0, 1], [2, 3]]))
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and not g.has_edge(0, 2)

    def test_ssg_min_shared_threshold(self):
        token_sets = [{"ab", "bc", "cd"}, {"ab", "bc", "xx"}, {"zz"}]
        g1 = build_ssg_graph(token_sets, min_shared=2)
        assert g1.has_edge(0, 1)
        assert g1.num_edges == 1
        g2 = build_ssg_graph(token_sets, min_shared=3)
        assert g2.num_edges == 0

    def test_ssg_single_shared(self):
        token_sets = [{"a"}, {"a"}, {"b"}]
        g = build_ssg_graph(token_sets, min_shared=1)
        assert g.has_edge(0, 1) and g.num_edges == 1

    def test_ssg_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            build_ssg_graph([{"a"}], min_shared=0)


class TestNormalisations:
    def test_gcn_symmetric(self):
        g = Graph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        norm = gcn_normalized_adjacency(g).toarray()
        np.testing.assert_allclose(norm, norm.T)

    def test_gcn_hand_computed_two_nodes(self):
        # A+I = [[1,1],[1,1]], D=2 -> every entry 1/2.
        g = Graph(2, np.array([[0, 1]]))
        norm = gcn_normalized_adjacency(g).toarray()
        np.testing.assert_allclose(norm, np.full((2, 2), 0.5))

    def test_row_normalized_rows_sum_to_one(self):
        g = Graph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        norm = row_normalized_adjacency(g).toarray()
        sums = norm.sum(axis=1)
        np.testing.assert_allclose(sums, np.ones(4))

    def test_row_normalized_isolated_node_zero_row(self):
        g = Graph(3, np.array([[0, 1]]))
        norm = row_normalized_adjacency(g).toarray()
        np.testing.assert_allclose(norm[2], np.zeros(3))

    def test_row_normalized_with_self_loops(self):
        g = Graph(3, np.array([[0, 1]]))
        norm = row_normalized_adjacency(g, add_self_loops=True).toarray()
        np.testing.assert_allclose(norm.sum(axis=1), np.ones(3))
        assert norm[2, 2] == 1.0
