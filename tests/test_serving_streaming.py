"""Tests for the crash-safe living catalog: append-only segments, the
write-ahead journal + atomic-manifest commit protocol, monotonic versions
with rollback and GC, crash-point chaos sweeps (killing the writer at every
named point and asserting recovery lands on a *committed* version with
bitwise screening parity — never a torn hybrid), the service-level
append-through / rollback / compaction wiring, remote version-skew healing,
and concurrent registration-vs-screening on the gateway.
"""

import asyncio
import shutil
import zlib

import numpy as np
import pytest

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.core.decoder import MLPDecoder, make_screen_kernel
from repro.serving import (CrashPoint, CrashPolicy, DDIScreeningService,
                           ScreeningGateway, ShardedEmbeddingCatalog,
                           ShardStore, ShardWorker, exact_score_fn)
from repro.serving.store import JOURNAL_NAME, MANIFEST_NAME, ORPHAN_DIR


# ---------------------------------------------------------------------------
# Synthetic store helpers (no model in the loop)
# ---------------------------------------------------------------------------
def _synthetic(seed=0, n=18, d=6):
    rng = np.random.default_rng(seed)
    decoder = MLPDecoder(d, d, np.random.default_rng(seed))
    embeddings = rng.standard_normal((n, d))
    return decoder, embeddings, decoder.candidate_projections(embeddings)


def _screen_store(store, decoder, queries, top_k=6, block_size=None):
    kernel = make_screen_kernel(decoder)
    query_proj = decoder.project_queries(queries, sides=("as_left",))
    return store.catalog(block_size).screen(
        exact_score_fn(kernel, query_proj), len(queries), top_k)


def _screen_memory(decoder, embeddings, queries, top_k=6,
                   num_shards=2, block_size=7):
    kernel = make_screen_kernel(decoder)
    query_proj = decoder.project_queries(queries, sides=("as_left",))
    catalog = ShardedEmbeddingCatalog(
        embeddings, decoder.candidate_projections(embeddings),
        num_shards=num_shards, block_size=block_size)
    return catalog.screen(exact_score_fn(kernel, query_proj),
                          len(queries), top_k)


def _same_screens(a, b):
    return all(np.array_equal(ia, ib) and np.array_equal(pa, pb)
               for (ia, pa), (ib, pb) in zip(a, b))


def _crc(path):
    return zlib.crc32(path.read_bytes()) & 0xFFFFFFFF


def _file_states(root):
    return {p.name: (p.stat().st_mtime_ns, _crc(p))
            for p in root.glob("*.npy")}


# ---------------------------------------------------------------------------
# Crash-point chaos sweep: kill the writer at every point, recover, assert
# a committed version with bitwise screening parity.
# ---------------------------------------------------------------------------
class TestCrashSweep:
    @pytest.fixture(scope="class")
    def base(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("chaos")
        decoder, emb, proj = _synthetic(n=18)
        store_dir = root / "base"
        ShardStore.save(store_dir, emb, proj, num_shards=2, block_size=7,
                        catalog_digest="v0")
        rng = np.random.default_rng(99)
        extra = rng.standard_normal((5, emb.shape[1]))
        return root, decoder, emb, extra, store_dir

    def _sweep(self, base, op_name, prepare, mutate, versions_content):
        """Kill a writer at every crash point of ``mutate``; recover; check.

        ``versions_content`` maps committed version -> the embedding matrix
        whose screens that version must reproduce bitwise.
        """
        root, decoder, emb, extra, store_dir = base
        queries = emb[[0, 3]]
        references = {v: _screen_memory(decoder, content, queries)
                      for v, content in versions_content.items()}

        # Recorder pass enumerates the complete crash surface.
        recorder_dir = root / f"{op_name}-recorder"
        shutil.copytree(store_dir, recorder_dir)
        store = ShardStore(recorder_dir)
        prepare(store)
        recorder = CrashPolicy()
        store.crash_policy = recorder
        mutate(store)
        points = list(recorder.seen)
        assert f"{op_name}.begin" in points
        assert f"{op_name}.journal" in points
        assert f"{op_name}.manifest" in points
        assert f"{op_name}.commit" in points
        assert f"{op_name}.done" in points

        actions = []
        for i, point in enumerate(points):
            work = root / f"{op_name}-{i}"
            shutil.copytree(store_dir, work)
            victim = ShardStore(work)
            prepare(victim)
            pre_version = victim.version
            victim.crash_policy = CrashPolicy(point)
            with pytest.raises(CrashPoint):
                mutate(victim)
            # The in-memory store is transactional: a writer that died
            # before installing still describes its last committed state.
            assert victim.version == pre_version

            survivor = ShardStore(work, recover=True)
            report = survivor.recovered
            actions.append(report["action"])
            assert not (work / JOURNAL_NAME).exists()
            assert not list(work.glob("*.tmp"))
            assert survivor.version in references, \
                f"crash at {point} recovered uncommitted version " \
                f"{survivor.version}"
            # Bitwise parity with the committed version — never a torn
            # hybrid of old and new rows.
            assert _same_screens(
                _screen_store(survivor, decoder, queries),
                references[survivor.version]), f"crash at {point}"
            # Quarantined orphans are reported, moved out of the root,
            # and the survivor still verifies clean.
            for name in report["orphans"]:
                assert (work / ORPHAN_DIR / name).exists()
                assert not (work / name).exists()
            assert survivor.verify(strict=True) == []
        return points, actions

    def test_append_sweep(self, base):
        root, decoder, emb, extra, store_dir = base
        combined = np.concatenate([emb, extra], axis=0)
        points, actions = self._sweep(
            base, "append",
            prepare=lambda store: None,
            mutate=lambda store: store.append(
                extra, store_projections(store, decoder, extra),
                catalog_digest="v1"),
            versions_content={0: emb, 1: combined})
        # The sweep must exercise every fate: crashes before the staged
        # state is durable roll back (with quarantined orphans once any
        # segment file landed), a crash between the retained snapshot and
        # the commit rename rolls forward, and a crash after the rename
        # only needed the journal tidied.
        assert "roll-back" in actions
        assert "roll-forward" in actions
        assert "completed" in actions
        assert any(p.startswith("append.file:") for p in points)

    def test_compact_sweep(self, base):
        root, decoder, emb, extra, store_dir = base
        combined = np.concatenate([emb, extra], axis=0)

        def prepare(store):
            store.append(extra, store_projections(store, decoder, extra),
                         catalog_digest="v1")

        self._sweep(
            base, "compact",
            prepare=prepare,
            mutate=lambda store: store.compact(catalog_digest="v1"),
            # v1 (the append) and v2 (the compaction) hold the same rows.
            versions_content={1: combined, 2: combined})

    def test_rollback_sweep(self, base):
        root, decoder, emb, extra, store_dir = base
        combined = np.concatenate([emb, extra], axis=0)

        def prepare(store):
            store.append(extra, store_projections(store, decoder, extra),
                         catalog_digest="v1")

        self._sweep(
            base, "rollback",
            prepare=prepare,
            mutate=lambda store: store.rollback(0),
            # v2 re-commits v0's content.
            versions_content={1: combined, 2: emb})


def store_projections(store, decoder, rows):
    """Non-alias projections for ``rows`` from the store's own decoder."""
    projections = decoder.candidate_projections(rows)
    return {name: projections[name] for name in store.projection_names
            if name in projections}


# ---------------------------------------------------------------------------
# Append-only byte identity, rollback parity, GC
# ---------------------------------------------------------------------------
class TestAppendOnly:
    def test_appends_never_rewrite_existing_bytes(self, tmp_path):
        decoder, emb, proj = _synthetic(n=20)
        store = ShardStore(ShardStore.save(tmp_path / "s", emb, proj,
                                           num_shards=2))
        rng = np.random.default_rng(7)
        for round_ in range(3):
            before = _file_states(tmp_path / "s")
            rows = rng.standard_normal((4, emb.shape[1]))
            store.append(rows, store_projections(store, decoder, rows))
            after = _file_states(tmp_path / "s")
            for name, state in before.items():
                assert after[name] == state, \
                    f"append round {round_} rewrote {name}"
            assert len(after) > len(before)  # new segment files landed

    def test_append_is_invalid_on_quantized_store(self, tmp_path):
        decoder, emb, proj = _synthetic(n=12)
        store = ShardStore(ShardStore.save(tmp_path / "q", emb, proj,
                                           quantize="int8"))
        with pytest.raises(ValueError, match="frozen snapshot"):
            store.append(emb[:2], store_projections(store, decoder,
                                                    emb[:2]))

    def test_rollback_restores_every_retained_version_bitwise(self,
                                                              tmp_path):
        decoder, emb, proj = _synthetic(n=15)
        store = ShardStore(ShardStore.save(tmp_path / "s", emb, proj,
                                           num_shards=2))
        rng = np.random.default_rng(3)
        contents = {0: emb}
        current = emb
        for version in (1, 2, 3):
            rows = rng.standard_normal((3, emb.shape[1]))
            store.append(rows, store_projections(store, decoder, rows))
            current = np.concatenate([current, rows], axis=0)
            contents[version] = current
        queries = emb[[1, 4]]
        next_version = 4
        for target in (2, 0, 3):
            new_version = store.rollback(target)
            assert new_version == next_version
            next_version += 1
            assert _same_screens(
                _screen_store(store, decoder, queries),
                _screen_memory(decoder, contents[target], queries))

    def test_versions_are_monotonic_and_retained(self, tmp_path):
        decoder, emb, proj = _synthetic(n=10)
        store = ShardStore(ShardStore.save(tmp_path / "s", emb, proj))
        rng = np.random.default_rng(5)
        rows = rng.standard_normal((2, emb.shape[1]))
        store.append(rows, store_projections(store, decoder, rows))
        assert store.versions() == [0, 1]
        assert store.manifest_for(0)["num_drugs"] == 10
        assert store.manifest_for(1)["num_drugs"] == 12
        store.rollback(0)
        assert store.version == 2
        assert store.manifest_for(2)["num_drugs"] == 10

    def test_gc_reclaims_dropped_versions_only(self, tmp_path):
        decoder, emb, proj = _synthetic(n=12)
        store = ShardStore(ShardStore.save(tmp_path / "s", emb, proj,
                                           num_shards=2))
        rng = np.random.default_rng(11)
        for _ in range(3):
            rows = rng.standard_normal((2, emb.shape[1]))
            store.append(rows, store_projections(store, decoder, rows))
        full = np.concatenate(
            [np.asarray(store.open_shard(i).embeddings)
             for i in range(store.num_shards)], axis=0)
        deleted = store.gc(keep=1)
        assert deleted  # old retained manifests (at least) went away
        assert store.versions() == [3]
        with pytest.raises(ValueError, match="not retained"):
            store.rollback(0)
        # The current version is untouched and still screens clean.
        queries = emb[[0, 2]]
        assert _same_screens(
            _screen_store(store, decoder, queries),
            _screen_memory(decoder, full, queries))
        assert store.verify(strict=True) == []

    def test_gc_refuses_with_unresolved_journal(self, tmp_path):
        _, emb, proj = _synthetic(n=8)
        store = ShardStore(ShardStore.save(tmp_path / "s", emb, proj))
        (store.root / JOURNAL_NAME).write_text("{}")
        with pytest.raises(RuntimeError, match="journal"):
            store.gc()


# ---------------------------------------------------------------------------
# Satellite: verify's checksum memo is invalidated by mutation
# ---------------------------------------------------------------------------
class TestVerifyMemoInvalidation:
    def test_reverify_detects_corruption_after_mutation(self, tmp_path):
        decoder, emb, proj = _synthetic(n=16)
        store = ShardStore(ShardStore.save(tmp_path / "s", emb, proj,
                                           num_shards=2))
        assert store.verify() == []  # memoizes every file as clean
        rng = np.random.default_rng(1)
        rows = rng.standard_normal((2, emb.shape[1]))
        store.append(rows, store_projections(store, decoder, rows))
        # Corrupt a file that was verified *before* the mutation; the
        # regression was a stale memo skipping the re-read here.
        victim = store.root / store.manifest["shards"][0]["embeddings"]
        damaged = bytearray(victim.read_bytes())
        damaged[-8:] = bytes(8)
        victim.write_bytes(bytes(damaged))
        assert store.verify() == [0]
        assert 0 in store.quarantined

    def test_reload_clears_memo_too(self, tmp_path):
        _, emb, proj = _synthetic(n=10)
        store = ShardStore(ShardStore.save(tmp_path / "s", emb, proj))
        assert store.verify() == []
        store.reload()
        victim = store.root / store.manifest["shards"][0]["embeddings"]
        damaged = bytearray(victim.read_bytes())
        damaged[-4:] = bytes(4)
        victim.write_bytes(bytes(damaged))
        assert store.verify() == [0]


# ---------------------------------------------------------------------------
# Service-level living catalog (real model)
# ---------------------------------------------------------------------------
def _corpus(n=24, seed=11):
    return [r.smiles for r in MoleculeGenerator(seed=seed).generate_corpus(n)]


@pytest.fixture(scope="module")
def setup():
    corpus = _corpus()
    extras = [r.smiles
              for r in MoleculeGenerator(seed=77).generate_corpus(6)]
    config = HyGNNConfig(parameter=4, embed_dim=12, hidden_dim=12, seed=5)
    model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
    return corpus, extras, model, builder


def _service(setup, **kwargs):
    corpus, _, model, builder = setup
    return DDIScreeningService(model, builder, corpus, **kwargs)


def _hits(results):
    return [[(h.index, h.probability) for h in hits] for hits in results]


class TestServiceLivingCatalog:
    def test_register_append_rollback_compact_lifecycle(self, setup,
                                                        tmp_path):
        corpus, extras, model, builder = setup
        service = _service(setup, num_shards=2)
        twin = _service(setup)  # in-memory reference, no store
        service.save_shards(tmp_path / "store")
        assert service.open_shards(tmp_path / "store")
        assert service.catalog_version == 0

        before_hits = _hits([service.screen(0, top_k=5)])
        epoch_before = service.catalog_epoch

        # Two registration batches append through as two commits.
        service.register_drugs(extras[:2], drug_ids=["xa", "xb"])
        service.register_drug(extras[2], drug_id="xc")
        twin.register_drugs(extras[:2], drug_ids=["xa", "xb"])
        twin.register_drug(extras[2], drug_id="xc")
        assert service._store is not None
        assert service.catalog_version == 2
        assert service.catalog_epoch != epoch_before
        assert service.shard_store.num_drugs == len(corpus) + 3
        stats = service.stats
        assert stats.registrations == 3
        assert stats.appends_committed == 2
        assert stats.registration_latency.summary()["count"] == 2
        # Screens over the extended catalog come from the store and match
        # the in-memory twin bitwise.
        queries = [0, len(corpus) + 1, "xc"]
        assert _hits([service.screen(q, top_k=6) for q in queries]) == \
            _hits([twin.screen(q, top_k=6) for q in queries])

        # Compaction consolidates segments without changing answers.
        version = service.compact_shards()
        assert version == 3
        assert stats.compactions == 1
        assert _hits([service.screen(q, top_k=6) for q in queries]) == \
            _hits([twin.screen(q, top_k=6) for q in queries])

        # Rollback to the pre-registration version restores it bitwise.
        new_version = service.rollback_catalog(0)
        assert new_version == 4
        assert stats.rollbacks == 1
        assert service.num_drugs == len(corpus)
        assert service.shard_store.num_drugs == len(corpus)
        with pytest.raises(KeyError):
            service.index_of("xa")
        assert _hits([service.screen(0, top_k=5)]) == before_hits
        # Registration after a rollback works (ids freed, rows truncated).
        index = service.register_drug(extras[0], drug_id="xa")
        assert index == len(corpus)
        assert service.catalog_version == 5

    def test_rollback_guards(self, setup, tmp_path):
        corpus, extras, model, builder = setup
        service = _service(setup)
        with pytest.raises(RuntimeError, match="attached shard store"):
            service.rollback_catalog(0)
        service.save_shards(tmp_path / "store")
        assert service.open_shards(tmp_path / "store")
        with pytest.raises(ValueError, match="not retained"):
            service.rollback_catalog(17)

    def test_quantized_store_detaches_on_registration(self, setup,
                                                      tmp_path):
        corpus, extras, model, builder = setup
        service = _service(setup)
        service.save_shards(tmp_path / "store", quantize="int8")
        assert service.open_shards(tmp_path / "store")
        service.register_drug(extras[3], drug_id="xq")
        # A frozen int8 snapshot cannot absorb exact rows: the pre-living-
        # catalog fallback (detach + in-memory) still applies.
        assert service._store is None
        assert service.stats.appends_committed == 0
        assert service.stats.registrations == 1

    def test_crash_during_register_recovers_on_reopen(self, setup,
                                                      tmp_path):
        corpus, extras, model, builder = setup
        service = _service(setup, num_shards=2)
        service.save_shards(tmp_path / "store")
        assert service.open_shards(tmp_path / "store")
        reference = _hits([service.screen(2, top_k=5)])
        # Kill the writer after the first segment file landed but before
        # the staged state is complete — recovery must roll back and
        # quarantine the dead writer's segment.
        service.shard_store.crash_policy = CrashPolicy(
            "append.file:seg_v000001.emb.npy")
        with pytest.raises(CrashPoint):
            service.register_drug(extras[4], drug_id="dead")
        assert (tmp_path / "store" / JOURNAL_NAME).exists()

        # "Restart": a fresh service over the same artifacts recovers the
        # torn directory while attaching and serves the committed version.
        fresh = _service(setup, num_shards=2)
        assert fresh.open_shards(tmp_path / "store", strict=True)
        report = fresh.shard_store.recovered
        assert report["action"] == "roll-back"
        assert report["orphans"]  # the dead writer's segment, quarantined
        assert fresh.catalog_version == 0
        assert not (tmp_path / "store" / JOURNAL_NAME).exists()
        assert _hits([fresh.screen(2, top_k=5)]) == reference


# ---------------------------------------------------------------------------
# Satellite: remote workers heal version skew instead of being excluded
# ---------------------------------------------------------------------------
class TestRemoteVersionSkew:
    def test_worker_reloads_after_append(self, setup, tmp_path):
        corpus, extras, model, builder = setup
        service = _service(setup, num_shards=2)
        twin = _service(setup)
        manifest = service.save_shards(tmp_path / "store")
        assert service.open_shards(tmp_path / "store")
        # The worker opens its *own* store instance (a separate process
        # in production), so a local append skews it.
        with ShardWorker(ShardStore(manifest)) as worker:
            remote = service.connect_workers([worker])
            assert _hits([service.screen(1, top_k=4)]) == \
                _hits([twin.screen(1, top_k=4)])
            assert remote.stats["remote_requests"] > 0

            service.register_drug(extras[5], drug_id="xr")
            twin.register_drug(extras[5], drug_id="xr")
            assert service._store is not None  # append-through kept it
            # The next screen finds the worker behind, asks it to reload,
            # and keeps using it — no exclusion, no local fallback.
            assert _hits([service.screen("xr", top_k=4)]) == \
                _hits([twin.screen("xr", top_k=4)])
            assert remote.stats["version_skews"] >= 1
            assert remote.stats["worker_reloads"] >= 1
            assert remote.stats["mismatched_workers"] == 0
            assert remote.stats["local_fallbacks"] == 0
            assert service.stats.remote_screens >= 2

    def test_foreign_store_still_permanently_excluded(self, setup,
                                                      tmp_path):
        corpus, extras, model, builder = setup
        service = _service(setup)
        service.save_shards(tmp_path / "store")
        assert service.open_shards(tmp_path / "store")
        # A worker serving a different catalog: reload cannot heal it.
        foreign = DDIScreeningService(model, builder, corpus[:20])
        foreign_manifest = foreign.save_shards(tmp_path / "foreign")
        with ShardWorker(ShardStore(foreign_manifest)) as worker:
            remote = service.connect_workers([worker])
            hits = service.screen(0, top_k=3)  # local fallback answers
            assert len(hits) == 3
            assert remote.stats["mismatched_workers"] == 1
            assert remote.stats["worker_reloads"] == 0
            assert remote.stats["local_fallbacks"] > 0


# ---------------------------------------------------------------------------
# Satellite: concurrent registration vs. coalesced screening on the gateway
# ---------------------------------------------------------------------------
class TestGatewayStreaming:
    def test_interleaved_registration_and_screens_are_version_consistent(
            self, setup):
        corpus, extras, model, builder = setup
        service = _service(setup)
        twin = _service(setup)
        query, top_k = 0, 4

        # Reference answer per catalog size, from the in-memory twin.
        references = {twin.num_drugs: _hits([twin.screen(query, top_k)])[0]}

        async def main():
            results = []
            async with ScreeningGateway(service, max_batch=8,
                                        max_wait_ms=1.0) as gateway:
                for wave, smiles in enumerate(extras[:4]):
                    tasks = [asyncio.ensure_future(
                        gateway.screen(query, top_k=top_k))
                        for _ in range(3)]
                    await asyncio.sleep(0)  # let the flusher admit them
                    service.register_drug(smiles, drug_id=f"gw{wave}")
                    twin.register_drug(smiles, drug_id=f"gw{wave}")
                    references[twin.num_drugs] = _hits(
                        [twin.screen(query, top_k)])[0]
                    results.extend(await asyncio.gather(*tasks))
                # Drain screens after the last registration.
                results.extend(await asyncio.gather(*[
                    gateway.screen(query, top_k=top_k) for _ in range(3)]))
                snapshot = gateway.stats_snapshot()
            return results, snapshot

        results, snapshot = asyncio.run(main())
        valid = list(references.values())
        for hits in results:
            answer = [(h.index, h.probability) for h in hits]
            # Every response equals exactly one committed catalog
            # version's reference — never a blend of two versions.
            assert answer in valid
        stats = service.stats
        assert stats.registrations == 4
        # Flushes crossed at least one catalog epoch boundary, and the
        # swap counter reconciles with the number of catalog mutations.
        assert 1 <= stats.gateway_epoch_swaps <= stats.registrations
        assert snapshot["registrations"] == 4
        assert snapshot["gateway_epoch_swaps"] == stats.gateway_epoch_swaps
        assert snapshot["registration_latency"]["count"] == 4
        assert snapshot["pending"] == 0
        assert snapshot["catalog_epoch"] == service.catalog_epoch
        assert snapshot["catalog_version"] is None  # no store attached

    def test_epoch_swap_counter_with_attached_store(self, setup, tmp_path):
        corpus, extras, model, builder = setup
        service = _service(setup, num_shards=2)
        service.save_shards(tmp_path / "store")
        assert service.open_shards(tmp_path / "store")

        twin = _service(setup)

        async def main():
            async with ScreeningGateway(service, max_batch=4,
                                        max_wait_ms=0.5) as gateway:
                first = await gateway.screen(0, top_k=3)
                service.register_drug(extras[5], drug_id="gw-store")
                second = await gateway.screen(0, top_k=3)
                return first, second, gateway.stats_snapshot()

        first, second, snapshot = asyncio.run(main())
        # Both flushes answered from a single committed version each:
        # pre-append and post-append, bitwise equal to the in-memory twin.
        assert _hits([first]) == _hits([twin.screen(0, top_k=3)])
        twin.register_drug(extras[5], drug_id="gw-store")
        assert _hits([second]) == _hits([twin.screen(0, top_k=3)])
        assert service.stats.gateway_epoch_swaps >= 1
        assert snapshot["appends_committed"] == 1
        assert snapshot["catalog_version"] == service.catalog_version == 1
