"""Tests for datasets, synthetic generation, negative sampling, and splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.generator import DrugRecord
from repro.data import (DDIDataset, balanced_pairs_and_labels,
                        build_multimodal_graph, canonical_pairs,
                        cold_start_split, load_benchmark, load_dataset,
                        make_benchmark, random_split, sample_negative_pairs,
                        scaled_counts)
from repro.data.synthetic import (DRUGBANK_DENSITY, TWOSIDES_DENSITY,
                                  DrugUniverse, InteractionModel)


def _dummy_drugs(n):
    return [DrugRecord(drug_id=f"SD{i:04d}", name=f"drug{i}", smiles="C" * (i + 1),
                       fragment_names=("methylene",), pharmacophores=frozenset())
            for i in range(n)]


class TestDDIDataset:
    def test_canonicalises_and_dedups(self):
        ds = DDIDataset("t", _dummy_drugs(4),
                        np.array([[1, 0], [0, 1], [2, 3]]))
        assert ds.num_ddis == 2
        assert ds.is_positive(0, 1) and ds.is_positive(1, 0)

    def test_rejects_self_pairs(self):
        with pytest.raises(ValueError):
            DDIDataset("t", _dummy_drugs(3), np.array([[1, 1]]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DDIDataset("t", _dummy_drugs(3), np.array([[0, 5]]))

    def test_density(self):
        ds = DDIDataset("t", _dummy_drugs(4), np.array([[0, 1], [2, 3]]))
        assert ds.density == pytest.approx(2 / 6)

    def test_statistics_row(self):
        ds = DDIDataset("t", _dummy_drugs(3), np.array([[0, 1]]))
        row = ds.statistics()
        assert row["num_drugs"] == 3 and row["num_ddis"] == 1

    def test_drug_by_id(self):
        ds = DDIDataset("t", _dummy_drugs(3), np.array([[0, 1]]))
        assert ds.drug_by_id("SD0001").name == "drug1"
        with pytest.raises(KeyError):
            ds.drug_by_id("nope")

    def test_canonical_pairs_helper(self):
        out = canonical_pairs(np.array([[3, 1], [0, 2]]))
        np.testing.assert_array_equal(out, [[1, 3], [0, 2]])


class TestInteractionModel:
    def test_symmetric_rules(self):
        model = InteractionModel(["a", "b", "c"], seed=0)
        np.testing.assert_array_equal(model.rule_matrix, model.rule_matrix.T)

    def test_no_self_rules(self):
        model = InteractionModel(["a", "b", "c"], seed=0)
        assert not model.rule_matrix.diagonal().any()

    def test_every_pharmacophore_has_a_rule(self):
        model = InteractionModel([f"p{i}" for i in range(10)], seed=1,
                                 rule_density=0.01)
        assert model.rule_matrix.any(axis=1).all()

    def test_rule_positive_matrix_symmetric(self):
        universe = DrugUniverse.generate(30, seed=2)
        np.testing.assert_array_equal(universe.rule_positive,
                                      universe.rule_positive.T)
        assert not universe.rule_positive.diagonal().any()

    def test_empty_pharmacophores_rejected(self):
        with pytest.raises(ValueError):
            InteractionModel([], seed=0)


class TestBenchmarkGeneration:
    def test_full_scale_matches_table1(self):
        counts = scaled_counts(1.0)
        assert counts["twosides_drugs"] == 645
        assert counts["twosides_ddis"] == 63_473
        assert counts["drugbank_drugs"] == 1706
        assert counts["drugbank_ddis"] == 191_402

    def test_density_preserved_across_scales(self):
        for scale in (0.1, 0.3, 1.0):
            counts = scaled_counts(scale)
            n = counts["twosides_drugs"]
            density = counts["twosides_ddis"] / (n * (n - 1) / 2)
            assert density == pytest.approx(TWOSIDES_DENSITY, rel=0.05)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_counts(0.0)
        with pytest.raises(ValueError):
            scaled_counts(1.5)

    def test_benchmark_small_scale(self):
        bench = make_benchmark(scale=0.08, seed=0)
        assert bench.twosides.num_drugs < bench.drugbank.num_drugs
        assert bench.twosides.density == pytest.approx(TWOSIDES_DENSITY, rel=0.1)
        assert bench.drugbank.density == pytest.approx(DRUGBANK_DENSITY, rel=0.1)

    def test_twosides_drugs_are_subset_of_drugbank(self):
        bench = make_benchmark(scale=0.08, seed=0)
        db_ids = {d.drug_id for d in bench.drugbank.drugs}
        assert all(d.drug_id in db_ids for d in bench.twosides.drugs)
        # universe_indices maps TWOSIDES rows back to DrugBank rows.
        for local, uni in enumerate(bench.twosides.universe_indices):
            assert (bench.twosides.drugs[local].drug_id
                    == bench.drugbank.drugs[uni].drug_id)

    def test_twosides_subset_is_interaction_prone(self):
        bench = make_benchmark(scale=0.15, seed=0)
        subset_rate = bench.universe.rule_rate(bench.twosides.universe_indices)
        global_rate = bench.universe.rule_rate()
        assert subset_rate > global_rate

    def test_label_disagreement_exists(self):
        """Some pairs positive in one corpus are unlabeled in the other —
        the raw material for the Tables VII/VIII case studies."""
        bench = make_benchmark(scale=0.1, seed=0)
        ts, db = bench.twosides, bench.drugbank
        n = ts.num_drugs
        db_only = sum(1 for i, j in db.positive_pairs
                      if i < n and j < n and not ts.is_positive(i, j))
        assert db_only > 0

    def test_deterministic(self):
        a = make_benchmark(scale=0.06, seed=5)
        b = make_benchmark(scale=0.06, seed=5)
        np.testing.assert_array_equal(a.twosides.positive_pairs,
                                      b.twosides.positive_pairs)

    def test_registry_caches(self):
        a = load_benchmark(scale=0.06, seed=9)
        b = load_benchmark(scale=0.06, seed=9)
        assert a is b

    def test_load_dataset_by_name(self):
        ts = load_dataset("twosides", scale=0.06, seed=9)
        db = load_dataset("DrugBank", scale=0.06, seed=9)
        assert ts.name == "TWOSIDES" and db.name == "DrugBank"
        with pytest.raises(KeyError):
            load_dataset("sider", scale=0.06)

    def test_positives_mostly_rule_positive(self):
        bench = make_benchmark(scale=0.1, seed=1)
        universe = bench.universe
        ts = bench.twosides
        rule = universe.rule_positive
        uni = ts.universe_indices
        hits = np.mean([rule[uni[i], uni[j]] for i, j in ts.positive_pairs])
        assert hits > 0.9  # only the small noise fraction is off-rule


class TestNegativeSampling:
    def test_no_overlap_with_positives(self):
        positives = np.array([[0, 1], [1, 2]])
        negs = sample_negative_pairs(6, positives, 5, seed=0)
        pos_set = {(0, 1), (1, 2)}
        for i, j in negs:
            assert (i, j) not in pos_set
            assert i < j

    def test_no_duplicates(self):
        negs = sample_negative_pairs(10, np.array([[0, 1]]), 30, seed=0)
        assert len({(i, j) for i, j in negs}) == 30

    def test_exclusion_set_respected(self):
        exclude = {(2, 3), (4, 5)}
        negs = sample_negative_pairs(6, np.array([[0, 1]]), 10, seed=0,
                                     exclude=exclude)
        for i, j in negs:
            assert (i, j) not in exclude

    def test_exhausts_complement_exactly(self):
        # 4 drugs -> 6 pairs; 2 positive -> exactly 4 negatives available.
        negs = sample_negative_pairs(4, np.array([[0, 1], [2, 3]]), 4, seed=0)
        assert len(negs) == 4

    def test_too_many_requested_raises(self):
        with pytest.raises(ValueError):
            sample_negative_pairs(4, np.array([[0, 1]]), 6, seed=0)

    def test_balanced_corpus(self):
        bench = make_benchmark(scale=0.06, seed=0)
        pairs, labels = balanced_pairs_and_labels(bench.twosides, seed=0)
        assert labels.mean() == pytest.approx(0.5)
        assert len(pairs) == 2 * bench.twosides.num_ddis

    def test_balanced_deterministic(self):
        bench = make_benchmark(scale=0.06, seed=0)
        p1, l1 = balanced_pairs_and_labels(bench.twosides, seed=3)
        p2, l2 = balanced_pairs_and_labels(bench.twosides, seed=3)
        np.testing.assert_array_equal(p1, p2)
        np.testing.assert_array_equal(l1, l2)


class TestSplits:
    def test_random_split_partitions(self):
        split = random_split(100, seed=0)
        all_idx = np.concatenate([split.train, split.val, split.test])
        assert sorted(all_idx) == list(range(100))

    def test_random_split_fractions(self):
        split = random_split(1000, seed=0)
        assert split.sizes() == (800, 100, 100)

    def test_custom_fraction(self):
        split = random_split(100, seed=0, train_fraction=0.5, val_fraction=0.2)
        assert split.sizes() == (50, 20, 30)

    def test_bad_fractions(self):
        with pytest.raises(ValueError):
            random_split(10, train_fraction=0.95, val_fraction=0.1)
        with pytest.raises(ValueError):
            random_split(2)

    def test_different_seeds_differ(self):
        a = random_split(50, seed=0)
        b = random_split(50, seed=1)
        assert not np.array_equal(a.train, b.train)

    def test_cold_start_pairs_with_unseen_only_in_test(self):
        pairs = np.array([[i, j] for i in range(20) for j in range(i + 1, 20)])
        split, unseen = cold_start_split(pairs, 20, seed=0,
                                         unseen_fraction=0.1)
        unseen_set = set(unseen.tolist())
        for idx in np.concatenate([split.train, split.val]):
            i, j = pairs[idx]
            assert i not in unseen_set and j not in unseen_set
        touched = [idx for idx in split.test
                   if pairs[idx][0] in unseen_set or pairs[idx][1] in unseen_set]
        assert len(touched) == len(split.test)

    def test_cold_start_partition_complete(self):
        pairs = np.array([[i, j] for i in range(15) for j in range(i + 1, 15)])
        split, _ = cold_start_split(pairs, 15, seed=1)
        total = np.concatenate([split.train, split.val, split.test])
        assert sorted(total) == list(range(len(pairs)))


class TestMultimodal:
    def test_graph_shapes(self):
        bench = make_benchmark(scale=0.06, seed=0)
        graph = build_multimodal_graph(bench.universe, bench.twosides, seed=0)
        assert graph.num_drugs == bench.twosides.num_drugs
        assert graph.num_proteins > 0
        assert graph.drug_target_pairs.shape[1] == 2
        assert graph.ppi_pairs.shape[1] == 2

    def test_every_drug_has_a_target(self):
        bench = make_benchmark(scale=0.06, seed=0)
        graph = build_multimodal_graph(bench.universe, bench.twosides, seed=0)
        drugs_with_targets = set(graph.drug_target_pairs[:, 0].tolist())
        assert drugs_with_targets == set(range(graph.num_drugs))

    def test_index_validation(self):
        from repro.data import MultiModalGraph
        with pytest.raises(ValueError):
            MultiModalGraph(num_drugs=2, num_proteins=2,
                            drug_target_pairs=np.array([[5, 0]]),
                            ppi_pairs=np.empty((0, 2), dtype=np.int64))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=5, max_value=40), st.integers(min_value=0, max_value=100))
def test_property_negative_sampling_sound(n_drugs, seed):
    rng = np.random.default_rng(seed)
    n_pos = min(3, n_drugs - 2)
    pos = np.unique(np.sort(rng.integers(0, n_drugs, size=(n_pos, 2)), axis=1), axis=0)
    pos = pos[pos[:, 0] != pos[:, 1]]
    total = n_drugs * (n_drugs - 1) // 2
    n_request = min(5, total - len(pos))
    negs = sample_negative_pairs(n_drugs, pos, n_request, seed=seed)
    pos_set = {(int(i), int(j)) for i, j in pos}
    assert len(negs) == n_request
    for i, j in negs:
        assert i < j and (int(i), int(j)) not in pos_set
