"""Tests for the DDI screening service: cache parity, invalidation,
incremental registration, top-k screening, and artifact round-trips."""

import numpy as np
import pytest

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig, Trainer, save_model
from repro.core.encoder import HyGNNEncoder
from repro.data import balanced_pairs_and_labels, make_benchmark, random_split
from repro.serving import DDIScreeningService, weights_fingerprint


def _corpus(n=40, seed=11):
    return [r.smiles for r in MoleculeGenerator(seed=seed).generate_corpus(n)]


@pytest.fixture(scope="module")
def setup():
    corpus = _corpus()
    # k=4 keeps the vocabulary small enough that freshly generated "new"
    # drugs share substructures with the corpus (k=9 windows rarely recur).
    config = HyGNNConfig(parameter=4, embed_dim=16, hidden_dim=16, seed=3)
    model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
    return corpus, config, model, hypergraph, builder


@pytest.fixture
def service(setup):
    corpus, _, model, _, builder = setup
    return DDIScreeningService(model, builder, corpus)


@pytest.fixture
def query_pairs(setup):
    corpus, *_ = setup
    rng = np.random.default_rng(0)
    return rng.integers(0, len(corpus), size=(64, 2))


class TestCacheParity:
    def test_scores_match_predict_proba(self, setup, service, query_pairs):
        _, _, model, hypergraph, _ = setup
        served = service.score_pairs(query_pairs)
        naive = model.predict_proba(hypergraph, query_pairs)
        np.testing.assert_allclose(served, naive, rtol=0, atol=1e-8)

    def test_scores_match_bitwise(self, setup, service, query_pairs):
        _, _, model, hypergraph, _ = setup
        assert np.array_equal(service.score_pairs(query_pairs),
                              model.predict_proba(hypergraph, query_pairs))

    def test_repeat_queries_hit_cache(self, service, query_pairs):
        service.score_pairs(query_pairs)
        service.score_pairs(query_pairs)
        service.score_pairs(query_pairs)
        assert service.stats.corpus_encodes == 1
        assert service.stats.cache_hits >= 2

    def test_id_pairs_match_index_pairs(self, service):
        by_id = service.score_id_pairs([("drug_0", "drug_3"),
                                        ("drug_7", "drug_1")])
        by_index = service.score_pairs(np.array([[0, 3], [7, 1]]))
        np.testing.assert_array_equal(by_id, by_index)


class TestCacheInvalidation:
    def test_weight_update_invalidates(self, setup, query_pairs):
        corpus, _, model, hypergraph, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        before = service.score_pairs(query_pairs)
        original = model.encoder.node_embedding.data.copy()
        try:
            model.encoder.node_embedding.data += 0.05
            after = service.score_pairs(query_pairs)
            fresh = model.predict_proba(hypergraph, query_pairs)
            assert not np.array_equal(before, after)
            np.testing.assert_array_equal(after, fresh)
            assert service.stats.invalidations == 1
            assert service.stats.corpus_encodes == 2
        finally:
            model.encoder.node_embedding.data = original

    def test_training_invalidates(self):
        bench = make_benchmark(scale=0.05, seed=1)
        ds = bench.twosides
        pairs, labels = balanced_pairs_and_labels(ds, seed=1)
        split = random_split(len(pairs), seed=1)
        config = HyGNNConfig(epochs=3, embed_dim=16, hidden_dim=16)
        model, hypergraph, builder = HyGNN.for_corpus(ds.smiles, config)
        service = DDIScreeningService(model, builder, ds.smiles)
        before = service.score_pairs(pairs[:16])
        Trainer(model, config).fit(hypergraph, pairs, labels, split)
        after = service.score_pairs(pairs[:16])
        np.testing.assert_array_equal(
            after, model.predict_proba(hypergraph, pairs[:16]))
        assert not np.array_equal(before, after)

    def test_explicit_invalidate_forces_rebuild(self, setup, query_pairs):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        first = service.score_pairs(query_pairs)
        service.invalidate()
        second = service.score_pairs(query_pairs)
        np.testing.assert_array_equal(first, second)
        assert service.stats.corpus_encodes == 2
        assert service.stats.invalidations == 1

    def test_auto_refresh_off_serves_stale_until_refresh(self, setup,
                                                         query_pairs):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus,
                                      auto_refresh=False)
        before = service.score_pairs(query_pairs)
        original = model.encoder.node_embedding.data.copy()
        try:
            model.encoder.node_embedding.data += 0.05
            stale = service.score_pairs(query_pairs)
            np.testing.assert_array_equal(before, stale)
            service.refresh()
            assert not np.array_equal(before,
                                      service.score_pairs(query_pairs))
        finally:
            model.encoder.node_embedding.data = original

    def test_full_fingerprint_mode(self, setup, query_pairs):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus,
                                      fingerprint_mode="full")
        before = service.score_pairs(query_pairs)
        original = model.encoder.node_embedding.data.copy()
        try:
            model.encoder.node_embedding.data += 1e-12
            service.score_pairs(query_pairs)
            assert service.stats.corpus_encodes == 2
        finally:
            model.encoder.node_embedding.data = original
        np.testing.assert_array_equal(before,
                                      service.score_pairs(query_pairs))

    def test_fingerprint_modes_validated(self, setup):
        _, _, model, _, _ = setup
        with pytest.raises(ValueError):
            weights_fingerprint(model, mode="sha1")


class TestIncrementalRegistration:
    def test_registration_does_not_reencode_catalog(self, setup, monkeypatch):
        corpus, _, model, _, builder = setup
        new_drugs = _corpus(4, seed=77)
        service = DDIScreeningService(model, builder, corpus)
        service.score_pairs(np.array([[0, 1]]))
        catalog_before = service.embeddings.copy()

        calls = {"count": 0}
        original_encode = HyGNNEncoder.encode_with_context

        def counting(self, *args, **kwargs):
            calls["count"] += 1
            return original_encode(self, *args, **kwargs)

        monkeypatch.setattr(HyGNNEncoder, "encode_with_context", counting)
        for i, smiles in enumerate(new_drugs):
            service.register_drug(smiles, drug_id=f"new_{i}")
        assert calls["count"] == 0  # no corpus re-encode during registration
        assert service.stats.corpus_encodes == 1
        assert service.stats.incremental_encodes == len(new_drugs)
        # Existing rows are bitwise-untouched.
        np.testing.assert_array_equal(
            service.embeddings[:len(corpus)], catalog_before)

    def test_incremental_matches_full_rebuild(self, setup):
        corpus, _, model, _, builder = setup
        new_drugs = _corpus(3, seed=88)
        one_by_one = DDIScreeningService(model, builder, corpus)
        for i, smiles in enumerate(new_drugs):
            one_by_one.register_drug(smiles, drug_id=f"n{i}")
        # Full rebuild: a fresh service (cold cache) registering the same
        # drugs in one batch.  Per-edge results are independent, so batch
        # size only perturbs BLAS summation order (ULP-level).
        rebuilt = DDIScreeningService(model, builder, corpus)
        rebuilt.register_drugs(new_drugs, drug_ids=["n0", "n1", "n2"])
        np.testing.assert_allclose(one_by_one.embeddings, rebuilt.embeddings,
                                   rtol=0, atol=1e-12)
        # A forced in-place rebuild re-encodes the extensions from their
        # stored incidence in one batch — bitwise equal to the batch path.
        one_by_one.refresh(force=True)
        np.testing.assert_array_equal(one_by_one.embeddings,
                                      rebuilt.embeddings)
        pairs = np.array([[len(corpus), 0], [len(corpus) + 2, 5]])
        np.testing.assert_allclose(one_by_one.score_pairs(pairs),
                                   rebuilt.score_pairs(pairs),
                                   rtol=0, atol=1e-12)

    def test_registered_drug_embedding_is_inductive(self, setup):
        """A corpus drug re-registered as 'new' gets its exact catalog row."""
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        index = service.register_drug(corpus[5], drug_id="copy_of_5")
        np.testing.assert_allclose(service.embeddings[index],
                                   service.embeddings[5],
                                   rtol=0, atol=1e-12)

    def test_unknown_substructures_rejected(self, setup):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        with pytest.raises(ValueError):
            service.register_drug("@@@@", drug_id="junk")
        index = service.register_drug("@@@@", drug_id="junk",
                                      allow_unknown=True)
        np.testing.assert_array_equal(service.embeddings[index],
                                      np.zeros(service.embeddings.shape[1]))

    def test_duplicate_drug_id_rejected(self, setup):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        with pytest.raises(ValueError):
            service.register_drug(corpus[0], drug_id="drug_0")


class TestScreening:
    def test_top_k_matches_brute_force(self, setup, service):
        corpus, _, model, hypergraph, _ = setup
        query = 4
        candidates = [j for j in range(len(corpus)) if j != query]
        pairs = np.array([[query, j] for j in candidates])
        probs = model.predict_proba(hypergraph, pairs)
        expected = [candidates[r] for r in np.argsort(-probs, kind="stable")[:5]]
        hits = service.screen(query, top_k=5)
        assert [h.index for h in hits] == expected
        for hit, rank in zip(hits, np.argsort(-probs, kind="stable")[:5]):
            assert hit.probability == pytest.approx(probs[rank], abs=1e-12)

    def test_screen_excludes_self(self, service):
        hits = service.screen(0, top_k=service.num_drugs)
        assert 0 not in [h.index for h in hits]
        assert len(hits) == service.num_drugs - 1

    def test_screen_by_id_and_exclude(self, service):
        hits = service.screen("drug_2", top_k=3, exclude=("drug_0", 1))
        assert {h.index for h in hits}.isdisjoint({0, 1, 2})

    def test_screen_probabilities_sorted(self, service):
        probs = [h.probability for h in service.screen(7, top_k=10)]
        assert probs == sorted(probs, reverse=True)

    def test_screen_top_k_zero_returns_empty(self, service):
        assert service.screen(0, top_k=0) == []
        assert service.screen(0, top_k=-3) == []

    def test_screen_independent_of_engine_layout(self, setup, service):
        """Block size and shard count are execution details, not semantics."""
        corpus, _, model, _, builder = setup
        tiled = DDIScreeningService(model, builder, corpus, block_size=3,
                                    num_shards=4)
        for query in (0, 13):
            expected = [(h.index, h.probability)
                        for h in service.screen(query, top_k=7)]
            assert [(h.index, h.probability)
                    for h in tiled.screen(query, top_k=7)] == expected

    def test_screen_batch_matches_screen(self, service):
        batched = service.screen_batch(["drug_3", 8], top_k=4)
        for query, hits in zip([3, 8], batched):
            assert [(h.index, h.probability) for h in hits] == \
                [(h.index, h.probability)
                 for h in service.screen(query, top_k=4)]

    def test_symmetric_screening_averages_orders(self, setup, service):
        corpus, _, _, _, _ = setup
        asym = {h.index: h.probability for h in
                service.screen(3, top_k=len(corpus))}
        sym = {h.index: h.probability for h in
               service.screen(3, top_k=len(corpus), symmetric=True)}
        flipped = service.score_pairs(
            np.array([[j, 3] for j in sorted(asym)]))
        for j, flip in zip(sorted(asym), flipped):
            assert sym[j] == pytest.approx(0.5 * (asym[j] + flip), abs=1e-12)

    def test_screen_smiles_matches_registration(self, setup):
        corpus, _, model, _, builder = setup
        new = _corpus(1, seed=101)[0]
        transient = DDIScreeningService(model, builder, corpus)
        hits_transient = transient.screen_smiles(new, top_k=5)
        assert transient.num_drugs == len(corpus)  # nothing registered
        registered = DDIScreeningService(model, builder, corpus)
        registered.register_drug(new, drug_id="q")
        hits_registered = registered.screen("q", top_k=5)
        assert ([h.index for h in hits_transient]
                == [h.index for h in hits_registered])
        for a, b in zip(hits_transient, hits_registered):
            assert a.probability == pytest.approx(b.probability, abs=1e-12)


class TestServeFromArtifact:
    def test_save_load_serve_bitwise_roundtrip(self, tmp_path, setup,
                                               query_pairs):
        corpus, _, model, hypergraph, builder = setup
        path = tmp_path / "model.npz"
        save_model(path, model, builder)
        service = DDIScreeningService.from_artifact(path, corpus)
        np.testing.assert_array_equal(
            service.score_pairs(query_pairs),
            model.predict_proba(hypergraph, query_pairs))

    def test_espf_roundtrip_bitwise(self, tmp_path):
        corpus = _corpus(30, seed=42)
        config = HyGNNConfig(method="espf", parameter=5, embed_dim=16,
                             hidden_dim=16)
        model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
        path = tmp_path / "espf.npz"
        save_model(path, model, builder)
        service = DDIScreeningService.from_artifact(path, corpus)
        pairs = np.array([[0, 1], [5, 20], [12, 3]])
        np.testing.assert_array_equal(
            service.score_pairs(pairs),
            model.predict_proba(hypergraph, pairs))
        # The reloaded ESPF tokenizer drives registration identically too.
        new = _corpus(1, seed=7)[0]
        direct = DDIScreeningService(model, builder, corpus)
        service.register_drug(new, drug_id="x")
        direct.register_drug(new, drug_id="x")
        np.testing.assert_array_equal(service.embeddings, direct.embeddings)

    def test_trained_artifact_roundtrip(self, tmp_path):
        bench = make_benchmark(scale=0.05, seed=2)
        ds = bench.twosides
        pairs, labels = balanced_pairs_and_labels(ds, seed=2)
        split = random_split(len(pairs), seed=2)
        config = HyGNNConfig(epochs=5, embed_dim=16, hidden_dim=16)
        model, hypergraph, builder = HyGNN.for_corpus(ds.smiles, config)
        Trainer(model, config).fit(hypergraph, pairs, labels, split)
        path = tmp_path / "trained.npz"
        save_model(path, model, builder)
        service = DDIScreeningService.from_artifact(path, ds.smiles)
        np.testing.assert_array_equal(
            service.score_pairs(pairs[:32]),
            model.predict_proba(hypergraph, pairs[:32]))


class TestValidation:
    def test_empty_catalog_rejected(self, setup):
        _, _, model, _, builder = setup
        with pytest.raises(ValueError):
            DDIScreeningService(model, builder, [])

    def test_mismatched_builder_rejected(self, setup):
        corpus, config, model, _, _ = setup
        _, _, other_builder = HyGNN.for_corpus(_corpus(10, seed=1), config)
        with pytest.raises(ValueError):
            DDIScreeningService(model, other_builder, corpus)

    def test_pair_index_out_of_range(self, service):
        with pytest.raises(IndexError):
            service.score_pairs(np.array([[0, service.num_drugs]]))

    def test_unknown_drug_id(self, service):
        with pytest.raises(KeyError):
            service.index_of("nope")

    def test_embeddings_view_is_read_only(self, service):
        with pytest.raises(ValueError):
            service.embeddings[0, 0] = 1.0

    def test_service_does_not_flip_training_mode(self, setup):
        corpus, _, model, _, builder = setup
        model.train()
        try:
            service = DDIScreeningService(model, builder, corpus)
            assert model.training  # construction is side-effect free
            service.score_pairs(np.array([[0, 1]]))
            assert model.training  # scoring restores the caller's mode
        finally:
            model.eval()

    def test_cached_context_is_detached(self, service):
        """The cache must not pin the corpus-encode autograd graph."""
        service.score_pairs(np.array([[0, 1]]))
        for tensor in service._cache.context.layer_node_feats:
            assert not tensor.requires_grad
            assert tensor._parents == ()


class TestServingBugSweep:
    """Pins for the serving-layer bug sweep.

    Three classes of silent misbehaviour: booleans accepted as catalog
    indices (``True`` screened drug 1), ``pairs_scored`` overcounting
    excluded candidates, and the vectorized id lookup widening only the
    query side of the dtype comparison.
    """

    def test_screen_rejects_bool_query(self, service):
        with pytest.raises(TypeError, match="bool"):
            service.screen(True)
        with pytest.raises(TypeError, match="bool"):
            service.screen(np.True_)

    def test_screen_batch_rejects_bool_query(self, service):
        with pytest.raises(TypeError, match="bool"):
            service.screen_batch([0, False])

    def test_score_pairs_rejects_bool_pairs(self, service):
        with pytest.raises(TypeError, match="bool"):
            service.score_pairs(np.array([[True, False]]))

    def test_exclude_rejects_bools(self, service):
        with pytest.raises(TypeError, match="bool"):
            service.screen(0, exclude=(True,))

    def test_top_k_rejects_bools(self, service):
        with pytest.raises(TypeError):
            service.screen(0, top_k=True)

    def test_pairs_scored_counts_eligible_pairs_only(self, setup):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        service.refresh()
        n = service.num_drugs
        base = service.stats.pairs_scored
        service.screen(0, top_k=3)
        # The query itself is always excluded, so n - 1 pairs are scored.
        assert service.stats.pairs_scored - base == n - 1
        base = service.stats.pairs_scored
        service.screen(0, top_k=3, exclude=(1, 2))
        assert service.stats.pairs_scored - base == n - 3
        base = service.stats.pairs_scored
        service.screen(0, top_k=3, symmetric=True)
        assert service.stats.pairs_scored - base == 2 * (n - 1)

    def test_id_lookup_widens_both_sides(self, service):
        ids = service._drug_ids
        # A query id longer than every catalog id forces the *table* to
        # widen (the query array's string dtype is the wider one).
        long_id = max(ids, key=len) + "_longer_than_any_catalog_id"
        with pytest.raises(KeyError, match="unknown drug id"):
            service.score_id_pairs([(ids[0], long_id)])
        # Valid ids still resolve when the query array is artificially
        # wider than the catalog table.
        wide = np.asarray([[ids[0], ids[1]]], dtype="<U128")
        np.testing.assert_array_equal(
            service._ids_to_indices(wide).reshape(-1),
            [service.index_of(ids[0]), service.index_of(ids[1])])

    def test_id_lookup_mixed_batch_names_the_unknown(self, service):
        ids = service._drug_ids
        long_id = "z" * 64
        with pytest.raises(KeyError, match="unknown drug id"):
            service.score_id_pairs([(ids[0], ids[1]), (long_id, ids[2])])


class TestCachePersistence:
    def test_round_trip_scores_identical(self, setup, query_pairs, tmp_path):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        expected = service.score_pairs(query_pairs)
        path = service.save_cache(tmp_path / "cache.npz")

        warm = DDIScreeningService(model, builder, corpus)
        assert warm.load_cache(path)
        assert np.array_equal(warm.score_pairs(query_pairs), expected)

    def test_warm_restart_skips_corpus_encode(self, setup, query_pairs,
                                              tmp_path):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        path = service.save_cache(tmp_path / "cache.npz")

        warm = DDIScreeningService(model, builder, corpus)
        assert warm.load_cache(path)
        warm.score_pairs(query_pairs)
        assert warm.stats.corpus_encodes == 0
        assert warm.stats.cache_loads == 1

    def test_fingerprint_survives_json_round_trip(self, setup, tmp_path):
        from repro.serving.cache import (_fingerprint_from_json,
                                         _fingerprint_to_json)
        _, _, model, _, _ = setup
        for mode in ("fast", "full"):
            fingerprint = weights_fingerprint(model, mode=mode)
            restored = _fingerprint_from_json(
                _fingerprint_to_json(fingerprint))
            assert restored == fingerprint

    def test_stale_weights_rejected(self, setup, tmp_path):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        path = service.save_cache(tmp_path / "cache.npz")

        bias = model.decoder.f2.bias
        original = bias.data.copy()
        try:
            bias.data = bias.data + 1.0
            stale = DDIScreeningService(model, builder, corpus)
            assert not stale.load_cache(path)
            with pytest.raises(ValueError):
                stale.load_cache(path, strict=True)
        finally:
            bias.data = original

    def test_catalog_size_mismatch_rejected(self, setup, tmp_path):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        path = service.save_cache(tmp_path / "cache.npz")

        smaller = DDIScreeningService(model, builder, corpus[:-2])
        assert not smaller.load_cache(path)

    def test_same_size_different_catalog_rejected(self, setup, tmp_path):
        """The weights fingerprint alone cannot identify a catalog — a
        snapshot for different drugs of the same count must not install."""
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        path = service.save_cache(tmp_path / "cache.npz")

        shuffled = list(reversed(corpus))
        other = DDIScreeningService(model, builder, shuffled)
        assert not other.load_cache(path)
        with pytest.raises(ValueError, match="different drug catalog"):
            other.load_cache(path, strict=True)

    def test_save_path_without_suffix_returns_real_file(self, setup,
                                                        tmp_path):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        path = service.save_cache(tmp_path / "warm_cache")
        assert path.suffix == ".npz" and path.exists()
        warm = DDIScreeningService(model, builder, corpus)
        assert warm.load_cache(path)

    def test_registration_works_after_warm_restart(self, setup, tmp_path):
        """The restored context must still support cold-start registration."""
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        path = service.save_cache(tmp_path / "cache.npz")

        warm = DDIScreeningService(model, builder, corpus)
        assert warm.load_cache(path)
        index = warm.register_drug(corpus[0], drug_id="restored-clone")
        assert np.allclose(warm.embeddings[index], warm.embeddings[0])

    def test_save_on_cold_service_encodes_first(self, setup, tmp_path):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        service.save_cache(tmp_path / "cache.npz")
        assert service.stats.corpus_encodes == 1

    def test_missing_or_corrupt_snapshot_returns_false(self, setup, tmp_path):
        corpus, _, model, _, builder = setup
        service = DDIScreeningService(model, builder, corpus)
        assert not service.load_cache(tmp_path / "never_written.npz")
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"not a zip archive")
        assert not service.load_cache(garbage)
        with pytest.raises(FileNotFoundError):
            service.load_cache(tmp_path / "never_written.npz", strict=True)
