"""Tests for the compiled training pipeline: Tape record/replay parity,
replay gradients vs finite differences (hypothesis), and the Trainer's
compiled / mini-batch modes against the eager closure path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig, Trainer
from repro.data import random_split
from repro.nn import Adam, Tape, Tensor, bce_with_logits
from repro.nn import functional as F
from repro.nn.gradcheck import numerical_gradient


# ---------------------------------------------------------------------------
# Tape mechanics on small synthetic graphs
# ---------------------------------------------------------------------------

def _make_graph(seed=0):
    """A little pipeline exercising gather/segment/matmul/activation ops."""
    rng = np.random.default_rng(seed)
    weight = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
    project = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
    indices = rng.integers(0, 6, size=12)
    segments = np.sort(rng.integers(0, 5, size=12))
    targets = rng.integers(0, 2, size=5).astype(float)

    def build():
        gathered = F.gather_rows(weight, indices)
        pooled = F.segment_mean(gathered, segments, 5)
        hidden = F.leaky_relu(pooled @ project, 0.2)
        logits = hidden.sum(axis=1)
        return bce_with_logits(logits, targets)

    return build, [weight, project]


class TestTapeMechanics:
    def test_record_returns_tape_with_root_and_leaves(self):
        build, params = _make_graph()
        tape = Tape.record(build)
        assert tape.root.op == "bce_with_logits"
        assert tape.num_ops > 0
        for param in params:
            assert any(leaf is param for leaf in tape.leaves)

    def test_record_requires_tensor_root(self):
        with pytest.raises(TypeError):
            Tape.record(lambda: 3.0)

    def test_record_requires_grad_root(self):
        with pytest.raises(ValueError):
            Tape.record(lambda: Tensor([1.0]) * Tensor([2.0]))

    def test_record_does_not_nest(self):
        build, _ = _make_graph()

        def nested():
            Tape.record(build)
            return build()

        with pytest.raises(RuntimeError):
            Tape.record(nested)

    def test_forward_tracks_inplace_leaf_updates(self):
        build, (weight, project) = _make_graph()
        tape = Tape.record(build)
        weight.data = weight.data * 0.5
        replayed = tape.forward().item()
        assert replayed == build().item()

    def test_replay_with_new_leaf_values(self):
        build, (weight, project) = _make_graph()
        tape = Tape.record(build)
        rng = np.random.default_rng(9)
        new_weight = rng.standard_normal(weight.shape)
        replayed = tape.replay({weight: new_weight}).item()
        assert np.array_equal(weight.data, new_weight)
        # fresh eager evaluation from the same values agrees bitwise
        assert replayed == build().item()

    def test_replay_rejects_shape_changes(self):
        build, (weight, _) = _make_graph()
        tape = Tape.record(build)
        with pytest.raises(ValueError):
            tape.forward({weight: np.zeros((3, 3))})

    def test_replay_rejects_unknown_leaves(self):
        build, _ = _make_graph()
        tape = Tape.record(build)
        with pytest.raises(KeyError):
            tape.forward({Tensor(np.zeros(2), requires_grad=True): np.zeros(2)})

    def test_backward_requires_scalar_root_without_seed(self):
        tape = Tape.record(
            lambda: Tensor(np.ones(3), requires_grad=True) * 2.0)
        with pytest.raises(RuntimeError):
            tape.backward()

    def test_backward_matches_eager_bitwise(self):
        build, params = _make_graph()
        tape = Tape.record(build)
        tape.backward()
        tape_grads = [p.grad.copy() for p in params]
        for p in params:
            p.grad = None
        build().backward()
        for tape_grad, param in zip(tape_grads, params):
            assert np.array_equal(tape_grad, param.grad)

    def test_rejects_hand_rolled_closure_ops(self):
        x = Tensor([1.0, 2.0], requires_grad=True)

        def build():
            out = Tensor._result(x.data ** 2, (x,), "handmade")
            out._backward = lambda: None
            return out.sum()

        with pytest.raises(RuntimeError, match="not routed through apply_op"):
            Tape.record(build)


class TestTapeReplayTraining:
    def test_replay_training_matches_eager_loop_bitwise(self):
        """10 Adam steps by tape replay == 10 eager re-traced steps."""
        build_a, params_a = _make_graph(seed=3)
        build_b, params_b = _make_graph(seed=3)
        tape = Tape.record(build_a)
        opt_a = Adam(params_a, lr=0.05)
        opt_b = Adam(params_b, lr=0.05)
        losses_a, losses_b = [], []
        for step in range(10):
            if step > 0:
                tape.forward()
            opt_a.zero_grad()
            tape.backward()
            opt_a.step()
            losses_a.append(tape.root.item())

            opt_b.zero_grad()
            loss = build_b()
            loss.backward()
            opt_b.step()
            losses_b.append(loss.item())
        assert losses_a == losses_b
        for pa, pb in zip(params_a, params_b):
            assert np.array_equal(pa.data, pb.data)

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_replay_gradients_match_finite_differences(self, seed):
        """Hypothesis invariant: replayed grads pass gradcheck at any leaf
        values, not just the ones the tape was recorded with."""
        build, (weight, project) = _make_graph(seed=1)
        tape = Tape.record(build)
        rng = np.random.default_rng(seed)
        tape.replay({weight: rng.standard_normal(weight.shape),
                     project: rng.standard_normal(project.shape)})
        for param in (weight, project):
            numeric = numerical_gradient(build, param, eps=1e-6)
            assert np.allclose(param.grad, numeric, atol=1e-5, rtol=1e-4)

    def test_dropout_resamples_on_replay(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((50, 4)), requires_grad=True)
        tape = Tape.record(lambda: F.dropout(x, 0.5, True, rng).sum())
        first = tape.root.item()
        second = tape.forward().item()
        assert first != second  # a fresh mask was drawn from the stream


class TestFusedEncoderTape:
    """The fused segment-attention kernels under record/replay."""

    @pytest.fixture()
    def encoder_and_graph(self):
        from repro.core import HyGNNEncoder
        from repro.hypergraph import Hypergraph

        rng = np.random.default_rng(7)
        num_nodes, num_edges, nnz = 30, 18, 140
        hypergraph = Hypergraph(
            num_nodes, num_edges,
            np.concatenate([rng.integers(0, num_nodes, nnz),
                            rng.integers(0, num_nodes, num_edges)]),
            np.concatenate([rng.integers(0, num_edges, nnz),
                            np.arange(num_edges)]))
        encoder = HyGNNEncoder(num_substructures=num_nodes, embed_dim=8,
                               hidden_dim=6, rng=np.random.default_rng(8),
                               num_layers=2, dropout=0.0)
        encoder.eval()
        return encoder, hypergraph

    def test_replay_is_bitwise_invariant(self, encoder_and_graph):
        encoder, hypergraph = encoder_and_graph
        tape = encoder.compile_encode(hypergraph)
        recorded = tape.root.data.copy()
        for _ in range(3):
            tape.forward()
            assert np.array_equal(tape.root.data, recorded)
        # and identical to a fresh eager fused encode
        assert np.array_equal(encoder.encode_hypergraph(hypergraph).data,
                              recorded)

    def test_replay_tracks_weight_updates_bitwise(self, encoder_and_graph):
        encoder, hypergraph = encoder_and_graph
        tape = encoder.compile_encode(hypergraph)
        for param in encoder.parameters():
            param.data = param.data * 0.9
        tape.forward()
        assert np.array_equal(tape.root.data,
                              encoder.encode_hypergraph(hypergraph).data)

    def test_replay_gradients_match_eager_bitwise(self, encoder_and_graph):
        encoder, hypergraph = encoder_and_graph
        tape = encoder.compile_encode(hypergraph)
        seed = np.ones_like(tape.root.data)
        tape.backward(seed)
        tape_grads = {name: param.grad.copy()
                      for name, param in encoder.named_parameters()}
        encoder.zero_grad()
        encoder.encode_hypergraph(hypergraph).backward(seed)
        for name, param in encoder.named_parameters():
            assert np.array_equal(tape_grads[name], param.grad), name

    def test_fused_and_unfused_tapes_agree_bitwise(self, encoder_and_graph):
        from repro.core import fused_kernels

        encoder, hypergraph = encoder_and_graph
        with fused_kernels(False):
            unfused = encoder.compile_encode(hypergraph)
        fused = encoder.compile_encode(hypergraph)
        for _ in range(2):
            assert np.array_equal(fused.root.data, unfused.root.data)
            fused.forward()
            unfused.forward()


# ---------------------------------------------------------------------------
# Trainer pipelines on a small synthetic corpus
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def training_problem():
    corpus = [r.smiles for r in MoleculeGenerator(seed=4).generate_corpus(36)]
    rng = np.random.default_rng(4)
    pairs = rng.integers(0, len(corpus), size=(240, 2))
    labels = rng.integers(0, 2, size=240).astype(float)
    split = random_split(len(pairs), seed=4)
    return corpus, pairs, labels, split


def _train(problem, **config_overrides):
    corpus, pairs, labels, split = problem
    settings = dict(parameter=4, embed_dim=16, hidden_dim=16,
                    epochs=10, patience=100, seed=5)
    settings.update(config_overrides)
    config = HyGNNConfig(**settings)
    model, hypergraph, _ = HyGNN.for_corpus(corpus, config)
    trainer = Trainer(model, config)
    history = trainer.fit(hypergraph, pairs, labels, split)
    return history, model.state_dict()


class TestCompiledTrainerParity:
    def test_bitwise_identical_to_eager_without_dropout(self, training_problem):
        eager_hist, eager_state = _train(training_problem, dropout=0.0,
                                         compiled=False)
        compiled_hist, compiled_state = _train(training_problem, dropout=0.0,
                                               compiled=True)
        assert eager_hist.train_loss == compiled_hist.train_loss
        assert eager_hist.val_loss == compiled_hist.val_loss
        assert eager_hist.best_epoch == compiled_hist.best_epoch
        for key in eager_state:
            assert np.array_equal(eager_state[key], compiled_state[key])

    def test_train_trajectory_bitwise_with_dropout(self, training_problem):
        # Dropout masks are drawn from the same generator stream in the same
        # order, so even the stochastic train losses match bitwise; only the
        # validation estimate differs (cached training-mode embeddings vs
        # the eager loop's eval-mode re-encode).
        eager_hist, _ = _train(training_problem, dropout=0.2, compiled=False)
        compiled_hist, _ = _train(training_problem, dropout=0.2,
                                  compiled=True)
        assert eager_hist.train_loss == compiled_hist.train_loss

    def test_minibatch_matches_full_batch_to_float_order(self,
                                                         training_problem):
        full_hist, full_state = _train(training_problem, dropout=0.0)
        batch_hist, batch_state = _train(training_problem, dropout=0.0,
                                         batch_size=64)
        drift = max(abs(a - b) for a, b in zip(full_hist.train_loss,
                                               batch_hist.train_loss))
        assert drift < 1e-10  # gradient accumulation: same mean gradient
        for key in full_state:
            assert np.allclose(full_state[key], batch_state[key],
                               atol=1e-9, rtol=1e-9)

    def test_minibatch_with_batch_larger_than_train_set(self,
                                                        training_problem):
        full_hist, _ = _train(training_problem, dropout=0.0)
        one_chunk_hist, _ = _train(training_problem, dropout=0.0,
                                   batch_size=10_000)
        # a single shuffled chunk is the full batch in a different order
        drift = max(abs(a - b) for a, b in zip(full_hist.train_loss,
                                               one_chunk_hist.train_loss))
        assert drift < 1e-10

    def test_compiled_trainer_early_stops(self, training_problem):
        history, _ = _train(training_problem, dropout=0.0, epochs=60,
                            patience=3)
        assert history.epochs_run <= 60
        if history.stopped_early:
            assert history.best_epoch < history.epochs_run - 1

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            HyGNNConfig(batch_size=0)
        assert HyGNNConfig(batch_size=128).batch_size == 128

    def test_eager_rejects_batch_size(self, training_problem):
        corpus, pairs, labels, split = training_problem
        config = HyGNNConfig(parameter=4, embed_dim=16, hidden_dim=16,
                             epochs=2, batch_size=64, compiled=False)
        model, hypergraph, _ = HyGNN.for_corpus(corpus, config)
        with pytest.raises(ValueError, match="compiled pipeline"):
            Trainer(model, config).fit(hypergraph, pairs, labels, split)
