"""Tests for the fault-tolerant multi-host screening tier: wire framing,
deterministic fault injection (`repro.serving.faults`), the shard worker +
failover client (`repro.serving.remote`), store integrity checksums and
quarantine, cold boot (`DDIScreeningService.from_store`), process-pool
hardening against worker death, and the gateway's failure/deadline
accounting.

The contract under test everywhere: under **any** fault schedule — dropped
connections, injected errors, corrupted frames, timeouts, dead workers,
torn shard files — the merged top-k is either bitwise-identical to the
serial in-memory engine or an explicit error; never silently wrong.
"""

import os
import signal
import socket
import time

import asyncio

import numpy as np
import pytest

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.core.decoder import (KERNEL_KINDS, kernel_kind, make_kernel,
                                make_screen_kernel)
from repro.serving import (CircuitBreaker, DDIScreeningService,
                           DeadlineExceeded, FaultInjected, FaultPolicy,
                           FaultRule, FrameError, ParallelShardExecutor,
                           RemoteShardError, RemoteShardExecutor,
                           ScreeningGateway, ShardIntegrityError, ShardStore,
                           ShardWorker, corrupt_payload, exact_score_fn,
                           recv_message, send_message)
from repro.serving.remote import _flatten_arrays, _unflatten_arrays
from repro.serving.shards import validate_shard_results


def _corpus(n=30, seed=11):
    return [r.smiles for r in MoleculeGenerator(seed=seed).generate_corpus(n)]


@pytest.fixture(scope="module", params=["mlp", "dot"])
def setup(request):
    corpus = _corpus()
    config = HyGNNConfig(parameter=4, embed_dim=12, hidden_dim=12, seed=5,
                         decoder=request.param)
    model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
    return corpus, config, model, builder


@pytest.fixture(scope="module")
def served(setup, tmp_path_factory):
    """A service with a saved + attached 3-shard store, plus its manifest."""
    corpus, _, model, builder = setup
    service = DDIScreeningService(model, builder, corpus, num_shards=3,
                                  block_size=16)
    root = tmp_path_factory.mktemp("remote-store")
    manifest = service.save_shards(root / "store", num_shards=3)
    assert service.open_shards(manifest, strict=True)
    return service, manifest


def _hits(results):
    return [[(h.index, h.probability) for h in hits] for hits in results]


def _corrupt_file_tail(path):
    """Flip data bytes at the end of a ``.npy`` file.

    Leaves the numpy header intact, so the file still *loads* — only an
    integrity check can tell the rows are wrong, which is exactly the
    torn-page failure mode the checksums exist for.
    """
    raw = path.read_bytes()
    path.write_bytes(raw[:-16] + corrupt_payload(raw[-16:]))


class _Pipe:
    """In-memory socket stand-in for framing tests."""

    def __init__(self):
        self.buffer = bytearray()
        self.offset = 0

    def sendall(self, data):
        self.buffer.extend(data)

    def recv(self, count):
        chunk = bytes(self.buffer[self.offset:self.offset + count])
        self.offset += len(chunk)
        return chunk


# ---------------------------------------------------------------------------
# Wire framing
# ---------------------------------------------------------------------------
class TestFraming:
    def test_round_trip_nested_arrays_bitwise(self):
        rng = np.random.default_rng(0)
        tree = {"as_left": {"const": rng.standard_normal((2, 5)),
                            "g_max": rng.standard_normal((2, 5, 3))},
                "emb": rng.standard_normal((2, 4)).astype(np.float32),
                "idx": np.arange(7, dtype=np.int64)}
        pipe = _Pipe()
        send_message(pipe, {"op": "screen", "meta": {"shard": 2}},
                     _flatten_arrays(tree))
        header, arrays = recv_message(pipe)
        assert header["op"] == "screen" and header["meta"] == {"shard": 2}
        back = _unflatten_arrays(arrays)
        assert back["emb"].dtype == np.float32
        np.testing.assert_array_equal(back["emb"], tree["emb"])
        np.testing.assert_array_equal(back["idx"], tree["idx"])
        for name in ("const", "g_max"):
            np.testing.assert_array_equal(back["as_left"][name],
                                          tree["as_left"][name])

    def test_empty_arrays_and_no_arrays(self):
        pipe = _Pipe()
        send_message(pipe, {"op": "health"})
        header, arrays = recv_message(pipe)
        assert header["op"] == "health" and arrays == {}
        pipe = _Pipe()
        send_message(pipe, {"op": "x"}, {"empty": np.zeros((0, 4))})
        _, arrays = recv_message(pipe)
        assert arrays["empty"].shape == (0, 4)

    def test_corrupted_payload_raises_frame_error(self):
        pipe = _Pipe()
        send_message(pipe, {"op": "screen"},
                     {"a": np.arange(8, dtype=np.float64)}, _corrupt=True)
        with pytest.raises(FrameError, match="CRC32"):
            recv_message(pipe)

    def test_truncated_frame_raises_eof(self):
        pipe = _Pipe()
        send_message(pipe, {"op": "screen"}, {"a": np.arange(8.0)})
        pipe.buffer = pipe.buffer[:len(pipe.buffer) - 5]
        with pytest.raises(EOFError):
            recv_message(pipe)

    def test_garbage_header_rejected(self):
        pipe = _Pipe()
        pipe.buffer.extend(b"\x00\x00\x00\x04notj")
        with pytest.raises(FrameError):
            recv_message(pipe)


# ---------------------------------------------------------------------------
# Fault policy determinism
# ---------------------------------------------------------------------------
class TestFaultPolicy:
    def test_attempt_counters_are_per_op_shard(self):
        policy = FaultPolicy([FaultRule("error", shard=1, attempt=1)])
        assert policy.decide("screen", 1) is None      # shard 1 attempt 0
        assert policy.decide("screen", 0) is None      # other shard
        rule = policy.decide("screen", 1)              # shard 1 attempt 1
        assert rule is not None and rule.action == "error"
        assert policy.decide("screen", 1) is None      # rule budget spent
        assert policy.attempts("screen", 1) == 3

    def test_times_budget_and_reset(self):
        policy = FaultPolicy.single("drop", shard=0, attempt=None, times=2)
        assert [policy.decide("screen", 0) is not None
                for _ in range(4)] == [True, True, False, False]
        policy.reset()
        assert policy.decide("screen", 0) is not None
        assert len(policy.fired) == 1

    def test_two_runs_fire_identically(self):
        def run():
            policy = FaultPolicy([FaultRule("error", shard=2, attempt=0),
                                  FaultRule("corrupt", attempt=1,
                                            times=None)])
            log = []
            for shard in (0, 1, 2, 0, 1, 2):
                rule = policy.decide("screen", shard)
                log.append(None if rule is None else rule.action)
            return log
        assert run() == run()

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="action"):
            FaultRule("explode")
        with pytest.raises(ValueError, match="times"):
            FaultRule("drop", times=0)
        with pytest.raises(ValueError, match="delay_s"):
            FaultRule("delay", delay_s=-1.0)

    def test_corrupt_payload_flips_bytes_same_length(self):
        data = bytes(range(64))
        damaged = corrupt_payload(data)
        assert len(damaged) == len(data) and damaged != data
        assert corrupt_payload(b"") == b""


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_and_half_open_recovers(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=2, reset_s=10.0,
                                 clock=lambda: clock[0])
        assert breaker.allow() and breaker.state == "closed"
        assert not breaker.record_failure()
        assert breaker.record_failure()          # second failure trips
        assert breaker.state == "open" and not breaker.allow()
        clock[0] = 11.0                          # reset window elapsed
        assert breaker.state == "half-open"
        assert breaker.allow()                   # the probe slot
        assert not breaker.allow()               # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens_full_window(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, reset_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allow()                   # probe
        assert breaker.record_failure()          # probe fails -> reopen
        assert not breaker.allow()
        clock[0] = 10.0                          # not a full window yet
        assert not breaker.allow()
        clock[0] = 11.5
        assert breaker.allow()
        assert breaker.trips == 2

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()      # 1 consecutive, not 2


# ---------------------------------------------------------------------------
# Reply validation
# ---------------------------------------------------------------------------
class TestValidateShardResults:
    def _good(self):
        return [(np.array([3, 1], dtype=np.int64), np.array([0.9, 0.8]))]

    def test_passes_and_casts(self):
        out = validate_shard_results(
            [(np.array([3, 1], dtype=np.int32), np.array([0.9, 0.8]))],
            1, [2], num_drugs=5)
        assert out[0][0].dtype == np.int64

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_shard_results(self._good(), 2, [2, 2])
        with pytest.raises(ValueError):   # unpaired lengths
            validate_shard_results(
                [(np.array([1]), np.array([0.5, 0.4]))], 1, [2])
        with pytest.raises(ValueError):   # over padded budget
            validate_shard_results(self._good(), 1, [1])
        with pytest.raises(ValueError):   # index out of catalog
            validate_shard_results(self._good(), 1, [2], num_drugs=2)
        with pytest.raises(ValueError):   # float indices
            validate_shard_results(
                [(np.array([1.5, 2.5]), np.array([0.5, 0.4]))], 1, [2])


# ---------------------------------------------------------------------------
# Worker + remote executor
# ---------------------------------------------------------------------------
class TestShardWorker:
    def test_health_and_manifest_probes(self, served):
        service, manifest = served
        store = ShardStore(manifest)
        with ShardWorker(manifest) as worker:
            executor = RemoteShardExecutor(store, [worker])
            health = executor.probe_health()
            (meta,) = health.values()
            assert meta["num_shards"] == 3
            assert meta["num_drugs"] == store.num_drugs
            assert meta["quarantined"] == []

    def test_unknown_op_is_structured_error(self, served):
        _, manifest = served
        with ShardWorker(manifest) as worker:
            with socket.create_connection(worker.address, timeout=5) as sock:
                send_message(sock, {"op": "nonsense"})
                reply, _ = recv_message(sock)
            assert reply["status"] == "error"
            assert "nonsense" in reply["meta"]["message"]

    def test_screen_request_matches_local_screen_shard(self, setup, served):
        _, config, model, _ = setup
        service, manifest = served
        store = ShardStore(manifest)
        kernel = make_screen_kernel(model.decoder)
        rng = np.random.default_rng(3)
        queries = rng.standard_normal((2, config.embed_dim))
        query_proj = model.decoder.project_queries(queries,
                                                   sides=("as_left",))
        with ShardWorker(manifest) as worker:
            with socket.create_connection(worker.address, timeout=5) as sock:
                send_message(sock, {"op": "screen", "meta": {
                    "shard": 1, "block_size": 8,
                    "kernel": kernel_kind(kernel), "two_sided": False,
                    "num_queries": 2, "padded": [4, 4]}},
                    _flatten_arrays(query_proj))
                reply, arrays = recv_message(sock)
        assert reply["status"] == "ok"
        local = exact_score_fn(kernel, query_proj, False)
        from repro.serving.shards import screen_shard
        expected = screen_shard(store.open_shard(1), 8, local, 2, [4, 4])
        for qi, (idx, scores) in enumerate(expected):
            np.testing.assert_array_equal(arrays[f"idx_{qi}"], idx)
            np.testing.assert_array_equal(arrays[f"sc_{qi}"], scores)


class TestRemoteExecutor:
    def _serial(self, served, **kwargs):
        service, _ = served
        return _hits(service.screen_batch([0, 5, 9], top_k=6,
                                          parallel=False, **kwargs))

    def test_parity_and_routing(self, served):
        service, manifest = served
        serial = self._serial(served)
        with ShardWorker(manifest) as w1, ShardWorker(manifest) as w2:
            service.connect_workers([w1, w2], backoff_base_s=0.001)
            try:
                before = service.stats.remote_screens
                remote = _hits(service.screen_batch([0, 5, 9], top_k=6))
                assert remote == serial
                assert service.stats.remote_screens == before + 3
                assert service.remote.stats["remote_requests"] == 3
                assert service.remote.stats["local_fallbacks"] == 0
                # parallel=False still forces fully in-process.
                forced = _hits(service.screen_batch([0, 5, 9], top_k=6,
                                                    parallel=False))
                assert forced == serial
            finally:
                service.disconnect_workers()

    def test_parity_two_sided_and_heterogeneous(self, served):
        service, manifest = served
        queries, top_ks = [1, 4, 7], [2, 6, 4]
        exclude = [(3,), (), (0, 2)]
        serial = _hits(service.screen_batch(
            queries, top_k=top_ks, exclude=exclude, symmetric=True,
            parallel=False))
        with ShardWorker(manifest) as worker:
            service.connect_workers([worker], backoff_base_s=0.001)
            try:
                remote = _hits(service.screen_batch(
                    queries, top_k=top_ks, exclude=exclude, symmetric=True))
                assert remote == serial
            finally:
                service.disconnect_workers()

    def test_fault_schedule_sweep_stays_bitwise(self, served):
        """Drop / error / corrupt each shard for 1..3 consecutive attempts:
        every schedule either fails over or falls back locally, and the
        merged top-k is bitwise the serial answer every single time."""
        service, manifest = served
        serial = self._serial(served)
        attempts = 3
        for action in ("drop", "error", "corrupt"):
            for shard in range(3):
                for consecutive in (1, 2, 3):
                    policy = FaultPolicy.single(
                        action, shard=shard, attempt=None,
                        times=consecutive)
                    with ShardWorker(manifest, fault_policy=policy) as w1, \
                            ShardWorker(manifest, fault_policy=policy) as w2:
                        service.connect_workers(
                            [w1, w2], attempts=attempts,
                            backoff_base_s=0.001, breaker_threshold=10)
                        try:
                            got = _hits(service.screen_batch(
                                [0, 5, 9], top_k=6))
                            stats = service.remote.stats
                        finally:
                            service.disconnect_workers()
                    label = f"{action}/shard{shard}/x{consecutive}"
                    assert got == serial, label
                    assert len(policy.fired) == consecutive, label
                    if consecutive == attempts:
                        assert stats["local_fallbacks"] >= 1, label
                    else:
                        assert stats["local_fallbacks"] == 0, label
                        assert stats["retries"] >= consecutive, label

    def test_timeout_then_failover(self, served):
        service, manifest = served
        serial = self._serial(served)
        policy = FaultPolicy.single("delay", shard=1, delay_s=1.0)
        with ShardWorker(manifest, fault_policy=policy) as w1, \
                ShardWorker(manifest, fault_policy=policy) as w2:
            service.connect_workers([w1, w2], timeout_s=0.25,
                                    backoff_base_s=0.001)
            try:
                got = _hits(service.screen_batch([0, 5, 9], top_k=6))
            finally:
                stats = service.remote.stats
                service.disconnect_workers()
        assert got == serial
        assert stats["remote_failures"] >= 1 and stats["retries"] >= 1

    def test_dead_worker_fails_over_bitwise(self, served):
        service, manifest = served
        serial = self._serial(served)
        w1 = ShardWorker(manifest).start()
        w2 = ShardWorker(manifest).start()
        try:
            service.connect_workers([w1, w2], backoff_base_s=0.001)
            w1.stop()   # a crashed host: connections now refused
            got = _hits(service.screen_batch([0, 5, 9], top_k=6))
            assert got == serial
            assert service.remote.stats["failovers"] >= 1
        finally:
            service.disconnect_workers()
            w2.stop()

    def test_all_workers_down_local_fallback_bitwise(self, served):
        service, manifest = served
        serial = self._serial(served)
        # Ports from a closed listener: connection refused immediately.
        dead = []
        for _ in range(2):
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            dead.append(probe.getsockname())
            probe.close()
        service.connect_workers(dead, timeout_s=0.25, backoff_base_s=0.001,
                                breaker_threshold=2, breaker_reset_s=30.0)
        try:
            got = _hits(service.screen_batch([0, 5, 9], top_k=6))
            stats = dict(service.remote.stats)
        finally:
            service.disconnect_workers()
        assert got == serial
        assert stats["local_fallbacks"] == 3      # one per shard
        assert stats["breaker_trips"] >= 1        # breakers opened
        assert stats["breaker_skips"] >= 1        # later shards skipped them

    def test_no_fallback_raises_after_exhaustion(self, served):
        _, manifest = served
        store = ShardStore(manifest)
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        address = probe.getsockname()
        probe.close()
        executor = RemoteShardExecutor(
            store, [address], timeout_s=0.25, attempts=2,
            backoff_base_s=0.001, local_fallback=False)
        kernel = make_kernel(sorted(KERNEL_KINDS)[0])
        with pytest.raises(RemoteShardError, match="remote attempt"):
            executor.screen(kernel, {"emb": np.zeros((1, store.embed_dim))},
                            1, 3)
        with pytest.raises(ValueError, match="worker"):
            RemoteShardExecutor(store, [], local_fallback=False)

    def test_client_side_fault_policy_drives_retries(self, served):
        """The same policy plugs into the client, faulting requests before
        any bytes move — the retry machinery is testable without a
        misbehaving server."""
        service, manifest = served
        serial = self._serial(served)
        with ShardWorker(manifest) as worker:
            policy = FaultPolicy([FaultRule("error", shard=0, attempt=0),
                                  FaultRule("drop", shard=1, attempt=0),
                                  FaultRule("corrupt", shard=2, attempt=0)])
            service.connect_workers([worker], backoff_base_s=0.001,
                                    fault_policy=policy)
            try:
                got = _hits(service.screen_batch([0, 5, 9], top_k=6))
                stats = dict(service.remote.stats)
            finally:
                service.disconnect_workers()
        assert got == serial
        # Shards fan out on threads, so assert per-shard (order-free).
        assert {(f.shard, f.action) for f in policy.fired} == {
            (0, "error"), (1, "drop"), (2, "corrupt")}
        assert stats["corrupt_responses"] == 1
        assert stats["remote_failures"] == 3

    def test_mismatched_worker_is_excluded_permanently(self, served,
                                                       tmp_path):
        service, manifest = served
        serial = self._serial(served)
        rng = np.random.default_rng(9)
        store = ShardStore(manifest)
        foreign = ShardStore.save(
            tmp_path / "foreign", rng.standard_normal(
                (store.num_drugs, store.embed_dim)),
            num_shards=3, catalog_digest="someone-else")
        with ShardWorker(foreign) as bad, ShardWorker(manifest) as good:
            service.connect_workers([bad, good], backoff_base_s=0.001)
            try:
                got = _hits(service.screen_batch([0, 5, 9], top_k=6))
                states = service.remote.breaker_states()
                stats = dict(service.remote.stats)
            finally:
                service.disconnect_workers()
        assert got == serial
        assert stats["mismatched_workers"] == 1
        assert "mismatched" in states.values()

    def test_connect_workers_requires_attached_exact_store(self, setup,
                                                           tmp_path):
        corpus, _, model, builder = setup
        service = DDIScreeningService(model, builder, corpus, num_shards=2)
        with pytest.raises(RuntimeError, match="attached shard store"):
            service.connect_workers([("127.0.0.1", 1)])
        manifest = service.save_shards(tmp_path / "q", quantize="int8")
        assert service.open_shards(manifest)
        with pytest.raises(ValueError, match="quantized"):
            service.connect_workers([("127.0.0.1", 1)])


# ---------------------------------------------------------------------------
# Store integrity: checksums, quarantine, atomic writes
# ---------------------------------------------------------------------------
class TestStoreIntegrity:
    def _store(self, tmp_path, n=40, shards=3):
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((n, 6))
        return ShardStore.save(tmp_path / "store", emb,
                               {"emb": emb}, num_shards=shards,
                               block_size=8)

    def test_manifest_records_checksums_and_no_temp_files(self, tmp_path):
        manifest = self._store(tmp_path)
        store = ShardStore(manifest)
        assert store.has_checksums
        files = {p.name for p in manifest.parent.iterdir()}
        assert not any(name.endswith(".tmp") for name in files)
        manifests = {name for name in files
                     if name == "manifest.json"
                     or name.startswith("manifest.v")}
        assert set(store.manifest["checksums"]) == files - manifests
        assert store.verify() == []

    def test_corrupt_shard_detected_and_quarantined(self, tmp_path):
        manifest = self._store(tmp_path)
        _corrupt_file_tail(manifest.parent / "shard_00001.emb.npy")
        store = ShardStore(manifest)
        store.open_shard(0)                       # intact shards still open
        with pytest.raises(ShardIntegrityError, match="CRC32"):
            store.open_shard(1)
        assert store.quarantined == {1}
        fresh = ShardStore(manifest)
        assert fresh.verify() == [1]
        with pytest.raises(ShardIntegrityError):
            ShardStore(manifest).verify(strict=True)

    def test_verification_is_memoized_and_optional(self, tmp_path):
        manifest = self._store(tmp_path)
        victim = manifest.parent / "shard_00000.emb.npy"
        unverified = ShardStore(manifest, verify_checksums=False)
        store = ShardStore(manifest)
        store.open_shard(0)
        # Corruption after a shard was verified+mapped is the OS's problem;
        # a *new* store instance re-checks and catches it.
        _corrupt_file_tail(victim)
        with pytest.raises(ShardIntegrityError):
            ShardStore(manifest).open_shard(0)
        unverified.open_shard(0)                  # opted out: no check

    def test_legacy_manifest_without_checksums_still_opens(self, tmp_path):
        import json
        manifest = self._store(tmp_path)
        spec = json.loads(manifest.read_text())
        del spec["checksums"]
        manifest.write_text(json.dumps(spec))
        store = ShardStore(manifest)
        assert not store.has_checksums
        assert store.verify() == []
        store.open_shard(0)

    def test_worker_reports_quarantined_shard_as_error(self, tmp_path,
                                                       served):
        service, _ = served
        manifest = self._store(tmp_path)
        _corrupt_file_tail(manifest.parent / "shard_00002.emb.npy")
        store = ShardStore(manifest)
        with ShardWorker(manifest) as worker:
            executor = RemoteShardExecutor(store, [worker], attempts=1,
                                           timeout_s=5.0,
                                           local_fallback=False,
                                           validate_workers=False)
            kernel = make_kernel("dot")
            rng = np.random.default_rng(1)
            proj = {"emb": rng.standard_normal((1, store.embed_dim))}
            with pytest.raises(RemoteShardError):
                executor.screen(kernel, proj, 1, 3)


# ---------------------------------------------------------------------------
# Cold boot
# ---------------------------------------------------------------------------
class TestColdBoot:
    @pytest.fixture(scope="class")
    def booted(self, setup, tmp_path_factory):
        corpus, _, model, builder = setup
        warm = DDIScreeningService(model, builder, corpus, num_shards=3,
                                   block_size=16)
        warm.register_drug("CCOCC", drug_id="late_1")
        warm.register_drug("CCNCC", drug_id="late_2")
        root = tmp_path_factory.mktemp("coldboot")
        manifest = warm.save_shards(root / "store", num_shards=3)
        context = warm.save_serving_context(root / "context")
        cold = DDIScreeningService.from_store(manifest, context)
        return warm, cold, manifest, context

    def test_no_corpus_encode_and_bitwise_screens(self, booted):
        warm, cold, _, _ = booted
        assert cold.stats.corpus_encodes == 0
        queries = [0, 7, "late_1", "late_2"]
        assert _hits(cold.screen_batch(queries, top_k=6)) == \
            _hits(warm.screen_batch(queries, top_k=6, parallel=False))
        np.testing.assert_array_equal(cold.embeddings, warm.embeddings)
        assert cold.stats.corpus_encodes == 0

    def test_cold_boot_serves_remote_workers(self, booted):
        warm, _, manifest, context = booted
        with ShardWorker(manifest) as worker:
            cold = DDIScreeningService.from_store(
                manifest, context, workers=[worker])
            try:
                assert _hits(cold.screen_batch([0, 4], top_k=5)) == \
                    _hits(warm.screen_batch([0, 4], top_k=5,
                                            parallel=False))
                assert cold.stats.remote_screens == 2
                assert cold.stats.corpus_encodes == 0
            finally:
                cold.disconnect_workers()

    def test_corrupt_store_fails_the_boot(self, booted, tmp_path):
        import shutil
        warm, _, manifest, context = booted
        root = tmp_path / "torn"
        shutil.copytree(manifest.parent, root)
        _corrupt_file_tail(root / "shard_00001.emb.npy")
        with pytest.raises(ShardIntegrityError):
            DDIScreeningService.from_store(root, context)

    def test_quantized_store_rejected(self, booted, tmp_path):
        warm, _, _, context = booted
        quantized = warm.save_shards(tmp_path / "int8", quantize="int8")
        with pytest.raises(ValueError, match="quantized"):
            DDIScreeningService.from_store(quantized, context)

    def test_wrong_model_fingerprint_rejected(self, booted, tmp_path):
        warm, _, manifest, _ = booted
        other_corpus = _corpus(n=12, seed=99)
        config = HyGNNConfig(parameter=4, embed_dim=12, hidden_dim=12,
                             seed=77)
        model, _, builder = HyGNN.for_corpus(other_corpus, config)
        other = DDIScreeningService(model, builder, other_corpus)
        foreign_context = other.save_serving_context(tmp_path / "foreign")
        with pytest.raises(ValueError):
            DDIScreeningService.from_store(manifest, foreign_context)

    def test_pair_scores_and_registration_still_work(self, booted):
        # Runs last in the class: registration grows both catalogs, so
        # earlier store-vs-service parity tests must not see the append.
        warm, cold, _, _ = booted
        pairs = np.array([[0, 3], [2, warm.index_of("late_1")]])
        np.testing.assert_array_equal(cold.score_pairs(pairs),
                                      warm.score_pairs(pairs))
        # New registrations encode against the adopted frozen context.
        index = cold.register_drug("CCSCC", drug_id="after_boot")
        expected = warm.register_drug("CCSCC", drug_id="after_boot")
        assert index == expected
        np.testing.assert_array_equal(cold.embeddings[index],
                                      warm.embeddings[index])
        assert cold.stats.corpus_encodes == 0


# ---------------------------------------------------------------------------
# Process-pool hardening
# ---------------------------------------------------------------------------
class TestExecutorHardening:
    def _screen_args(self, setup, served):
        _, config, model, _ = setup
        service, manifest = served
        kernel = make_screen_kernel(model.decoder)
        rng = np.random.default_rng(5)
        queries = rng.standard_normal((2, config.embed_dim))
        proj = model.decoder.project_queries(queries, sides=("as_left",))
        return kernel, proj

    def test_killed_worker_rebuilds_pool_bitwise(self, setup, served):
        service, manifest = served
        kernel, proj = self._screen_args(setup, served)
        with ParallelShardExecutor(manifest, num_workers=2) as executor:
            expected = executor.screen(kernel, proj, 2, 5)
            victim = next(iter(executor._pool._processes.values()))
            os.kill(victim.pid, signal.SIGKILL)
            time.sleep(0.1)
            again = executor.screen(kernel, proj, 2, 5)
            assert executor.stats["pool_rebuilds"] == 1
            assert executor.stats["serial_fallbacks"] == 0
        for (idx_a, sc_a), (idx_b, sc_b) in zip(expected, again):
            np.testing.assert_array_equal(idx_a, idx_b)
            np.testing.assert_array_equal(sc_a, sc_b)

    def test_permanently_broken_pool_degrades_to_serial(self, setup, served,
                                                        monkeypatch):
        from concurrent.futures.process import BrokenProcessPool
        service, manifest = served
        kernel, proj = self._screen_args(setup, served)
        serial = ParallelShardExecutor(manifest, num_workers=1)
        with serial:
            expected = serial.screen(kernel, proj, 2, 5)
        executor = ParallelShardExecutor(manifest, num_workers=2)

        class _Broken:
            def map(self, *args, **kwargs):
                raise BrokenProcessPool("worker army deserted")

            def shutdown(self, **kwargs):
                pass

        monkeypatch.setattr(executor, "_ensure_pool", lambda: _Broken())
        degraded = executor.screen(kernel, proj, 2, 5)
        assert executor.stats["serial_fallbacks"] == 1
        assert executor.stats["pool_rebuilds"] == 1
        for (idx_a, sc_a), (idx_b, sc_b) in zip(expected, degraded):
            np.testing.assert_array_equal(idx_a, idx_b)
            np.testing.assert_array_equal(sc_a, sc_b)


# ---------------------------------------------------------------------------
# Gateway failure accounting + deadlines
# ---------------------------------------------------------------------------
class TestGatewayFaults:
    @pytest.fixture
    def service(self, setup):
        corpus, _, model, builder = setup
        return DDIScreeningService(model, builder, corpus)

    def test_gateway_failures_counted_per_failed_request(self, service):
        async def main():
            async with ScreeningGateway(service, max_batch=4,
                                        max_wait_ms=5.0) as gateway:
                return await asyncio.gather(
                    gateway.screen(0, top_k=3),
                    gateway.screen(10_000, top_k=3),   # poison: bad index
                    gateway.screen(1, top_k=3),
                    return_exceptions=True)
        before = service.stats.gateway_failures
        good_a, poison, good_b = asyncio.run(main())
        assert isinstance(poison, IndexError)
        assert not isinstance(good_a, Exception)
        assert not isinstance(good_b, Exception)
        assert service.stats.gateway_failures == before + 1

    def test_deadline_covers_in_flush_execution(self, service, monkeypatch):
        real = service.screen_batch

        def slow_screen_batch(*args, **kwargs):
            time.sleep(0.08)
            return real(*args, **kwargs)

        monkeypatch.setattr(service, "screen_batch", slow_screen_batch)
        before = service.stats.gateway_expirations

        async def main():
            async with ScreeningGateway(service, max_batch=2,
                                        max_wait_ms=0.0) as gateway:
                return await asyncio.gather(
                    gateway.screen(0, top_k=3, timeout_ms=20.0),
                    gateway.screen(1, top_k=3),
                    return_exceptions=True)
        expired, unbounded = asyncio.run(main())
        # The batch was scored promptly after enqueue (queue wait ~0) but
        # scoring itself blew the 20 ms budget: the bounded request must
        # fail, the deadline-free one still gets its (late) answer.
        assert isinstance(expired, DeadlineExceeded)
        assert not isinstance(unbounded, Exception)
        assert service.stats.gateway_expirations == before + 1

    def test_drain_under_failing_service_answers_everything(self, service,
                                                            monkeypatch):
        calls = {"n": 0}

        def broken_screen_batch(*args, **kwargs):
            calls["n"] += 1
            raise RuntimeError("engine on fire")

        monkeypatch.setattr(service, "screen_batch", broken_screen_batch)
        before = service.stats.gateway_failures

        async def main():
            gateway = ScreeningGateway(service, max_batch=4, max_wait_ms=2.0)
            tasks = [asyncio.ensure_future(gateway.screen(i, top_k=3))
                     for i in range(6)]
            await asyncio.sleep(0)      # let everything enqueue
            await gateway.close()       # drain while the service is failing
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(main())
        assert len(results) == 6
        assert all(isinstance(r, RuntimeError) for r in results)
        assert service.stats.gateway_failures == before + 6
        assert calls["n"] >= 6          # group call + per-request isolation
