"""Tests for the out-of-core screening tier: the memory-mapped shard store
(`repro.serving.store`), the multi-process shard executor
(`repro.serving.executor`), their wiring through `DDIScreeningService`
(`save_shards` / `open_shards` / `parallel=`), and the serving-layer
bugfixes that rode along (globally unique cache versions, split
prefilter/exact stats, deterministic exclusion resolution).

The contract under test everywhere: every execution plan — serial
in-memory, serial memory-mapped, multi-process — returns **bitwise**
identical ``(indices, probabilities)``.
"""

import json

import numpy as np
import pytest

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.core.decoder import MLPDecoder, make_screen_kernel
from repro.nn import Tensor
from repro.core.encoder import EncoderContext
from repro.serving import (DDIScreeningService, EmbeddingCache,
                           MappedShardCatalog, ParallelShardExecutor,
                           ShardedEmbeddingCatalog, ShardStore,
                           exact_score_fn)


def _corpus(n=36, seed=11):
    return [r.smiles for r in MoleculeGenerator(seed=seed).generate_corpus(n)]


@pytest.fixture(scope="module", params=["mlp", "dot"])
def setup(request):
    corpus = _corpus()
    config = HyGNNConfig(parameter=4, embed_dim=12, hidden_dim=12, seed=5,
                         decoder=request.param)
    model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
    return corpus, config, model, hypergraph, builder


def _service(setup, **kwargs):
    corpus, _, model, _, builder = setup
    return DDIScreeningService(model, builder, corpus, **kwargs)


def _hits(results):
    return [[(h.index, h.probability) for h in hits] for hits in results]


def _synthetic(seed=0, n=90, d=8):
    rng = np.random.default_rng(seed)
    decoder = MLPDecoder(d, d, np.random.default_rng(seed))
    embeddings = rng.standard_normal((n, d))
    return decoder, embeddings, decoder.candidate_projections(embeddings)


# ---------------------------------------------------------------------------
# shard store format
# ---------------------------------------------------------------------------
class TestShardStore:
    def test_round_trip_metadata_and_bytes(self, tmp_path):
        decoder, emb, proj = _synthetic(n=53)
        manifest = ShardStore.save(tmp_path / "store", emb, proj,
                                   num_shards=4, block_size=17,
                                   fingerprint=("fast", (("w", (2, 3), 1.5),)),
                                   catalog_digest="abc123")
        assert manifest.name == "manifest.json"
        store = ShardStore(manifest)
        assert store.num_drugs == 53
        assert store.embed_dim == emb.shape[1]
        assert store.num_shards == 4
        assert store.block_size == 17
        assert store.fingerprint == ("fast", (("w", (2, 3), 1.5),))
        assert store.catalog_digest == "abc123"
        assert store.projection_names == sorted(proj)
        # Shard row ranges follow the in-memory catalog's default split.
        reference = ShardedEmbeddingCatalog(emb, proj, num_shards=4)
        for opened, expected in zip(
                (store.open_shard(i) for i in range(4)), reference.shards):
            np.testing.assert_array_equal(opened.indices, expected.indices)
            np.testing.assert_array_equal(np.asarray(opened.embeddings),
                                          expected.embeddings)
            for name in proj:
                np.testing.assert_array_equal(
                    np.asarray(opened.projections[name]),
                    expected.projections[name])
        assert store.nbytes() > emb.nbytes  # projections counted too

    def test_open_accepts_directory_or_manifest(self, tmp_path):
        _, emb, proj = _synthetic(n=10)
        ShardStore.save(tmp_path / "s", emb, proj)
        assert ShardStore(tmp_path / "s").num_drugs == 10
        assert ShardStore(tmp_path / "s" / "manifest.json").num_drugs == 10

    def test_shards_are_memory_mapped(self, tmp_path):
        _, emb, proj = _synthetic(n=20)
        store = ShardStore(ShardStore.save(tmp_path / "s", emb, proj,
                                           num_shards=2))
        shard = store.open_shard(0)
        assert isinstance(shard.embeddings, np.memmap)
        assert all(isinstance(m, np.memmap)
                   for m in shard.projections.values())
        assert store.open_shard(0) is shard  # memoized

    def test_alias_projection_not_written_twice(self, tmp_path):
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((30, 6))
        manifest = ShardStore.save(tmp_path / "dot", emb, {"emb": emb},
                                   num_shards=3)
        spec = json.loads(manifest.read_text())
        assert spec["aliases"] == ["emb"]
        assert all(not s["projections"] for s in spec["shards"])
        shard = ShardStore(manifest).open_shard(1)
        assert shard.projections["emb"] is shard.embeddings

    def test_rejects_bad_inputs(self, tmp_path):
        _, emb, proj = _synthetic(n=8)
        with pytest.raises(ValueError, match="non-empty"):
            ShardStore.save(tmp_path / "a", np.zeros((0, 4)))
        with pytest.raises(ValueError, match="num_shards"):
            ShardStore.save(tmp_path / "b", emb, num_shards=0)
        with pytest.raises(ValueError, match="projection"):
            ShardStore.save(tmp_path / "c", emb, {"p": emb[:3]})
        with pytest.raises(ValueError, match="file-name"):
            ShardStore.save(tmp_path / "d", emb, {"../evil": emb})

    def test_rejects_foreign_manifest(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="shard-store manifest"):
            ShardStore(path)
        path.write_text(json.dumps(["not", "a", "manifest"]))
        with pytest.raises(ValueError, match="shard-store manifest"):
            ShardStore(path)

    def test_malformed_manifest_raises_value_error(self, tmp_path):
        """Every corruption mode must surface as ValueError so best-effort
        openers (open_shards/load_cache reattach) can swallow it."""
        from repro.serving.store import STORE_FORMAT
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"format": STORE_FORMAT}))  # keys missing
        with pytest.raises(ValueError, match="missing manifest keys"):
            ShardStore(path)
        path.write_text(json.dumps({
            "format": STORE_FORMAT, "num_drugs": "not-a-number",
            "embed_dim": 4, "block_size": 8, "projections": [],
            "aliases": [], "shards": []}))
        with pytest.raises(ValueError, match="malformed"):
            ShardStore(path)

    def test_more_shards_than_rows_skips_empties(self, tmp_path):
        _, emb, proj = _synthetic(n=3)
        store = ShardStore(ShardStore.save(tmp_path / "s", emb, proj,
                                           num_shards=10))
        assert store.num_shards == 3
        assert store.num_drugs == 3


# ---------------------------------------------------------------------------
# memory-mapped catalog: bitwise parity with the in-memory engine
# ---------------------------------------------------------------------------
class TestMappedCatalog:
    def test_screen_bitwise_matches_in_memory(self, tmp_path):
        decoder, emb, proj = _synthetic(seed=3, n=120)
        kernel = make_screen_kernel(decoder)
        queries = emb[[4, 77]]
        query_proj = decoder.project_queries(queries, sides=("as_left",))
        score = exact_score_fn(kernel, query_proj)
        reference = ShardedEmbeddingCatalog(emb, proj, num_shards=3,
                                            block_size=13).screen(score, 2, 9)
        manifest = ShardStore.save(tmp_path / "s", emb, proj, num_shards=3)
        for block_size in (5, 13, 1000):
            mapped = ShardStore(manifest).catalog(block_size)
            assert isinstance(mapped, MappedShardCatalog)
            results = mapped.screen(score, 2, 9)
            for (ri, rs), (mi, ms) in zip(reference, results):
                np.testing.assert_array_equal(mi, ri)
                np.testing.assert_array_equal(ms, rs)

    def test_rows_gather_matches_in_memory(self, tmp_path):
        decoder, emb, proj = _synthetic(seed=7, n=64)
        manifest = ShardStore.save(tmp_path / "s", emb, proj, num_shards=5)
        mapped = ShardStore(manifest).catalog(8)
        reference = ShardedEmbeddingCatalog(emb, proj)
        indices = np.array([63, 0, 17, 17, 40, 2])  # cross-shard, repeats
        got_emb, got_proj = mapped.rows(indices)
        want_emb, want_proj = reference.rows(indices)
        np.testing.assert_array_equal(got_emb, want_emb)
        for name in want_proj:
            np.testing.assert_array_equal(got_proj[name], want_proj[name])
        with pytest.raises(IndexError):
            mapped.rows(np.array([64]))

    def test_no_global_projection_matrix(self, tmp_path):
        _, emb, proj = _synthetic(n=12)
        mapped = ShardStore(ShardStore.save(tmp_path / "s", emb,
                                            proj)).catalog(4)
        with pytest.raises(RuntimeError, match="out-of-core"):
            mapped.projections


# ---------------------------------------------------------------------------
# service wiring: save_shards / open_shards / parallel screens
# ---------------------------------------------------------------------------
class TestServiceStore:
    def test_mmap_round_trip_bitwise_parity(self, setup, tmp_path):
        service = _service(setup, block_size=7, num_shards=2)
        queries = [0, 9, "drug_17"]
        reference = _hits(service.screen_batch(queries, top_k=6,
                                               exclude=(3,)))
        manifest = service.save_shards(tmp_path / "store", num_shards=4)
        assert service.open_shards(manifest)
        assert service._store is not None
        mapped = _hits(service.screen_batch(queries, top_k=6, exclude=(3,),
                                            parallel=False))
        assert mapped == reference
        single = service.screen(9, top_k=6, exclude=(3,))
        assert [(h.index, h.probability) for h in single] == reference[1]

    def test_parallel_screens_bitwise_match_serial(self, setup, tmp_path):
        service = _service(setup, block_size=5)
        queries = [1, 4, 20]
        reference = _hits(service.screen_batch(queries, top_k=8,
                                               symmetric=True))
        service.save_shards(tmp_path / "store", num_shards=3)
        assert service.open_shards(tmp_path / "store", num_workers=2)
        try:
            parallel = _hits(service.screen_batch(queries, top_k=8,
                                                  symmetric=True,
                                                  parallel=True))
            assert parallel == reference
            assert service.stats.parallel_screens == len(queries)
        finally:
            service.close()

    def test_parallel_demanded_without_store_raises(self, setup):
        service = _service(setup)
        with pytest.raises(RuntimeError, match="shard store"):
            service.screen(0, top_k=3, parallel=True)

    def test_open_shards_rejects_mismatches(self, setup, tmp_path):
        corpus, _, model, _, builder = setup
        service = _service(setup)
        manifest = service.save_shards(tmp_path / "store")
        # Different catalog -> digest mismatch.
        other = DDIScreeningService(model, builder, corpus[:-1])
        assert not other.open_shards(manifest)
        with pytest.raises(ValueError, match="different drug catalog"):
            other.open_shards(manifest, strict=True)
        # Different weights -> fingerprint mismatch.
        original = model.encoder.node_embedding.data.copy()
        try:
            model.encoder.node_embedding.data += 0.25
            fresh = _service(setup)
            assert not fresh.open_shards(manifest)
            with pytest.raises(ValueError, match="fingerprint"):
                fresh.open_shards(manifest, strict=True)
        finally:
            model.encoder.node_embedding.data = original
        # Garbage path -> False unless strict.
        assert not service.open_shards(tmp_path / "nope")
        with pytest.raises(OSError):
            service.open_shards(tmp_path / "nope", strict=True)
        # Truncated manifest -> False unless strict (best-effort contract).
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text(
            json.dumps({"format": "repro.serving.shard-store/v1"}))
        assert not service.open_shards(bad)
        with pytest.raises(ValueError, match="missing manifest keys"):
            service.open_shards(bad, strict=True)

    def test_open_shards_releases_in_memory_projections(self, setup,
                                                        tmp_path):
        """Attaching the store must drop the redundant in-RAM candidate
        precompute (the dominant working-set share) — that is what makes
        the service tier actually out-of-core — without detaching the
        store it just attached."""
        service = _service(setup, num_shards=2)
        reference = _hits([service.screen(1, top_k=5)])[0]
        service.save_shards(tmp_path / "store")
        assert service._cache.projections is not None
        assert service.open_shards(tmp_path / "store")
        assert service._cache.projections is None
        hits = _hits([service.screen(1, top_k=5)])[0]
        assert service._store is not None  # still attached after screening
        assert hits == reference
        # Detach (weights moved) -> lazy in-memory recompute still works.
        service.invalidate()
        hits = _hits([service.screen(1, top_k=5)])[0]
        assert service._store is None
        assert hits == reference

    def test_registration_appends_through_to_store(self, setup, tmp_path):
        """A registration lands in the attached store as a committed
        append segment (the living-catalog contract) instead of
        detaching it."""
        corpus, _, model, _, _ = setup
        service = _service(setup, num_shards=2)
        service.save_shards(tmp_path / "store")
        assert service.open_shards(tmp_path / "store")
        before_version = service.catalog_version
        service.screen(0, top_k=3)
        index = service.register_drug(corpus[5], drug_id="late-twin")
        hits = service.screen(5, top_k=service.num_drugs)
        assert index in [h.index for h in hits]  # sees the new drug
        assert service._store is not None  # store followed the catalog
        assert service.catalog_version == before_version + 1
        assert service._store.num_drugs == service.num_drugs
        assert service.stats.appends_committed == 1

    def test_weight_update_detaches_stale_store(self, setup, tmp_path):
        corpus, _, model, _, _ = setup
        service = _service(setup)
        service.save_shards(tmp_path / "store")
        assert service.open_shards(tmp_path / "store")
        before = service.screen(2, top_k=4)
        original = model.encoder.node_embedding.data.copy()
        try:
            model.encoder.node_embedding.data += 0.1
            after = service.screen(2, top_k=4)
            assert service._store is None
            assert ([h.probability for h in before]
                    != [h.probability for h in after])
        finally:
            model.encoder.node_embedding.data = original

    def test_cache_snapshot_round_trips_manifest(self, setup, tmp_path):
        service = _service(setup, block_size=9)
        expected = _hits([service.screen(3, top_k=5)])[0]
        service.save_shards(tmp_path / "store", num_shards=3)
        snapshot = service.save_cache(tmp_path / "cache.npz")

        warm = _service(setup)
        assert warm.load_cache(snapshot)
        # The manifest rode along and the store reattached automatically.
        assert warm._cache.shard_manifest is not None
        assert warm._store is not None
        hits = _hits([warm.screen(3, top_k=5, parallel=False)])[0]
        assert hits == expected
        assert warm.stats.corpus_encodes == 0


# ---------------------------------------------------------------------------
# executor over a synthetic store (no model in the loop)
# ---------------------------------------------------------------------------
class TestExecutor:
    def test_executor_bitwise_matches_serial(self, tmp_path):
        decoder, emb, proj = _synthetic(seed=9, n=150, d=10)
        kernel = make_screen_kernel(decoder)
        query_proj = decoder.project_queries(emb[[3, 99]],
                                             sides=("as_left",))
        manifest = ShardStore.save(tmp_path / "s", emb, proj, num_shards=4,
                                   block_size=16)
        catalog = ShardStore(manifest).catalog()
        serial = catalog.screen(exact_score_fn(kernel, query_proj), 2, 11,
                                exclude=np.array([3, 99]))
        with ParallelShardExecutor(manifest, num_workers=2) as executor:
            parallel = executor.screen(kernel, query_proj, 2, 11,
                                       exclude=np.array([3, 99]))
        for (si, ss), (pi, ps) in zip(serial, parallel):
            np.testing.assert_array_equal(pi, si)
            np.testing.assert_array_equal(ps, ss)

    def test_executor_reusable_after_close(self, tmp_path):
        decoder, emb, proj = _synthetic(seed=2, n=40, d=6)
        kernel = make_screen_kernel(decoder)
        query_proj = decoder.project_queries(emb[[0]], sides=("as_left",))
        manifest = ShardStore.save(tmp_path / "s", emb, proj, num_shards=2)
        executor = ParallelShardExecutor(manifest, num_workers=2)
        first = executor.screen(kernel, query_proj, 1, 5)
        executor.close()
        second = executor.screen(kernel, query_proj, 1, 5)  # new pool
        executor.close()
        np.testing.assert_array_equal(first[0][0], second[0][0])

    def test_bad_worker_count_rejected(self, tmp_path):
        _, emb, proj = _synthetic(n=10)
        manifest = ShardStore.save(tmp_path / "s", emb, proj)
        with pytest.raises(ValueError, match="num_workers"):
            ParallelShardExecutor(manifest, num_workers=0)

    def test_kernels_pickle_weight_free(self, setup):
        import pickle
        _, _, model, _, _ = setup
        kernel = make_screen_kernel(model.decoder)
        payload = pickle.dumps(kernel)
        assert len(payload) < 200  # no weights, no scratch
        clone = pickle.loads(payload)
        assert type(clone) is type(kernel)


# ---------------------------------------------------------------------------
# satellite regressions
# ---------------------------------------------------------------------------
class TestCacheVersionUniqueness:
    """The `_catalog` memoization key can never collide across caches."""

    def _cache_with(self, emb):
        cache = EmbeddingCache()
        context = EncoderContext(layer_node_feats=(Tensor(np.zeros((2, 2))),))
        cache.install(("fast", ()), context, emb)
        return cache

    def test_versions_globally_unique_across_instances(self):
        c1 = self._cache_with(np.zeros((2, 3)))
        c2 = self._cache_with(np.zeros((2, 3)))
        assert c1.version != c2.version
        seen = {c1.version, c2.version}
        c1.drop()
        assert c1.version not in seen

    def test_loaded_snapshot_gets_fresh_version(self, tmp_path):
        cache = self._cache_with(np.ones((3, 2)))
        path = cache.save(tmp_path / "c.npz")
        loaded = EmbeddingCache.load(path)
        assert loaded.version != 0
        assert loaded.version != cache.version

    def test_snapshot_over_warm_service_never_serves_stale_engine(
            self, setup, tmp_path):
        """Regression: a freshly loaded cache restarts its local state, and
        the old key scheme (`version += 1` from 0) could collide with the
        warm service's memoized engine — serving embeddings the snapshot
        replaced.  Globally unique versions make collision impossible."""
        service = _service(setup, block_size=6, num_shards=2)
        expected = _hits([service.screen(0, top_k=4)])[0]
        engine_before = service._catalog_engine
        assert engine_before is not None
        # Emulate a pre-projection-era snapshot: the loaded cache will bump
        # its version lazily on the first screen, exactly the sequence that
        # used to recreate the old engine's key.
        service._cache.projections = None
        path = service._cache.save(tmp_path / "snap.npz",
                                   catalog_digest=service._catalog_digest())
        assert service.load_cache(path)
        hits = _hits([service.screen(0, top_k=4)])[0]
        assert service._catalog_engine is not engine_before
        assert (service._catalog_engine._embeddings
                is service._cache.embeddings)
        assert hits == expected


class TestApproxStats:
    def test_prefilter_and_rescore_counted_separately(self, setup):
        _, config, *_ = setup
        if config.decoder != "dot":
            pytest.skip("approximate mode is dot-decoder only")
        service = _service(setup)
        service.screen(0, top_k=3)  # warm the cache
        n = service.num_drugs
        base_scored = service.stats.pairs_scored
        base_prefilter = service.stats.prefilter_pairs
        service.screen(0, top_k=3, approx=True, approx_oversample=4)
        # The whole catalog went through the prefilter once ...
        assert service.stats.prefilter_pairs - base_prefilter == n
        # ... but only the shortlist (top_k * oversample, minus nothing
        # here) was exact-scored — not num_drugs.
        rescored = service.stats.pairs_scored - base_scored
        assert rescored == 12
        assert rescored < n

    def test_exact_mode_counts_eligible_pairs(self, setup):
        service = _service(setup)
        service.screen(0, top_k=3)
        base = service.stats.pairs_scored
        # The query itself is always excluded, so one screen charges
        # num_drugs - 1 exact evaluations, not num_drugs.
        service.screen(1, top_k=3)
        assert service.stats.pairs_scored - base == service.num_drugs - 1
        assert service.stats.prefilter_pairs == 0


class TestResolveExcludeDeterminism:
    def test_resolved_indices_sorted_and_unique(self, setup):
        service = _service(setup)
        resolved = service._resolve_exclude(
            ("drug_7", 3, "drug_1", 19, 3, "drug_19"))
        np.testing.assert_array_equal(resolved, [1, 3, 7, 19])
        again = service._resolve_exclude(
            (19, "drug_3", 7, "drug_19", 1, "drug_3"))
        np.testing.assert_array_equal(again, [1, 3, 7, 19])
