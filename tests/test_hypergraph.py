"""Tests for the hypergraph substrate and Algorithm 1 construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem import MoleculeGenerator
from repro.hypergraph import (DrugHypergraphBuilder, Hypergraph,
                              build_drug_hypergraph)


@pytest.fixture(scope="module")
def corpus():
    return [r.smiles for r in MoleculeGenerator(seed=21).generate_corpus(40)]


class TestHypergraph:
    def test_basic_construction(self):
        hg = Hypergraph(3, 2, node_ids=[0, 1, 2, 0], edge_ids=[0, 0, 1, 1])
        assert hg.num_nodes == 3 and hg.num_edges == 2
        assert hg.num_incidences == 4

    def test_deduplicates_incidences(self):
        hg = Hypergraph(2, 1, node_ids=[0, 0, 1], edge_ids=[0, 0, 0])
        assert hg.num_incidences == 2

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Hypergraph(2, 2, node_ids=[5], edge_ids=[0])
        with pytest.raises(ValueError):
            Hypergraph(2, 2, node_ids=[0], edge_ids=[5])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Hypergraph(2, 2, node_ids=[0, 1], edge_ids=[0])

    def test_incidence_matrix_matches_paper_definition(self):
        # H[i, j] = 1 iff node i in hyperedge j (Sec. III-A).
        hg = Hypergraph(3, 2, node_ids=[0, 1, 1, 2], edge_ids=[0, 0, 1, 1])
        H = hg.incidence_matrix().toarray()
        np.testing.assert_array_equal(H, [[1, 0], [1, 1], [0, 1]])

    def test_degrees(self):
        hg = Hypergraph(3, 2, node_ids=[0, 1, 1, 2], edge_ids=[0, 0, 1, 1])
        np.testing.assert_array_equal(hg.node_degrees(), [1, 2, 1])
        np.testing.assert_array_equal(hg.edge_degrees(), [2, 2])

    def test_hyperedges_are_degree_free(self):
        """A hyperedge may contain any number of nodes (Sec. III-A)."""
        hg = Hypergraph(5, 2, node_ids=[0, 1, 2, 3, 4, 0],
                        edge_ids=[0, 0, 0, 0, 0, 1])
        assert hg.edge_degrees().tolist() == [5, 1]

    def test_nodes_of_edge_and_edges_of_node(self):
        hg = Hypergraph(3, 2, node_ids=[0, 1, 1, 2], edge_ids=[0, 0, 1, 1])
        assert sorted(hg.nodes_of_edge(0)) == [0, 1]
        assert sorted(hg.edges_of_node(1)) == [0, 1]

    def test_membership_rows_transpose(self):
        hg = Hypergraph(3, 2, node_ids=[0, 1, 1, 2], edge_ids=[0, 0, 1, 1])
        HT = hg.edge_membership_rows().toarray()
        np.testing.assert_array_equal(HT, hg.incidence_matrix().toarray().T)

    def test_statistics_keys(self):
        hg = Hypergraph(3, 2, node_ids=[0, 1], edge_ids=[0, 1])
        stats = hg.statistics()
        assert stats["num_nodes"] == 3
        assert stats["mean_edge_degree"] == 1.0

    def test_label_length_validation(self):
        with pytest.raises(ValueError):
            Hypergraph(2, 1, node_ids=[0], edge_ids=[0], node_labels=["a"])


class TestBuilder:
    def test_fit_transform_shapes(self, corpus):
        hg, builder = build_drug_hypergraph(corpus, method="kmer", parameter=4)
        assert hg.num_edges == len(corpus)
        assert hg.num_nodes == builder.num_nodes

    def test_each_drug_has_substructures(self, corpus):
        hg, _ = build_drug_hypergraph(corpus, method="kmer", parameter=4)
        assert (hg.edge_degrees() > 0).all()

    def test_unique_substructures_per_drug(self, corpus):
        """Algorithm 1 uses each drug's *set* of substructures."""
        builder = DrugHypergraphBuilder(method="kmer", parameter=3).fit(corpus)
        hg = builder.transform(corpus)
        # Incidences are deduplicated, so edge degree equals set size.
        token_sets = builder.drug_token_sets(corpus)
        np.testing.assert_array_equal(hg.edge_degrees(),
                                      [len(s) for s in token_sets])

    def test_espf_method(self, corpus):
        hg, builder = build_drug_hypergraph(corpus, method="espf", parameter=5)
        assert hg.num_nodes > 0
        assert hg.num_edges == len(corpus)

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            DrugHypergraphBuilder(method="morgan")

    def test_invalid_parameter(self):
        with pytest.raises(ValueError):
            DrugHypergraphBuilder(method="kmer", parameter=0)

    def test_requires_fit(self):
        builder = DrugHypergraphBuilder(method="kmer", parameter=3)
        with pytest.raises(RuntimeError):
            builder.transform(["CCO"])
        with pytest.raises(RuntimeError):
            _ = builder.num_nodes

    def test_transform_new_drugs_drops_unknown_tokens(self, corpus):
        """Cold-start path: unseen substructures are ignored (inductive)."""
        builder = DrugHypergraphBuilder(method="kmer", parameter=4).fit(corpus[:30])
        hg = builder.transform(corpus[30:])
        assert hg.num_nodes == builder.num_nodes  # vocab frozen
        assert hg.num_edges == len(corpus) - 30

    def test_node_labels_are_substructures(self, corpus):
        hg, builder = build_drug_hypergraph(corpus, method="kmer", parameter=4)
        vocab = builder.vocabulary
        for token, index in vocab.items():
            assert hg.node_labels[index] == token

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            DrugHypergraphBuilder().fit([])

    def test_incidence_entry_iff_substring(self, corpus):
        """H[i, j] = 1 exactly when substructure i occurs in drug j."""
        builder = DrugHypergraphBuilder(method="kmer", parameter=5).fit(corpus)
        hg = builder.transform(corpus)
        H = hg.incidence_matrix().toarray()
        vocab = builder.vocabulary
        for token, node in list(vocab.items())[:40]:
            for drug_index, smiles in enumerate(corpus[:10]):
                assert H[node, drug_index] == (1 if token in smiles else 0)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=8))
def test_property_kmer_hypergraph_consistency(k):
    corpus = [r.smiles for r in MoleculeGenerator(seed=k + 50).generate_corpus(12)]
    hg, builder = build_drug_hypergraph(corpus, method="kmer", parameter=k)
    # Total incidences equal the sum of per-drug unique-token counts.
    token_sets = builder.drug_token_sets(corpus)
    assert hg.num_incidences == sum(len(s) for s in token_sets)
