"""Tests for random walks, skip-gram, and the embedding baselines."""

import numpy as np
import pytest

from repro.baselines import (SkipGramModel, WalkConfig, deepwalk_embeddings,
                             node2vec_embeddings, node2vec_walks,
                             skipgram_pairs, uniform_random_walks)
from repro.graphs import Graph


@pytest.fixture
def path_graph():
    # 0-1-2-3-4 path.
    return Graph(5, np.array([[0, 1], [1, 2], [2, 3], [3, 4]]))


@pytest.fixture
def two_cliques():
    """Two 4-cliques bridged by one edge — clear community structure."""
    edges = []
    for block in (range(4), range(4, 8)):
        block = list(block)
        for i_pos, i in enumerate(block):
            for j in block[i_pos + 1:]:
                edges.append([i, j])
    edges.append([3, 4])
    return Graph(8, np.array(edges))


class TestWalks:
    def test_walk_count_and_length(self, path_graph):
        walks = uniform_random_walks(path_graph, num_walks=3, walk_length=10,
                                     seed=0)
        assert len(walks) == 3 * 5
        assert all(len(w) == 10 for w in walks)

    def test_walks_follow_edges(self, path_graph):
        walks = uniform_random_walks(path_graph, 2, 8, seed=1)
        for walk in walks:
            for a, b in zip(walk, walk[1:]):
                assert path_graph.has_edge(int(a), int(b))

    def test_isolated_nodes_skipped(self):
        g = Graph(4, np.array([[0, 1]]))
        walks = uniform_random_walks(g, 1, 5, seed=0)
        starts = {int(w[0]) for w in walks}
        assert starts <= {0, 1}

    def test_invalid_parameters(self, path_graph):
        with pytest.raises(ValueError):
            uniform_random_walks(path_graph, 0, 5)
        with pytest.raises(ValueError):
            node2vec_walks(path_graph, 1, 5, p=0.0)

    def test_node2vec_walks_follow_edges(self, path_graph):
        walks = node2vec_walks(path_graph, 2, 8, p=0.5, q=2.0, seed=2)
        for walk in walks:
            for a, b in zip(walk, walk[1:]):
                assert path_graph.has_edge(int(a), int(b))

    def test_node2vec_low_p_encourages_backtracking(self):
        # On a path graph, p << 1 makes returning to the previous node
        # much more likely than with p >> 1.
        g = Graph(3, np.array([[0, 1], [1, 2]]))

        def backtrack_rate(p):
            walks = node2vec_walks(g, 30, 12, p=p, q=1.0, seed=3)
            back = total = 0
            for walk in walks:
                for i in range(2, len(walk)):
                    total += 1
                    back += walk[i] == walk[i - 2]
            return back / total

        assert backtrack_rate(0.05) > backtrack_rate(20.0) + 0.1

    def test_deterministic(self, path_graph):
        a = uniform_random_walks(path_graph, 2, 6, seed=9)
        b = uniform_random_walks(path_graph, 2, 6, seed=9)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestSkipgramPairs:
    def test_window_one(self):
        pairs = skipgram_pairs([np.array([1, 2, 3])], window=1, seed=0)
        as_set = {tuple(p) for p in pairs}
        assert as_set == {(1, 2), (2, 1), (2, 3), (3, 2)}

    def test_window_two_includes_skips(self):
        pairs = skipgram_pairs([np.array([1, 2, 3])], window=2, seed=0)
        as_set = {tuple(p) for p in pairs}
        assert (1, 3) in as_set and (3, 1) in as_set

    def test_empty_walks(self):
        assert skipgram_pairs([], window=2).shape == (0, 2)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            skipgram_pairs([np.array([1, 2])], window=0)


class TestSkipGramModel:
    def test_embedding_shape(self):
        model = SkipGramModel(10, 8, seed=0)
        assert model.embeddings.shape == (10, 8)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SkipGramModel(0, 8)

    def test_training_brings_cooccurring_nodes_closer(self, two_cliques):
        walks = uniform_random_walks(two_cliques, 20, 20, seed=0)
        pairs = skipgram_pairs(walks, window=3, seed=0)
        model = SkipGramModel(8, 16, seed=0).train(pairs, epochs=3)
        emb = model.embeddings
        emb = emb / (np.linalg.norm(emb, axis=1, keepdims=True) + 1e-12)
        intra = np.mean([emb[0] @ emb[j] for j in (1, 2, 3)])
        inter = np.mean([emb[0] @ emb[j] for j in (5, 6, 7)])
        assert intra > inter

    def test_empty_pairs_noop(self):
        model = SkipGramModel(5, 4, seed=0)
        before = model.embeddings.copy()
        model.train(np.empty((0, 2), dtype=np.int64))
        np.testing.assert_array_equal(before, model.embeddings)


class TestEmbeddingBaselines:
    def test_deepwalk_shapes(self, two_cliques):
        config = WalkConfig(num_walks=3, walk_length=15, dim=12, epochs=1)
        emb = deepwalk_embeddings(two_cliques, config)
        assert emb.shape == (8, 12)

    def test_node2vec_shapes(self, two_cliques):
        config = WalkConfig(num_walks=3, walk_length=15, dim=12, epochs=1)
        emb = node2vec_embeddings(two_cliques, config)
        assert emb.shape == (8, 12)

    def test_community_structure_recovered(self, two_cliques):
        config = WalkConfig(num_walks=15, walk_length=20, dim=16, epochs=3,
                            learning_rate=0.05)
        emb = deepwalk_embeddings(two_cliques, config)
        # Centre before cosine: SGNS embeddings share a dominant mean
        # direction that masks community geometry.
        emb = emb - emb.mean(axis=0)
        emb = emb / (np.linalg.norm(emb, axis=1, keepdims=True) + 1e-12)
        intra = np.mean([emb[i] @ emb[j] for i in range(4)
                         for j in range(4) if i != j])
        inter = np.mean([emb[i] @ emb[j] for i in range(4)
                         for j in range(4, 8)])
        assert intra > inter + 0.02
