"""Property-based invariant tests for the hypergraph substrate and the
segment kernels behind HyGNN's attention (randomized shapes via hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph
from repro.nn import SegmentPartition, Tensor
from repro.nn import functional as F

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

incidence_lists = st.integers(min_value=1, max_value=9).flatmap(
    lambda num_nodes: st.integers(min_value=1, max_value=9).flatmap(
        lambda num_edges: st.lists(
            st.tuples(st.integers(0, num_nodes - 1),
                      st.integers(0, num_edges - 1)),
            min_size=0, max_size=40,
        ).map(lambda pairs: (num_nodes, num_edges, pairs))))


def _build(num_nodes, num_edges, pairs):
    node_ids = [p[0] for p in pairs]
    edge_ids = [p[1] for p in pairs]
    return Hypergraph(num_nodes, num_edges, node_ids=node_ids,
                      edge_ids=edge_ids)


segment_cases = st.integers(min_value=1, max_value=7).flatmap(
    lambda num_segments: st.tuples(
        st.just(num_segments),
        st.lists(st.integers(0, num_segments - 1), min_size=0, max_size=30),
        st.integers(min_value=1, max_value=5),   # feature dim
        st.integers(min_value=0, max_value=2 ** 31 - 1)))


# ---------------------------------------------------------------------------
# Hypergraph invariants
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(incidence_lists)
def test_construction_is_order_invariant(case):
    """Dedup/sort determinism: input permutation never changes the result."""
    num_nodes, num_edges, pairs = case
    hg = _build(num_nodes, num_edges, pairs)
    shuffled = list(pairs)
    np.random.default_rng(0).shuffle(shuffled)
    hg2 = _build(num_nodes, num_edges, shuffled)
    np.testing.assert_array_equal(hg.node_ids, hg2.node_ids)
    np.testing.assert_array_equal(hg.edge_ids, hg2.edge_ids)


@settings(max_examples=60, deadline=None)
@given(incidence_lists)
def test_incidences_sorted_and_unique(case):
    num_nodes, num_edges, pairs = case
    hg = _build(num_nodes, num_edges, pairs)
    stored = list(zip(hg.edge_ids.tolist(), hg.node_ids.tolist()))
    assert stored == sorted(set(stored))  # edge-major, deduplicated
    assert hg.num_incidences == len(set(pairs))


@settings(max_examples=60, deadline=None)
@given(incidence_lists)
def test_degree_sums_equal_num_incidences(case):
    num_nodes, num_edges, pairs = case
    hg = _build(num_nodes, num_edges, pairs)
    assert hg.node_degrees().sum() == hg.num_incidences
    assert hg.edge_degrees().sum() == hg.num_incidences


@settings(max_examples=60, deadline=None)
@given(incidence_lists)
def test_incidence_matrix_round_trip(case):
    """H's nonzeros rebuild the exact same hypergraph."""
    num_nodes, num_edges, pairs = case
    hg = _build(num_nodes, num_edges, pairs)
    rows, cols = hg.incidence_matrix().nonzero()
    rebuilt = Hypergraph(num_nodes, num_edges, node_ids=rows, edge_ids=cols)
    np.testing.assert_array_equal(hg.node_ids, rebuilt.node_ids)
    np.testing.assert_array_equal(hg.edge_ids, rebuilt.edge_ids)


@settings(max_examples=60, deadline=None)
@given(incidence_lists)
def test_csr_lookups_match_boolean_scans(case):
    """The cached-CSR fast path serves exactly what a full scan would."""
    num_nodes, num_edges, pairs = case
    hg = _build(num_nodes, num_edges, pairs)
    for edge in range(num_edges):
        reference = np.sort(hg.node_ids[hg.edge_ids == edge])
        np.testing.assert_array_equal(np.sort(hg.nodes_of_edge(edge)),
                                      reference)
    for node in range(num_nodes):
        reference = np.sort(hg.edge_ids[hg.node_ids == node])
        np.testing.assert_array_equal(np.sort(hg.edges_of_node(node)),
                                      reference)


@settings(max_examples=30, deadline=None)
@given(incidence_lists)
def test_partitions_tile_the_incidence_list(case):
    num_nodes, num_edges, pairs = case
    hg = _build(num_nodes, num_edges, pairs)
    for partition, ids in ((hg.edge_partition, hg.edge_ids),
                           (hg.node_partition, hg.node_ids)):
        assert partition.counts.sum() == hg.num_incidences
        gathered = partition.gather(ids)
        assert np.all(np.diff(gathered) >= 0)  # grouped contiguously


# ---------------------------------------------------------------------------
# Segment kernel invariants
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(segment_cases)
def test_segment_softmax_sums_to_one(case):
    num_segments, ids, _, seed = case
    ids = np.array(ids, dtype=np.int64)
    scores = Tensor(np.random.default_rng(seed).normal(size=ids.size) * 5)
    partition = SegmentPartition(ids, num_segments)
    for part in (None, partition):
        out = F.segment_softmax(scores, ids, num_segments,
                                partition=part).numpy()
        for segment in range(num_segments):
            mask = ids == segment
            if mask.any():
                assert out[mask].sum() == pytest.approx(1.0)
        assert np.all(out > 0) if ids.size else True


@settings(max_examples=60, deadline=None)
@given(segment_cases)
def test_segment_mean_of_constant_segment_is_constant(case):
    num_segments, ids, dim, seed = case
    ids = np.array(ids, dtype=np.int64)
    rng = np.random.default_rng(seed)
    constants = rng.normal(size=(num_segments, dim))
    x = Tensor(constants[ids] if ids.size else np.zeros((0, dim)))
    partition = SegmentPartition(ids, num_segments)
    for part in (None, partition):
        out = F.segment_mean(x, ids, num_segments, partition=part).numpy()
        for segment in range(num_segments):
            if (ids == segment).any():
                np.testing.assert_allclose(out[segment], constants[segment])
            else:
                np.testing.assert_array_equal(out[segment],
                                              np.zeros(dim))


@settings(max_examples=60, deadline=None)
@given(segment_cases)
def test_partitioned_segment_ops_match_naive(case):
    """The reduceat fast path matches the add.at scatter path to round-off
    (reduceat may sum pairwise, so the last bits can differ)."""
    num_segments, ids, dim, seed = case
    ids = np.array(ids, dtype=np.int64)
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(ids.size, dim)))
    scores = Tensor(rng.normal(size=ids.size))
    partition = SegmentPartition(ids, num_segments)
    np.testing.assert_allclose(
        F.segment_sum(x, ids, num_segments).numpy(),
        F.segment_sum(x, ids, num_segments, partition=partition).numpy(),
        rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(
        F.segment_mean(x, ids, num_segments).numpy(),
        F.segment_mean(x, ids, num_segments, partition=partition).numpy(),
        rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(
        F.segment_softmax(scores, ids, num_segments).numpy(),
        F.segment_softmax(scores, ids, num_segments,
                          partition=partition).numpy(),
        rtol=1e-12, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(segment_cases)
def test_segment_sum_matches_dense_reference(case):
    num_segments, ids, dim, seed = case
    ids = np.array(ids, dtype=np.int64)
    x = np.random.default_rng(seed).normal(size=(ids.size, dim))
    partition = SegmentPartition(ids, num_segments)
    out = F.segment_sum(Tensor(x), ids, num_segments,
                        partition=partition).numpy()
    reference = np.zeros((num_segments, dim))
    for row, segment in zip(x, ids):
        reference[segment] += row
    np.testing.assert_allclose(out, reference, rtol=0, atol=1e-12)


def test_partition_rejects_mismatched_ids():
    ids = np.array([0, 1, 1, 2])
    partition = SegmentPartition(ids, 3)
    with pytest.raises(ValueError):
        F.segment_sum(Tensor(np.ones((4, 2))), ids, 4, partition=partition)
    with pytest.raises(ValueError):
        F.segment_sum(Tensor(np.ones((3, 2))), ids[:3], 3,
                      partition=partition)


def test_partition_identity_order_for_sorted_ids():
    partition = SegmentPartition(np.array([0, 0, 1, 2, 2]), 3)
    assert partition.order is None  # sorted input needs no gather
    shuffled = SegmentPartition(np.array([2, 0, 1, 0, 2]), 3)
    assert shuffled.order is not None


# ---------------------------------------------------------------------------
# Fused attention-kernel invariants
# ---------------------------------------------------------------------------

fused_cases = st.tuples(
    incidence_lists,
    st.integers(min_value=1, max_value=4),       # feature dim
    st.integers(min_value=1, max_value=32),      # block rows
    st.integers(min_value=0, max_value=2 ** 31 - 1))


@settings(max_examples=60, deadline=None)
@given(fused_cases)
def test_fused_kernels_bitwise_match_unfused(case):
    """incidence_scores / segment_attend equal the unfused gather/mul/sum
    composition *bitwise* over arbitrary incidence structures (empty
    segments included) and any block size — the contract that keeps fused
    encoder outputs identical to the pre-fusion encoder."""
    (num_nodes, num_edges, pairs), dim, block_rows, seed = case
    hg = _build(num_nodes, num_edges, pairs)
    node_ids, edge_ids = hg.node_ids, hg.edge_ids
    rng = np.random.default_rng(seed)
    keys = Tensor(rng.normal(size=(num_edges, dim)))
    queries = Tensor(rng.normal(size=(num_nodes, dim)))
    att = Tensor(rng.random(size=node_ids.size))
    values = Tensor(rng.normal(size=(num_edges, dim)))

    fused_scores = F.incidence_scores(
        keys, queries, edge_ids, node_ids,
        key_partition=hg.edge_partition, query_partition=hg.node_partition,
        block_rows=block_rows)
    reference_scores = (F.gather_rows(keys, edge_ids)
                        * F.gather_rows(queries, node_ids)).sum(axis=1)
    np.testing.assert_array_equal(fused_scores.numpy(),
                                  reference_scores.numpy())

    fused_agg = F.segment_attend(
        att, values, edge_ids, node_ids, num_nodes,
        partition=hg.node_partition, value_partition=hg.edge_partition,
        block_rows=block_rows)
    messages = F.gather_rows(values, edge_ids) * att.reshape(-1, 1)
    reference_agg = F.segment_sum(messages, node_ids, num_nodes,
                                  partition=hg.node_partition)
    np.testing.assert_array_equal(fused_agg.numpy(), reference_agg.numpy())


@settings(max_examples=25, deadline=None)
@given(incidence_lists, st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_fused_encoder_bitwise_matches_unfused(case, seed):
    """Full-encoder invariant: the fused kernels never change eval-mode
    embeddings or the substructure-attention output, for any incidence
    structure (serving caches and fingerprints stay valid)."""
    from repro.core import HyGNNEncoder, fused_kernels

    num_nodes, num_edges, pairs = case
    hg = _build(num_nodes, num_edges, pairs)
    encoder = HyGNNEncoder(num_substructures=num_nodes, embed_dim=3,
                           hidden_dim=3, rng=np.random.default_rng(seed),
                           dropout=0.0)
    encoder.eval()
    with fused_kernels(False):
        reference = encoder.encode_hypergraph(hg).numpy().copy()
        reference_att = encoder.substructure_attention(hg)
    with fused_kernels(True):
        fused = encoder.encode_hypergraph(hg).numpy().copy()
        fused_att = encoder.substructure_attention(hg)
    np.testing.assert_array_equal(fused, reference)
    np.testing.assert_array_equal(fused_att, reference_att)


@settings(max_examples=25, deadline=None)
@given(incidence_lists, st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_reversible_reconstruction_round_trips(case, seed):
    """Reversible-block invariants, for any incidence structure (including
    empty hyperedge segments and the empty incidence list):

    - the coupling inverse reconstructs the block input to within a few
      ulp of the surrounding sums — floating-point addition is not exactly
      invertible, so bitwise recovery cannot be promised, but the error
      never exceeds the rounding of the forward additions themselves;
    - the *bitwise* round-trip the checkpoint stack does guarantee: the
      recompute-in-backward encode (which frees block inputs in forward
      and reconstructs them in backward) produces exactly the
      stored-activation encode's embeddings, and a taped
      forward/backward/forward cycle through the checkpointed blocks
      reproduces the first forward bit for bit.
    """
    from repro.core import ReversibleHyGNNEncoder
    from repro.nn import Tape

    num_nodes, num_edges, pairs = case
    hg = _build(num_nodes, num_edges, pairs)
    encoder = ReversibleHyGNNEncoder(
        num_substructures=num_nodes, embed_dim=3, hidden_dim=4,
        rng=np.random.default_rng(seed), num_layers=2, dropout=0.0)
    encoder.eval()

    fn, fn_inverse = encoder.block_functions(
        0, hg.node_ids, hg.edge_ids, hg.num_edges,
        partitions=(hg.node_partition, hg.edge_partition))
    x = Tensor(np.random.default_rng(seed + 1).normal(
        size=(hg.num_edges, 4)))
    y = fn(x)
    x_rec = fn_inverse(y)
    assert x_rec.shape == x.shape
    ulp = np.spacing(np.maximum(np.abs(x.numpy()), np.abs(y.numpy())))
    assert np.all(np.abs(x_rec.numpy() - x.numpy()) <= 4 * ulp)

    encoder.recompute = True
    checkpointed = encoder.encode_hypergraph(hg).numpy().copy()
    encoder.recompute = False
    stored = encoder.encode_hypergraph(hg).numpy().copy()
    np.testing.assert_array_equal(checkpointed, stored)

    encoder.recompute = True
    tape = Tape.record(lambda: (encoder.encode_hypergraph(hg) ** 2).sum())
    tape.forward()
    first = tape.root.item()
    tape.backward()
    tape.forward()
    assert tape.root.item() == first


# ---------------------------------------------------------------------------
# Streaming top-k invariants (serving engine)
# ---------------------------------------------------------------------------

topk_cases = st.tuples(
    st.lists(st.integers(min_value=-50, max_value=50), min_size=0,
             max_size=120),                      # quantized scores (many ties)
    st.integers(min_value=0, max_value=130),     # k
    st.integers(min_value=1, max_value=40),      # block size
    st.integers(min_value=1, max_value=6),       # shard count
    st.integers(min_value=0, max_value=2 ** 31 - 1))


@settings(max_examples=80, deadline=None)
@given(topk_cases)
def test_streaming_sharded_topk_matches_stable_argsort(case):
    """Blocked + sharded selection equals the full stable argsort prefix,
    for any block size and any shard layout — the serving engine's
    exact-mode determinism contract."""
    from repro.serving import TopKAccumulator, merge_top_k, top_k_desc

    raw, k, block, num_shards, seed = case
    scores = np.asarray(raw, dtype=np.float64) / 7.0
    n = scores.size
    expected = np.argsort(-scores, kind="stable")[:k]

    np.testing.assert_array_equal(top_k_desc(scores, k), expected)

    layout = np.array_split(np.random.default_rng(seed).permutation(n),
                            num_shards)
    shard_results = []
    for part in layout:
        acc = TopKAccumulator(k)
        for start in range(0, part.size, block):
            chunk = part[start:start + block]
            acc.update(scores[chunk], chunk)
        shard_results.append(acc.result())
    merged_idx, merged_sc = merge_top_k(shard_results, k)
    np.testing.assert_array_equal(merged_idx, expected)
    np.testing.assert_array_equal(merged_sc, scores[expected])
