"""Setup shim.

The build environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` (PEP 660) cannot build an editable wheel.  This shim
enables the legacy editable path: ``python setup.py develop`` or
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
