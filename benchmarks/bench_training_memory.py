"""Memory-lean deep training gate: reversible encoder vs stored activations.

Deep HyGNN variants (Sec. IV ablations beyond the paper's single layer) pay
O(depth) activation memory on the stored-activation path: every coupling
block's intermediates stay live from forward until its backward runs.  The
``ReversibleHyGNNEncoder`` + ``invertible_checkpoint`` stack instead frees
each block's input in the forward and reconstructs it from the block output
inside the backward, so peak training scratch is O(1) in depth.

This script gates the claim end-to-end on a synthetic corpus (~1.2k drugs,
~30k incidences, hidden 128) and exits non-zero on any failure:

1. a depth-6 reversible taped training step peaks at most
   ``--max-depth-ratio`` (1.5x) of the depth-1 peak — versus the
   stored-activation path of the *same* depth-6 model, which must sit above
   ``--min-stored-ratio`` (2x) to show the baseline it beats;
2. recompute-in-backward gradients are allclose (rtol 1e-9, atol 1e-12) to
   a stored-activation backward of the *same* reversible model — the only
   difference is IEEE round-off in the input reconstruction;
3. taped reversible epochs are bitwise-reproducible across replays: the
   loss root and every encoder gradient repeat exactly.

Measured numbers are written to a machine-readable ``BENCH_memory.json``
so the memory trajectory is tracked across PRs.

    PYTHONPATH=src python benchmarks/bench_training_memory.py          # full
    PYTHONPATH=src python benchmarks/bench_training_memory.py --quick  # CI
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
import tracemalloc

import numpy as np

from repro.core import HyGNN, HyGNNConfig
from repro.hypergraph import Hypergraph
from repro.nn import bce_with_logits


def make_hypergraph(num_drugs: int, num_substructures: int,
                    incidences: int, seed: int) -> Hypergraph:
    """Random DrugBank-shaped incidence: every drug keeps >= 1 substructure."""
    rng = np.random.default_rng(seed)
    node_ids = np.concatenate([
        rng.integers(0, num_substructures, size=incidences),
        rng.integers(0, num_substructures, size=num_drugs)])
    edge_ids = np.concatenate([
        rng.integers(0, num_drugs, size=incidences),
        np.arange(num_drugs)])
    return Hypergraph(num_substructures, num_drugs, node_ids, edge_ids)


def _peak_bytes(fn) -> int:
    gc.collect()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _make_model(num_substructures: int, num_layers: int, hidden_dim: int,
                seed: int) -> HyGNN:
    # dropout=0 keeps every path deterministic: grad parity compares two
    # walks of the same weights, and the replay gate demands bitwise repeats.
    config = HyGNNConfig(reversible=True, num_layers=num_layers,
                         embed_dim=hidden_dim, hidden_dim=hidden_dim,
                         dropout=0.0, seed=seed)
    model = HyGNN(num_substructures=num_substructures, config=config)
    model.train()
    return model


def _training_peak(model: HyGNN, hypergraph: Hypergraph, pairs: np.ndarray,
                   labels: np.ndarray) -> int:
    """Peak traced bytes of record + backward + one replay epoch.

    Recording allocates the tape's persistent activation buffers (the
    stored-activation path's depth-scaling cost lives there); the replay
    exercises the steady-state forward/backward reuse, including the
    checkpointed blocks' reconstruct-and-rerun scratch.
    """
    def run():
        tape, _ = model.compile_training(hypergraph, pairs, labels)
        tape.backward()
        tape.forward()
        tape.backward()
    return _peak_bytes(run)


def _epoch_seconds(model: HyGNN, hypergraph: Hypergraph, pairs: np.ndarray,
                   labels: np.ndarray, repeats: int) -> float:
    tape, _ = model.compile_training(hypergraph, pairs, labels)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        tape.forward()
        tape.backward()
        best = min(best, time.perf_counter() - start)
    return best


def _encoder_grads(model: HyGNN, hypergraph: Hypergraph, pairs: np.ndarray,
                   labels: np.ndarray) -> tuple[float, list[np.ndarray]]:
    """One eager forward/backward; returns (loss, encoder grad copies)."""
    for param in model.parameters():
        param.grad = None
    loss = bce_with_logits(model.forward(hypergraph, pairs), labels)
    loss.backward()
    return loss.item(), [param.grad.copy()
                         for param in model.encoder.parameters()]


def _replay_signature(tape, model: HyGNN) -> tuple[float, list[np.ndarray]]:
    tape.forward()
    tape.backward()
    return tape.root.item(), [param.grad.copy()
                              for param in model.encoder.parameters()]


def run(num_drugs: int, num_substructures: int, incidences: int,
        hidden_dim: int, num_pairs: int, depth: int, repeats: int,
        max_depth_ratio: float, min_stored_ratio: float,
        output: str, seed: int = 0) -> int:
    print(f"building synthetic hypergraph: {num_drugs} drugs, "
          f"{num_substructures} substructures, ~{incidences} incidences ...",
          flush=True)
    hypergraph = make_hypergraph(num_drugs, num_substructures, incidences,
                                 seed)
    print(f"  {hypergraph}")
    rng = np.random.default_rng(seed + 1)
    pairs = rng.integers(0, num_drugs, size=(num_pairs, 2))
    labels = rng.integers(0, 2, size=num_pairs).astype(np.float64)

    shallow = _make_model(num_substructures, 1, hidden_dim, seed)
    deep = _make_model(num_substructures, depth, hidden_dim, seed)

    # 1: peak training scratch — depth-1 recompute, depth-D recompute, and
    # the stored-activation walk of the *same* depth-D model.
    print(f"measuring peak training scratch (tracemalloc, depth 1 vs "
          f"{depth}) ...", flush=True)
    shallow_peak = _training_peak(shallow, hypergraph, pairs, labels)
    deep.encoder.recompute = True
    reversible_peak = _training_peak(deep, hypergraph, pairs, labels)
    deep.encoder.recompute = False
    stored_peak = _training_peak(deep, hypergraph, pairs, labels)
    depth_ratio = reversible_peak / shallow_peak
    stored_ratio = stored_peak / shallow_peak

    # 2: gradient parity — recompute-in-backward vs stored activations on
    # identical weights.  The recompute path reconstructs each block input
    # from its output, so the only divergence is IEEE reconstruction
    # round-off.
    print("checking recompute-vs-stored gradient parity ...", flush=True)
    deep.encoder.recompute = True
    recompute_loss, recompute_grads = _encoder_grads(deep, hypergraph, pairs,
                                                     labels)
    deep.encoder.recompute = False
    stored_loss, stored_grads = _encoder_grads(deep, hypergraph, pairs,
                                               labels)
    grads_match = all(
        np.allclose(a, b, rtol=1e-9, atol=1e-12)
        for a, b in zip(recompute_grads, stored_grads))
    worst_rel = max(
        float(np.max(np.abs(a - b) / (np.abs(b) + 1e-300)))
        for a, b in zip(recompute_grads, stored_grads))
    loss_drift = abs(recompute_loss - stored_loss)

    # 3: bitwise replay reproducibility of the taped reversible epoch.
    print("checking taped-epoch bitwise reproducibility ...", flush=True)
    deep.encoder.recompute = True
    tape, _ = deep.compile_training(hypergraph, pairs, labels)
    first_loss, first_grads = _replay_signature(tape, deep)
    second_loss, second_grads = _replay_signature(tape, deep)
    replay_bitwise = (first_loss == second_loss and all(
        np.array_equal(a, b) for a, b in zip(first_grads, second_grads)))

    print(f"timing taped epochs (best of {repeats}) ...", flush=True)
    deep.encoder.recompute = True
    reversible_s = _epoch_seconds(deep, hypergraph, pairs, labels, repeats)
    deep.encoder.recompute = False
    stored_s = _epoch_seconds(deep, hypergraph, pairs, labels, repeats)
    deep.encoder.recompute = True

    print(f"\n  peak training scratch: depth-1 {shallow_peak / 1e6:8.2f} MB"
          f"   depth-{depth} reversible {reversible_peak / 1e6:8.2f} MB "
          f"({depth_ratio:.2f}x, gate: <= {max_depth_ratio}x)")
    print(f"  depth-{depth} stored-activation {stored_peak / 1e6:8.2f} MB "
          f"({stored_ratio:.2f}x, gate: >= {min_stored_ratio}x)")
    print(f"  recompute grads allclose(1e-9) to stored: {grads_match}  "
          f"(worst rel diff {worst_rel:.2e}, loss drift {loss_drift:.2e})")
    print(f"  taped reversible epoch bitwise-reproducible: {replay_bitwise}")
    print(f"  taped epoch: reversible {reversible_s * 1000:8.1f} ms   "
          f"stored {stored_s * 1000:8.1f} ms  "
          f"(recompute overhead {reversible_s / stored_s:.2f}x, informational)")

    failures = []
    if depth_ratio > max_depth_ratio:
        failures.append(
            f"depth-{depth} reversible peak is {depth_ratio:.2f}x the "
            f"depth-1 peak (gate: <= {max_depth_ratio}x)")
    if stored_ratio < min_stored_ratio:
        failures.append(
            f"depth-{depth} stored-activation peak is only "
            f"{stored_ratio:.2f}x the depth-1 peak (gate: >= "
            f"{min_stored_ratio}x) — the baseline the reversible path "
            f"should be beating")
    if not grads_match:
        failures.append(
            f"recompute gradients diverge from the stored-activation "
            f"backward (worst rel diff {worst_rel:.2e})")
    if not replay_bitwise:
        failures.append("taped reversible epochs are not "
                        "bitwise-reproducible across replays")
    for failure in failures:
        print(f"  FAIL: {failure}")
    if not failures:
        print("  OK")

    results = {
        "config": {
            "num_drugs": num_drugs,
            "num_substructures": num_substructures,
            "num_incidences": hypergraph.num_incidences,
            "hidden_dim": hidden_dim,
            "num_pairs": num_pairs,
            "depth": depth,
            "repeats": repeats,
            "seed": seed,
        },
        "peak_training_bytes": {
            "depth1_reversible": shallow_peak,
            f"depth{depth}_reversible": reversible_peak,
            f"depth{depth}_stored": stored_peak,
        },
        "depth_ratio_reversible": depth_ratio,
        "depth_ratio_stored": stored_ratio,
        "grads_allclose": grads_match,
        "grads_worst_rel_diff": worst_rel,
        "loss_drift": loss_drift,
        "replay_bitwise": replay_bitwise,
        "taped_epoch_ms": {"reversible": reversible_s * 1000,
                           "stored": stored_s * 1000},
        "gates": {
            "max_depth_ratio": max_depth_ratio,
            "min_stored_ratio": min_stored_ratio,
            "grad_rtol": 1e-9,
            "grad_atol": 1e-12,
        },
        "failures": failures,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"  wrote {output}")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized smoke run with relaxed ratios")
    parser.add_argument("--drugs", type=int, default=None)
    parser.add_argument("--substructures", type=int, default=None)
    parser.add_argument("--incidences", type=int, default=None)
    parser.add_argument("--hidden", type=int, default=None)
    parser.add_argument("--pairs", type=int, default=None)
    parser.add_argument("--depth", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--max-depth-ratio", type=float, default=None)
    parser.add_argument("--min-stored-ratio", type=float, default=None)
    # --quick writes to a separate file by default so a smoke run never
    # clobbers the committed full-gate record.
    parser.add_argument("--output", default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if args.output is None:
        args.output = ("BENCH_memory_quick.json" if args.quick
                       else "BENCH_memory.json")
    if args.quick:
        # CI smoke: small corpora amortise the shared fixed costs (decoder
        # batch, stem, embedding table) less, so the ratios compress — keep
        # the reversible ceiling but drop the stored-activation floor.
        defaults = {"drugs": 300, "substructures": 300, "incidences": 6_000,
                    "hidden": 64, "pairs": 2_000, "depth": 6, "repeats": 2,
                    "max_depth_ratio": 1.5, "min_stored_ratio": 1.3}
    else:
        defaults = {"drugs": 1_200, "substructures": 1_000,
                    "incidences": 30_000, "hidden": 128, "pairs": 8_000,
                    "depth": 6, "repeats": 3,
                    "max_depth_ratio": 1.5, "min_stored_ratio": 2.0}

    def resolve(name):
        value = getattr(args, name)
        return defaults[name] if value is None else value

    return run(
        num_drugs=resolve("drugs"),
        num_substructures=resolve("substructures"),
        incidences=resolve("incidences"),
        hidden_dim=resolve("hidden"),
        num_pairs=resolve("pairs"),
        depth=resolve("depth"),
        repeats=resolve("repeats"),
        max_depth_ratio=resolve("max_depth_ratio"),
        min_stored_ratio=resolve("min_stored_ratio"),
        output=args.output,
        seed=args.seed,
    )


if __name__ == "__main__":
    sys.exit(main())
