"""Living-catalog streaming benchmark (and regression gate).

Exercises the crash-safe living catalog: append-only shard segments under
the write-ahead-journal + atomic-manifest commit protocol, live drug
registration flowing through a serving gateway, and crash-point recovery.

Gates (exit non-zero on violation, so CI can run ``--quick`` as a guard):

1. **Append-only, O(new rows) commits**: a burst of appends never rewrites
   an existing shard byte — every pre-existing ``.npy`` in the store is
   identical by (mtime, CRC) afterwards (hard gate) — and the commit
   latency is governed by the appended rows, not the base catalog: the
   median append on a large store stays within ``--max-append-ratio`` of
   the same append on a store 1/16th the size, and far below rewriting
   the large store from scratch.
2. **Streaming registrations under load**: an async gateway serves
   closed-loop screen clients while drugs are registered live into the
   attached store.  Registration p50/p99 come from
   ``ServiceStats.registration_latency``.  Gated: every gateway response
   is bitwise-identical to a serial in-memory twin at *some* committed
   catalog size (a response pinned to an older version must match that
   version, never a torn hybrid); screens keep completing between
   registrations (progress — no full-catalog stall); and registration
   p99 stays below one full-catalog re-encode, the cost it would pay if
   registration were not incremental.  Afterwards compaction and
   rollback-to-v0 must preserve/restore screens bitwise.
3. **Crash sweep** (always on, including ``--quick``): kill a writer at
   every named crash point of an append; recovery must land on a
   committed version with bitwise screening parity, leave no journal or
   temp debris, quarantine orphaned segment files, and pass a full
   checksum verify.  Rollback and compaction parity are swept on the
   same synthetic store.

Measured numbers are written to a machine-readable ``BENCH_streaming.json``
(``BENCH_streaming_quick.json`` under ``--quick``) so the trajectory is
tracked across PRs.

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src python benchmarks/bench_streaming.py --quick
"""

from __future__ import annotations

import argparse
import asyncio
import json
import shutil
import statistics
import sys
import tempfile
import time
import zlib
from collections import Counter
from pathlib import Path

import numpy as np

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.core.decoder import MLPDecoder, make_screen_kernel
from repro.serving import (CrashPoint, CrashPolicy, DDIScreeningService,
                           ScreeningGateway, ShardedEmbeddingCatalog,
                           ShardStore, exact_score_fn)
from repro.serving.store import JOURNAL_NAME


def _crc(path: Path) -> int:
    return zlib.crc32(path.read_bytes()) & 0xFFFFFFFF


def _file_states(root: Path) -> dict:
    """(mtime_ns, CRC) of every data file — the byte-identity witness."""
    return {p.name: (p.stat().st_mtime_ns, _crc(p))
            for p in root.glob("*.npy")}


def _hits(results) -> list[list[tuple[int, float]]]:
    return [[(h.index, h.probability) for h in hits] for hits in results]


# ---------------------------------------------------------------------------
# Gate 1: append cost independent of base catalog size; bytes untouched
# ---------------------------------------------------------------------------
def _build_store(path: Path, num_rows: int, dim: int, num_shards: int,
                 seed: int) -> tuple[ShardStore, float]:
    rng = np.random.default_rng(seed)
    embeddings = rng.standard_normal((num_rows, dim))
    start = time.perf_counter()
    manifest = ShardStore.save(path, embeddings, num_shards=num_shards,
                               block_size=1024)
    return ShardStore(manifest), time.perf_counter() - start


def _median_append(store: ShardStore, rows_per_append: int, dim: int,
                   repeats: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    samples = []
    for _ in range(repeats):
        rows = rng.standard_normal((rows_per_append, dim))
        start = time.perf_counter()
        store.append(rows)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def gate_append(base_small: int, base_large: int, rows_per_append: int,
                repeats: int, max_ratio: float, seed: int,
                failures: list[str]) -> dict:
    dim, num_shards = 64, 8
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        small, _ = _build_store(tmp / "small", base_small, dim,
                                num_shards, seed)
        large, rewrite_s = _build_store(tmp / "large", base_large, dim,
                                        num_shards, seed + 1)
        before = {"small": _file_states(small.root),
                  "large": _file_states(large.root)}
        small_s = _median_append(small, rows_per_append, dim, repeats, seed)
        large_s = _median_append(large, rows_per_append, dim, repeats, seed)
        for label, store in (("small", small), ("large", large)):
            after = _file_states(store.root)
            touched = [name for name, state in before[label].items()
                       if after.get(name) != state]
            if touched:
                failures.append(f"append rewrote existing bytes in the "
                                f"{label} store: {sorted(touched)}")
            if len(after) <= len(before[label]):
                failures.append(f"append added no data files to the "
                                f"{label} store")
        ratio = large_s / small_s if small_s else float("inf")
        if ratio > max_ratio:
            failures.append(
                f"append on the {base_large}-row store is {ratio:.1f}x the "
                f"{base_small}-row store (max {max_ratio:g}x) — commit "
                f"latency scales with the base catalog")
        if large_s >= rewrite_s / 3:
            failures.append(
                f"append ({large_s * 1e3:.1f} ms) not well under a full "
                f"rewrite of the large store ({rewrite_s * 1e3:.1f} ms)")
    return {"base_small": base_small, "base_large": base_large,
            "rows_per_append": rows_per_append,
            "append_small_ms": small_s * 1e3,
            "append_large_ms": large_s * 1e3,
            "latency_ratio": ratio,
            "full_rewrite_large_ms": rewrite_s * 1e3}


# ---------------------------------------------------------------------------
# Gate 2: live registration under concurrent gateway load
# ---------------------------------------------------------------------------
def build_services(num_drugs: int, hidden_dim: int, seed: int,
                   store_dir: Path):
    corpus = [r.smiles for r in
              MoleculeGenerator(seed=seed).generate_corpus(num_drugs)]
    config = HyGNNConfig(parameter=4, embed_dim=hidden_dim,
                         hidden_dim=hidden_dim, seed=seed)
    model, _, builder = HyGNN.for_corpus(corpus, config)
    model.eval()
    service = DDIScreeningService(model, builder, corpus)
    twin = DDIScreeningService(model, builder, corpus)  # serial reference
    service.save_shards(store_dir, num_shards=4)
    if not service.open_shards(store_dir):
        raise RuntimeError("freshly saved shard store failed to attach")
    return corpus, service, twin


def _fresh_smiles(corpus: list[str], count: int, seed: int) -> list[str]:
    known, out = set(corpus), []
    for record in MoleculeGenerator(seed=seed).generate_corpus(4 * count):
        if record.smiles not in known:
            known.add(record.smiles)
            out.append(record.smiles)
        if len(out) == count:
            return out
    raise RuntimeError("could not generate enough unseen molecules")


async def _streaming_phase(service, twin, extras, queries, top_k, clients):
    """Closed-loop screen clients racing a live registrar.

    Returns every ``(query, hits)`` response, the per-version serial
    references, and the screens completed after each registration.
    """
    valid = {q: [] for q in queries}

    def snapshot_refs():
        for q in queries:
            valid[q].append(_hits([twin.screen(q, top_k=top_k)])[0])

    snapshot_refs()
    responses, progress, done, stop = [], [], [0], [False]
    async with ScreeningGateway(service, max_batch=16,
                                max_wait_ms=1.0) as gateway:
        async def client(cid):
            i = 0
            while not stop[0]:
                q = queries[(cid * 7 + i * 3) % len(queries)]
                hits = await gateway.screen(q, top_k=top_k)
                responses.append((q, _hits([hits])[0]))
                done[0] += 1
                i += 1

        async def registrar():
            await asyncio.sleep(0.01)  # let the clients spin up
            for j, smiles in enumerate(extras):
                before = done[0]
                service.register_drug(smiles, drug_id=f"new-{j}",
                                      allow_unknown=True)
                twin.register_drug(smiles, drug_id=f"new-{j}",
                                   allow_unknown=True)
                snapshot_refs()
                await asyncio.sleep(0.01)  # the inter-arrival gap
                progress.append(done[0] - before)
            stop[0] = True

        tasks = [asyncio.create_task(client(c)) for c in range(clients)]
        await registrar()
        await asyncio.gather(*tasks)
    return responses, valid, progress


def gate_streaming(num_drugs: int, hidden_dim: int, clients: int,
                   registrations: int, top_k: int, seed: int,
                   failures: list[str]) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        print(f"building {num_drugs}-drug catalog "
              f"(hidden_dim={hidden_dim}) ...", flush=True)
        corpus, service, twin = build_services(
            num_drugs, hidden_dim, seed, Path(tmp) / "store")
        extras = _fresh_smiles(corpus, registrations, seed + 1000)
        rng = np.random.default_rng(seed)
        queries = [int(q) for q in
                   rng.choice(num_drugs, size=8, replace=False)]
        before_hits = _hits([service.screen(q, top_k=top_k)
                             for q in queries])

        # The stall unit: what one full-catalog re-encode costs.  An
        # incremental registration must stay under it.
        twin.refresh()
        start = time.perf_counter()
        twin.refresh(force=True)
        refresh_s = time.perf_counter() - start

        print(f"streaming: {clients} clients screening while "
              f"{registrations} drugs register ...", flush=True)
        responses, valid, progress = asyncio.run(_streaming_phase(
            service, twin, extras, queries, top_k, clients))

        for q, hits in responses:
            if hits not in valid[q]:
                failures.append(
                    f"gateway response for query={q} matches no committed "
                    f"catalog version — torn read under live registration")
                break
        if sum(progress) < registrations:
            failures.append(
                f"only {sum(progress)} screens completed across "
                f"{registrations} registrations — the gateway stalls "
                f"while the catalog grows")

        stats = service.stats
        window = stats.registration_latency.summary()
        if window["p50_ms"] >= refresh_s * 1e3:
            failures.append(
                f"registration p50 {window['p50_ms']:.1f} ms >= one "
                f"full-catalog re-encode ({refresh_s * 1e3:.1f} ms) — "
                f"registration is not incremental")
        # The tail pays a fixed execution-plan invalidation on top (the
        # worker pool serving the old version is torn down so the next
        # screen reopens the new one) — bounded, not catalog-shaped.
        p99_bound_ms = 2 * refresh_s * 1e3 + 50.0
        if window["p99_ms"] >= p99_bound_ms:
            failures.append(
                f"registration p99 {window['p99_ms']:.1f} ms exceeds "
                f"{p99_bound_ms:.1f} ms (2x re-encode + invalidation "
                f"slack) — registration stalls on the catalog")
        if stats.registrations != registrations:
            failures.append(f"registrations counter {stats.registrations} "
                            f"!= {registrations}")
        if stats.appends_committed != registrations:
            failures.append(
                f"only {stats.appends_committed}/{registrations} "
                f"registrations appended through to the store")
        if service.catalog_version != registrations:
            failures.append(f"store version {service.catalog_version} != "
                            f"{registrations} after {registrations} appends")
        if stats.gateway_epoch_swaps < 1:
            failures.append("gateway never observed a catalog epoch swap "
                            "during live registration")

        # Post-stream lifecycle: compaction keeps answers, rollback
        # restores the pre-registration screens bitwise.
        service.compact_shards()
        keys = queries + [f"new-{j}" for j in range(registrations)]
        if _hits([service.screen(k, top_k=top_k) for k in keys]) != \
                _hits([twin.screen(k, top_k=top_k) for k in keys]):
            failures.append("screens diverge from the serial twin after "
                            "compaction")
        service.rollback_catalog(0)
        if _hits([service.screen(q, top_k=top_k)
                  for q in queries]) != before_hits:
            failures.append("rollback to v0 does not restore the "
                            "pre-registration screens bitwise")
        return {"num_drugs": num_drugs, "hidden_dim": hidden_dim,
                "clients": clients, "registrations": registrations,
                "registration_p50_ms": window["p50_ms"],
                "registration_p99_ms": window["p99_ms"],
                "full_refresh_ms": refresh_s * 1e3,
                "screens_completed": len(responses),
                "screens_during_registration": sum(progress),
                "gateway_epoch_swaps": stats.gateway_epoch_swaps,
                "compactions": stats.compactions,
                "rollbacks": stats.rollbacks}


# ---------------------------------------------------------------------------
# Gate 3: crash-point sweep + rollback/compaction parity (synthetic store)
# ---------------------------------------------------------------------------
def _store_projections(store, decoder, rows):
    projections = decoder.candidate_projections(rows)
    return {name: projections[name] for name in store.projection_names
            if name in projections}


def _screen_store(store, decoder, queries, top_k=6):
    kernel = make_screen_kernel(decoder)
    query_proj = decoder.project_queries(queries, sides=("as_left",))
    return store.catalog().screen(exact_score_fn(kernel, query_proj),
                                  len(queries), top_k)


def _screen_memory(decoder, embeddings, queries, top_k=6):
    kernel = make_screen_kernel(decoder)
    query_proj = decoder.project_queries(queries, sides=("as_left",))
    catalog = ShardedEmbeddingCatalog(
        embeddings, decoder.candidate_projections(embeddings),
        num_shards=3, block_size=16)
    return catalog.screen(exact_score_fn(kernel, query_proj),
                          len(queries), top_k)


def _same_screens(a, b) -> bool:
    return all(np.array_equal(ia, ib) and np.array_equal(pa, pb)
               for (ia, pa), (ib, pb) in zip(a, b))


def gate_crash_sweep(seed: int, failures: list[str]) -> dict:
    rng = np.random.default_rng(seed)
    dim = 16
    decoder = MLPDecoder(dim, dim, np.random.default_rng(seed))
    embeddings = rng.standard_normal((48, dim))
    extra = rng.standard_normal((6, dim))
    combined = np.concatenate([embeddings, extra])
    queries = embeddings[[0, 5]]
    references = {0: _screen_memory(decoder, embeddings, queries),
                  1: _screen_memory(decoder, combined, queries)}

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        base = tmp / "base"
        ShardStore.save(base, embeddings,
                        decoder.candidate_projections(embeddings),
                        num_shards=3, block_size=16, catalog_digest="v0")

        def append(store):
            store.append(extra, _store_projections(store, decoder, extra))

        # Recorder pass enumerates the complete crash surface.
        recorder_dir = tmp / "recorder"
        shutil.copytree(base, recorder_dir)
        recorder_store = ShardStore(recorder_dir)
        recorder = CrashPolicy()
        recorder_store.crash_policy = recorder
        append(recorder_store)
        points = list(recorder.seen)

        actions: Counter = Counter()
        for i, point in enumerate(points):
            work = tmp / f"crash-{i}"
            shutil.copytree(base, work)
            victim = ShardStore(work)
            victim.crash_policy = CrashPolicy(point)
            try:
                append(victim)
            except CrashPoint:
                pass
            else:
                failures.append(f"crash point {point} never fired")
                continue
            survivor = ShardStore(work, recover=True)
            actions[str(survivor.recovered["action"])] += 1
            if (work / JOURNAL_NAME).exists() or list(work.glob("*.tmp")):
                failures.append(f"crash at {point}: recovery left journal "
                                f"or temp debris behind")
            if survivor.version not in references:
                failures.append(f"crash at {point}: recovered to "
                                f"uncommitted version {survivor.version}")
                continue
            if not _same_screens(_screen_store(survivor, decoder, queries),
                                 references[survivor.version]):
                failures.append(f"crash at {point}: screens diverge from "
                                f"committed version {survivor.version}")
            if survivor.verify(strict=False):
                failures.append(f"crash at {point}: recovered store fails "
                                f"checksum verify")
        if actions.get("roll-back", 0) < 1 or actions.get("completed", 0) < 1:
            failures.append(f"crash sweep exercised only {dict(actions)} — "
                            f"missing roll-back or completed recoveries")

        # Rollback + compaction parity on a surviving store.
        life = tmp / "lifecycle"
        shutil.copytree(base, life)
        store = ShardStore(life)
        append(store)
        if not _same_screens(_screen_store(store, decoder, queries),
                             references[1]):
            failures.append("appended store screens diverge from the "
                            "in-memory reference")
        store.compact()
        if not _same_screens(_screen_store(store, decoder, queries),
                             references[1]):
            failures.append("compaction changed screening results")
        store.rollback(0)
        if not _same_screens(_screen_store(store, decoder, queries),
                             references[0]):
            failures.append("rollback to v0 does not restore its screens "
                            "bitwise")
        versions = [0, 1, 2, 3]
        if store.version != 3 or store.versions() != versions:
            failures.append(f"versions not monotonic: current "
                            f"{store.version}, retained {store.versions()}")
    return {"points_swept": len(points), "actions": dict(actions)}


# ---------------------------------------------------------------------------
def run(args, output: str) -> int:
    failures: list[str] = []

    print(f"append gate: {args.base_small} vs {args.base_large} base rows, "
          f"{args.append_repeats} appends of {args.append_rows} ...",
          flush=True)
    append_results = gate_append(args.base_small, args.base_large,
                                 args.append_rows, args.append_repeats,
                                 args.max_append_ratio, args.seed, failures)
    streaming_results = gate_streaming(args.drugs, args.hidden_dim,
                                       args.clients, args.registrations,
                                       args.top_k, args.seed, failures)
    print("crash sweep: every append crash point ...", flush=True)
    sweep_results = gate_crash_sweep(args.seed, failures)

    width = 56
    print()
    print(f"{'benchmark':{width}s} {'value':>14s}")
    print("-" * (width + 15))
    rows = [
        (f"append commit, {args.base_small}-row base (median)",
         f"{append_results['append_small_ms']:9.2f} ms"),
        (f"append commit, {args.base_large}-row base (median)",
         f"{append_results['append_large_ms']:9.2f} ms"),
        ("  ... latency ratio (large/small)",
         f"{append_results['latency_ratio']:9.2f} x"),
        ("  ... full rewrite of the large store",
         f"{append_results['full_rewrite_large_ms']:9.2f} ms"),
        ("registration p50 / p99 under gateway load",
         f"{streaming_results['registration_p50_ms']:5.1f} / "
         f"{streaming_results['registration_p99_ms']:5.1f} ms"),
        ("  ... full-catalog re-encode (the stall unit)",
         f"{streaming_results['full_refresh_ms']:9.1f} ms"),
        ("gateway screens completed (during registration)",
         f"{streaming_results['screens_completed']:5d} "
         f"({streaming_results['screens_during_registration']:d})"),
        ("gateway catalog-epoch swaps observed",
         f"{streaming_results['gateway_epoch_swaps']:9d}"),
        ("crash points swept (append)",
         f"{sweep_results['points_swept']:9d}"),
        ("  ... recovery actions", str(sweep_results["actions"])),
    ]
    for label, value in rows:
        print(f"{label:{width}s} {value:>14s}")
    print("-" * (width + 15))

    results = {
        "config": {"quick": args.quick, "seed": args.seed,
                   "max_append_ratio": args.max_append_ratio},
        "append": append_results,
        "streaming": streaming_results,
        "crash_sweep": sweep_results,
        "failures": failures,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized run")
    parser.add_argument("--base-small", type=int, default=None,
                        help="small base store rows (default: 2000, "
                             "quick: 500)")
    parser.add_argument("--base-large", type=int, default=None,
                        help="large base store rows (default: 32000, "
                             "quick: 8000)")
    parser.add_argument("--append-rows", type=int, default=16,
                        help="rows per append commit (default: 16)")
    parser.add_argument("--append-repeats", type=int, default=None,
                        help="timed appends per store (default: 25, "
                             "quick: 10)")
    parser.add_argument("--max-append-ratio", type=float, default=5.0,
                        help="large/small append latency ceiling "
                             "(default: 5.0)")
    parser.add_argument("--drugs", type=int, default=None,
                        help="serving catalog size (default: 100, quick: 50)")
    parser.add_argument("--hidden-dim", type=int, default=None,
                        help="embedding width (default: 128, quick: 64)")
    parser.add_argument("--clients", type=int, default=None,
                        help="closed-loop screen clients (default: 8, "
                             "quick: 4)")
    parser.add_argument("--registrations", type=int, default=None,
                        help="drugs registered live (default: 12, quick: 6)")
    parser.add_argument("--top-k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    # --quick writes to a separate file by default so a smoke run never
    # clobbers the committed full-gate record.
    parser.add_argument("--output", default=None,
                        help="JSON results path (default: "
                             "BENCH_streaming.json, quick: "
                             "BENCH_streaming_quick.json)")
    args = parser.parse_args()

    def default(value, quick, full):
        return (quick if args.quick else full) if value is None else value

    args.base_small = default(args.base_small, 500, 2000)
    args.base_large = default(args.base_large, 8000, 32000)
    args.append_repeats = default(args.append_repeats, 10, 25)
    args.drugs = default(args.drugs, 50, 100)
    args.hidden_dim = default(args.hidden_dim, 64, 128)
    args.clients = default(args.clients, 4, 8)
    args.registrations = default(args.registrations, 6, 12)
    if args.base_small < 2 or args.base_large <= args.base_small:
        parser.error("--base-large must exceed --base-small (>= 2)")
    if min(args.append_rows, args.append_repeats, args.drugs,
           args.clients, args.registrations, args.top_k) < 1:
        parser.error("sizes and counts must be >= 1")
    output = args.output or ("BENCH_streaming_quick.json" if args.quick
                             else "BENCH_streaming.json")
    return run(args, output)


if __name__ == "__main__":
    sys.exit(main())
