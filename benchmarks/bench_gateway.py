"""Async serving gateway benchmark (and regression gate).

Exercises :class:`repro.serving.ScreeningGateway` — the asyncio front door
that coalesces concurrent ``screen`` / ``score_pairs`` / ``screen_smiles``
requests into dynamic micro-batches — against the same service called
serially.

Gates (exit non-zero on violation, so CI can run ``--quick`` as a guard):

1. **Bitwise parity**: every flush composition returns exactly what the
   serial service returns — homogeneous batches, heterogeneous ``top_k``,
   heterogeneous ``exclude`` (indices and drug ids), symmetric/approx
   flag groups sharing one flush, and kind-mixed flushes (screen + pairs
   + SMILES).  During the throughput phase every response is *also*
   checked against its precomputed serial answer, so the compositions
   that arise from real flush timing are gated too.  Coalesced
   ``score_pairs`` must equal one vectorized call over the concatenated
   batch bitwise (vs per-request serial calls the guarantee is
   last-ulp; checked with allclose).  Always on, including ``--quick``.
2. **Micro-batching throughput**: with 32 closed-loop clients, the
   batched gateway (``max_batch=32``) sustains >= ``--min-speedup`` x
   the QPS of the unbatched gateway (``max_batch=1, max_wait_ms=0`` —
   the same asyncio path minus coalescing).  Skipped (reported only)
   when ``os.cpu_count() < 2``.
3. **Bounded tail latency**: batched p99 (from
   ``ServiceStats.gateway_latency``) stays under
   ``max_wait + 2 * clients * serial_single_screen`` — i.e. bounded by
   the wait window plus a small number of flush durations, never
   unbounded queueing.

    PYTHONPATH=src python benchmarks/bench_gateway.py
    PYTHONPATH=src python benchmarks/bench_gateway.py --quick
"""

from __future__ import annotations

import argparse
import asyncio
import os
import statistics
import sys
import time

import numpy as np

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.serving import DDIScreeningService, LatencyWindow, ScreeningGateway


def _hits(results) -> list[list[tuple[int, float]]]:
    return [[(h.index, h.probability) for h in hits] for hits in results]


def build_service(num_drugs: int, hidden_dim: int, seed: int):
    corpus = [r.smiles for r in
              MoleculeGenerator(seed=seed).generate_corpus(num_drugs)]
    config = HyGNNConfig(parameter=4, embed_dim=hidden_dim,
                         hidden_dim=hidden_dim, seed=seed)
    model, _, builder = HyGNN.for_corpus(corpus, config)
    model.eval()
    service = DDIScreeningService(model, builder, corpus)
    service.refresh()  # warm the cache outside every measured path
    return corpus, service


# ---------------------------------------------------------------------------
# Gate 1: flush-composition parity
# ---------------------------------------------------------------------------
def check_parity(corpus, service, seed: int, failures: list[str]) -> int:
    """Deterministic flush compositions, each compared to serial calls.

    ``max_wait_ms`` is large and ``max_batch`` exceeds every group, so one
    ``gather`` is one flush — the composition under test is exactly the
    composition scored.
    """
    rng = np.random.default_rng(seed)
    n = service.num_drugs
    ids = service._drug_ids

    def screens(specs):
        async def main():
            async with ScreeningGateway(service, max_batch=64,
                                        max_wait_ms=250) as gateway:
                return await asyncio.gather(
                    *[gateway.screen(q, top_k=k, exclude=e, symmetric=s)
                      for q, k, e, s in specs])
        return asyncio.run(main())

    compositions = {
        "homogeneous": [(int(q), 5, (), False)
                        for q in rng.choice(n, size=8, replace=False)],
        "heterogeneous top_k": [(int(q), int(k), (), False)
                                for q, k in zip(rng.choice(n, size=8),
                                                [1, 3, 9, 5, 2, 7, 4, 6])],
        "heterogeneous exclude": [
            (0, 5, (), False),
            (1, 5, (2, 3), False),
            (2, 5, (ids[0], 9), False),
            (3, 5, tuple(int(x) for x in rng.choice(n, size=4)), False)],
        # Symmetric and plain screens land in one flush but separate
        # coalescing groups — both must stay bitwise.
        "mixed flags": [(4, 5, (), False), (4, 5, (), True),
                        (5, 3, (), False), (5, 3, (), True)],
    }
    for label, specs in compositions.items():
        expected = [service.screen(q, top_k=k, exclude=e, symmetric=s)
                    for q, k, e, s in specs]
        if _hits(screens(specs)) != _hits(expected):
            failures.append(f"gateway parity: {label} flush diverges "
                            f"from serial screen")

    # Kind-mixed flush: screens + concatenated pairs + a SMILES encode.
    pair_lists = [np.array([[0, 1], [2, 3], [4, 5]]), np.array([[6, 7]])]
    expected_screens = [service.screen(6, top_k=4),
                        service.screen(7, top_k=2, exclude=(1,))]
    expected_pairs = service.score_pairs(np.concatenate(pair_lists))
    expected_smiles = service.screen_smiles(corpus[3], top_k=4)

    async def mixed():
        async with ScreeningGateway(service, max_batch=64,
                                    max_wait_ms=250) as gateway:
            return await asyncio.gather(
                gateway.screen(6, top_k=4),
                gateway.screen(7, top_k=2, exclude=(1,)),
                *[gateway.score_pairs(p) for p in pair_lists],
                gateway.screen_smiles(corpus[3], top_k=4))

    out = asyncio.run(mixed())
    if _hits(out[:2]) != _hits(expected_screens):
        failures.append("gateway parity: screens in a kind-mixed flush "
                        "diverge from serial")
    coalesced = np.concatenate(out[2:4])
    if not np.array_equal(coalesced, expected_pairs):
        failures.append("gateway parity: coalesced score_pairs != one "
                        "vectorized call over the concatenated batch")
    serial_pairs = np.concatenate([service.score_pairs(p)
                                   for p in pair_lists])
    if not np.allclose(coalesced, serial_pairs, rtol=1e-12, atol=0):
        failures.append("gateway parity: coalesced score_pairs not "
                        "allclose to per-request serial calls")
    if _hits([out[4]]) != _hits([expected_smiles]):
        failures.append("gateway parity: screen_smiles in a kind-mixed "
                        "flush diverges from serial")
    return len(compositions) + 1


# ---------------------------------------------------------------------------
# Gates 2 + 3: closed-loop load
# ---------------------------------------------------------------------------
async def _closed_loop(gateway, expected: dict, clients: int,
                       per_client: int, failures: list[str],
                       label: str) -> float:
    """``clients`` loops, each awaiting ``per_client`` screens in turn.

    Every response is checked against its precomputed serial answer —
    after the clock stops, so the parity gate costs no measured time —
    which makes whatever flush compositions the timing produces
    parity-gated too.
    """
    keys = sorted(expected)
    received: list[tuple[tuple, list]] = []

    async def one(client: int) -> None:
        for i in range(per_client):
            key = keys[(client * 7 + i * 3) % len(keys)]
            received.append((key, await gateway.screen(key[0],
                                                       top_k=key[1])))

    start = time.perf_counter()
    await asyncio.gather(*[one(c) for c in range(clients)])
    elapsed = time.perf_counter() - start
    for key, hits in received:
        if _hits([hits]) != _hits([expected[key]]):
            failures.append(f"{label}: response for query={key[0]} "
                            f"top_k={key[1]} diverges from serial")
            break
    return clients * per_client / elapsed


def measure_load(service, expected, max_batch: int, max_wait_ms: float,
                 clients: int, per_client: int, repeats: int,
                 failures: list[str], label: str):
    """Median QPS over ``repeats`` runs + the last run's latency window."""

    async def one_run():
        # Fresh window/histogram per run so the percentiles and the
        # reported batch sizes describe this phase only.
        service.stats.gateway_latency = LatencyWindow()
        service.stats.gateway_batch_sizes = {}
        async with ScreeningGateway(service, max_batch=max_batch,
                                    max_wait_ms=max_wait_ms) as gateway:
            await _closed_loop(gateway, expected, 4, 2, failures,
                               label + " warmup")
            return await _closed_loop(gateway, expected, clients,
                                      per_client, failures, label)

    qps, window = [], None
    for _ in range(repeats):
        qps.append(asyncio.run(one_run()))
        window = service.stats.gateway_latency
    return statistics.median(qps), window


def run(num_drugs: int, hidden_dim: int, clients: int, per_client: int,
        repeats: int, max_batch: int, max_wait_ms: float,
        min_speedup: float, seed: int = 0) -> int:
    failures: list[str] = []
    cpus = os.cpu_count() or 1

    print(f"building {num_drugs}-drug catalog (hidden_dim={hidden_dim}) "
          f"...", flush=True)
    corpus, service = build_service(num_drugs, hidden_dim, seed)

    compositions = check_parity(corpus, service, seed, failures)
    print(f"parity: {compositions} deterministic flush compositions vs "
          f"serial service — {'OK' if not failures else 'FAILED'}",
          flush=True)

    # Serial answers for every (query, top_k) the load phase can issue.
    rng = np.random.default_rng(seed)
    queries = [int(q) for q in rng.choice(num_drugs, size=16, replace=False)]
    expected = {(q, k): service.screen(q, top_k=k)
                for q in queries for k in (3, 5)}

    # Serial single-screen latency: the unit the p99 bound is built from.
    for _ in range(5):
        service.screen(queries[0], top_k=5)
    start = time.perf_counter()
    for _ in range(20):
        service.screen(queries[0], top_k=5)
    serial_single_s = (time.perf_counter() - start) / 20

    print(f"closed loop: {clients} clients x {per_client} requests, "
          f"median of {repeats} runs ...", flush=True)
    unbatched_qps, unbatched_window = measure_load(
        service, expected, 1, 0.0, clients, per_client, repeats,
        failures, "unbatched")
    batched_qps, batched_window = measure_load(
        service, expected, max_batch, max_wait_ms, clients, per_client,
        repeats, failures, "batched")
    speedup = batched_qps / unbatched_qps if unbatched_qps else float("inf")

    # Gate 3: batched p99 bounded by wait window + a few flush durations.
    p99_bound_s = max_wait_ms / 1e3 + 2 * clients * serial_single_s
    p99_s = batched_window.p99
    if not np.isnan(p99_s) and p99_s > p99_bound_s:
        failures.append(f"batched p99 {p99_s * 1e3:.1f} ms exceeds bound "
                        f"{p99_bound_s * 1e3:.1f} ms — unbounded queueing")

    width = 56
    print()
    print(f"{'benchmark':{width}s} {'value':>14s}")
    print("-" * (width + 15))
    rows = [
        ("serial screen, single query",
         f"{serial_single_s * 1e6:9.0f} us"),
        (f"unbatched gateway QPS (max_batch=1)",
         f"{unbatched_qps:9.0f} /s"),
        (f"batched gateway QPS (max_batch={max_batch}, "
         f"wait={max_wait_ms:g} ms)", f"{batched_qps:9.0f} /s"),
        ("unbatched p50 / p99",
         f"{unbatched_window.p50 * 1e3:5.1f} / {unbatched_window.p99 * 1e3:5.1f} ms"),
        ("batched   p50 / p99",
         f"{batched_window.p50 * 1e3:5.1f} / {batched_window.p99 * 1e3:5.1f} ms"),
        ("batched p99 bound (wait + 2 x clients x serial)",
         f"{p99_bound_s * 1e3:9.1f} ms"),
        ("batch-size histogram (last batched run)",
         str(dict(sorted(service.stats.gateway_batch_sizes.items())))),
    ]
    for label, value in rows:
        print(f"{label:{width}s} {value:>14s}")
    print("-" * (width + 15))
    gated = cpus >= 2
    gate = "gated" if gated else f"skipped: {cpus} cpu"
    print(f"{'micro-batching speedup':{width}s} {speedup:9.2f} x   "
          f"(floor {min_speedup:.2f}x, {gate})")
    if gated and speedup < min_speedup:
        failures.append(f"batched QPS only {speedup:.2f}x unbatched "
                        f"(floor {min_speedup:.2f}x) at {clients} clients")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized run (fewer requests/repeats)")
    parser.add_argument("--drugs", type=int, default=100,
                        help="catalog size (default: 100)")
    parser.add_argument("--hidden-dim", type=int, default=128,
                        help="embedding width (default: 128)")
    parser.add_argument("--clients", type=int, default=32,
                        help="concurrent closed-loop clients (default: 32)")
    parser.add_argument("--per-client", type=int, default=None,
                        help="requests per client (default: 16, quick: 6)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed runs per mode (default: 5, quick: 3)")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="QPS-ratio floor (0 disables; default: 3.0)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if args.drugs < 20:
        parser.error("--drugs must be >= 20")
    if args.clients < 1 or args.max_batch < 1:
        parser.error("--clients and --max-batch must be >= 1")
    if args.max_wait_ms < 0:
        parser.error("--max-wait-ms must be >= 0")

    def default(value, quick, full):
        return (quick if args.quick else full) if value is None else value

    per_client = default(args.per_client, 6, 16)
    repeats = default(args.repeats, 3, 5)
    return run(args.drugs, args.hidden_dim, args.clients, per_client,
               repeats, args.max_batch, args.max_wait_ms,
               args.min_speedup, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
