"""Benchmark: Tables II & III — hypergraph node counts vs parameters."""

from conftest import run_once

from repro.experiments import run_table2, run_table3


def _check_shape(rows):
    espf = [r["espf_nodes"] for r in rows]
    kmer = [r["kmer_nodes"] for r in rows]
    # ESPF: monotone non-increasing with threshold (Table II/III trend).
    assert all(a >= b for a, b in zip(espf, espf[1:]))
    # k-mer: grows with k before saturating; first three strictly grow.
    assert kmer[0] < kmer[1] < kmer[2]


def test_bench_table2(benchmark, profile):
    result = run_once(benchmark, run_table2, profile)
    result.show()
    _check_shape(result.rows)


def test_bench_table3(profile, benchmark):
    result = run_once(benchmark, run_table3, profile)
    result.show()
    _check_shape(result.rows)
    # DrugBank corpus is larger -> more nodes than TWOSIDES at k=3.
    assert result.rows[0]["kmer_nodes"] > 0
