"""Benchmark: Table I — dataset statistics generation."""

from conftest import run_once

from repro.experiments import run_table1


def test_bench_table1(benchmark, profile):
    result = run_once(benchmark, run_table1, profile)
    result.show()
    by_name = {r["dataset"]: r for r in result.rows}
    # Densities must match Table I at any scale.
    assert abs(by_name["TWOSIDES"]["density"] - 0.3056) < 0.02
    assert abs(by_name["DrugBank"]["density"] - 0.1316) < 0.02
    assert by_name["DrugBank"]["num_drugs"] > by_name["TWOSIDES"]["num_drugs"]
