"""Out-of-core + multi-process screening benchmark (and regression gate).

Exercises the two execution tiers PR 4 adds on top of the blockwise/sharded
screening engine:

- **Memory-mapped shard store** (``repro.serving.store``): the catalog's
  embedding rows and precomputed candidate projections persisted as raw
  per-shard ``.npy`` files plus a JSON manifest, reopened with
  ``np.load(..., mmap_mode="r")`` so screening streams candidate blocks
  from disk.  Peak *heap* allocations during a screen must stay
  O(block + k) — a small fraction of the store's bytes — which is what
  lets a catalog (projections included) larger than RAM flow through the
  engine.  (The mapped file pages themselves live in the OS page cache
  and are reclaimable; the gate measures traced allocations, like the
  engine's existing memory gate.)
- **Parallel shard executor** (``repro.serving.executor``): per-shard
  streaming top-k fanned out to a process pool whose workers open shards
  by manifest path (no catalog array is ever pickled), reduced with the
  engine's deterministic cross-shard merge.

Gates (exit non-zero on violation, so CI can run ``--quick`` as a guard):

1. **Bitwise parity**: for every tested (num_shards, block_size,
   num_workers) plan — serial in-memory, serial memory-mapped, and
   multi-process — ``screen`` / ``screen_batch`` return identical
   ``(indices, probabilities)``.  Always on, including ``--quick``.
2. **Out-of-core memory**: peak traced allocation while screening the
   memory-mapped catalog < 1/10 of the store's bytes on disk (i.e.
   O(block + k), not O(catalog)).
3. **Multi-worker speedup**: the process pool beats the serial engine on
   the same store by the floor.  Skipped (reported only) when
   ``os.cpu_count() < 2`` — a single-core box cannot demonstrate it.

    PYTHONPATH=src python benchmarks/bench_parallel_screening.py
    PYTHONPATH=src python benchmarks/bench_parallel_screening.py --quick
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.core.decoder import MLPDecoder, make_screen_kernel
from repro.serving import (DDIScreeningService, ParallelShardExecutor,
                           ShardStore, exact_score_fn)


def _timeit(fn, repeats: int) -> float:
    """Median seconds per call over ``repeats`` timed runs (1 warmup)."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _peak_bytes(fn) -> int:
    """Peak traced allocation while running ``fn`` once."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _rss_kb() -> int | None:
    """Current VmRSS in KiB (linux), for the informational report."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def _hits(results) -> list[list[tuple[int, float]]]:
    return [[(h.index, h.probability) for h in hits] for hits in results]


def check_service_parity(num_drugs: int, hidden_dim: int, top_k: int,
                         max_workers: int, seed: int,
                         failures: list[str]) -> None:
    """Gate 1: every execution plan returns bitwise-identical hits."""
    rng = np.random.default_rng(seed)
    corpus = [r.smiles for r in
              MoleculeGenerator(seed=seed).generate_corpus(num_drugs)]
    config = HyGNNConfig(parameter=4, embed_dim=hidden_dim,
                         hidden_dim=hidden_dim, seed=seed)
    model, _, builder = HyGNN.for_corpus(corpus, config)
    model.eval()
    service = DDIScreeningService(model, builder, corpus, block_size=64)
    queries = [int(q) for q in
               rng.choice(num_drugs, size=min(8, num_drugs), replace=False)]
    exclude = (int(rng.integers(num_drugs)), int(rng.integers(num_drugs)))
    reference = _hits(service.screen_batch(queries, top_k=top_k,
                                           exclude=exclude))
    ref_single = _hits([service.screen(queries[0], top_k=top_k,
                                       symmetric=True)])[0]

    plans = [(1, 64, 2), (3, 37, 2), (5, 17, max_workers),
             (4, num_drugs + 10, max_workers)]
    for num_shards, block_size, workers in plans:
        with tempfile.TemporaryDirectory() as tmp:
            service.save_shards(tmp, num_shards=num_shards)
            if not service.open_shards(tmp, num_workers=workers):
                failures.append(f"open_shards refused its own store "
                                f"(shards={num_shards})")
                continue
            service.block_size = block_size
            label = (f"shards={num_shards}, block={block_size}, "
                     f"workers={workers}")
            mapped = _hits(service.screen_batch(queries, top_k=top_k,
                                                exclude=exclude,
                                                parallel=False))
            if mapped != reference:
                failures.append(f"mmap serial diverges ({label})")
            if workers > 1:
                parallel = _hits(service.screen_batch(queries, top_k=top_k,
                                                      exclude=exclude,
                                                      parallel=True))
                if parallel != reference:
                    failures.append(f"process pool diverges ({label})")
                single = _hits([service.screen(queries[0], top_k=top_k,
                                               symmetric=True,
                                               parallel=True)])[0]
                if single != ref_single:
                    failures.append(f"symmetric parallel screen diverges "
                                    f"({label})")
            service.close()
    plan_count = len(plans)
    print(f"parity: {plan_count} (shards, block, workers) plans x "
          f"{len(queries)} queries vs serial in-memory engine — "
          f"{'OK' if not failures else 'FAILED'}")


def build_synthetic_store(root: Path, num_rows: int, dim: int,
                          num_shards: int, block_size: int, seed: int):
    """A large random catalog + MLP projections persisted as a shard store.

    Synthetic embeddings keep the out-of-core and speedup phases
    independent of corpus generation/encoding cost — the screening engine
    only ever sees (embeddings, projections) arrays.
    """
    rng = np.random.default_rng(seed)
    decoder = MLPDecoder(dim, dim, np.random.default_rng(seed))
    embeddings = rng.standard_normal((num_rows, dim))
    projections = decoder.candidate_projections(embeddings)
    manifest = ShardStore.save(root, embeddings, projections,
                               num_shards=num_shards, block_size=block_size)
    queries = embeddings[rng.choice(num_rows, size=16, replace=False)]
    query_proj = decoder.project_queries(queries, sides=("as_left",))
    kernel = make_screen_kernel(decoder)
    return manifest, kernel, query_proj, len(queries)


def run(num_drugs: int, hidden_dim: int, top_k: int, store_rows: int,
        store_dim: int, num_shards: int, block_size: int, num_workers: int,
        repeats: int, min_speedup: float, seed: int = 0) -> int:
    failures: list[str] = []
    cpus = os.cpu_count() or 1
    # More workers than shards is pure overhead; otherwise honor the flag
    # (the pool paths run — and are parity-checked — even on 1 cpu).
    num_workers = min(num_workers, num_shards)

    # ------------------------------------------------------------------
    # 1: bitwise parity of every execution plan (always gated)
    # ------------------------------------------------------------------
    print(f"building {num_drugs}-drug catalog (hidden_dim={hidden_dim}) "
          f"for the parity gate ...", flush=True)
    check_service_parity(num_drugs, hidden_dim, top_k, num_workers, seed,
                         failures)

    # ------------------------------------------------------------------
    # 2 + 3: out-of-core memory and multi-worker speedup on a synthetic
    # store big enough to measure ({store_rows} x {store_dim}).
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        print(f"writing synthetic shard store ({store_rows} x {store_dim}, "
              f"{num_shards} shards) ...", flush=True)
        manifest, kernel, query_proj, num_queries = build_synthetic_store(
            Path(tmp), store_rows, store_dim, num_shards, block_size, seed)
        store = ShardStore(manifest)
        store_mb = store.nbytes() / 1e6
        catalog = store.catalog(block_size)
        score = exact_score_fn(kernel, query_proj)

        def serial_screen():
            return catalog.screen(score, num_queries, top_k)

        mmap_peak = _peak_bytes(serial_screen)
        if mmap_peak >= store.nbytes() / 10:
            failures.append(
                f"mmap screen peak {mmap_peak / 1e6:.2f} MB not < 1/10 of "
                f"the {store_mb:.1f} MB store — not O(block + k)")

        executor = ParallelShardExecutor(store, num_workers=num_workers)

        def parallel_screen():
            return executor.screen(kernel, query_proj, num_queries, top_k,
                                   block_size=block_size)

        if _hits_raw(parallel_screen()) != _hits_raw(serial_screen()):
            failures.append("executor results diverge from the serial "
                            "mmap engine on the synthetic store")
        serial_s = _timeit(serial_screen, repeats)
        parallel_s = _timeit(parallel_screen, repeats)
        executor.close()
        speedup = serial_s / parallel_s

    width = 56
    rss = _rss_kb()
    print()
    print(f"{'benchmark':{width}s} {'value':>14s}")
    print("-" * (width + 15))
    rows = [
        (f"synthetic store on disk ({store_rows} x {store_dim}, "
         f"{num_shards} shards)", f"{store_mb:9.1f} MB"),
        (f"mmap serial screen ({num_queries} queries, block={block_size})",
         f"{serial_s * 1e3:9.1f} ms"),
        (f"process pool screen ({num_workers} workers)",
         f"{parallel_s * 1e3:9.1f} ms"),
        ("mmap screen peak traced allocation",
         f"{mmap_peak / 1e6:9.2f} MB"),
    ]
    if rss is not None:
        rows.append(("process RSS after all phases (informational)",
                     f"{rss / 1024:9.1f} MB"))
    for label, value in rows:
        print(f"{label:{width}s} {value}")
    print("-" * (width + 15))
    gated = cpus >= 2 and num_workers >= 2
    gate = "gated" if gated else (f"skipped: {cpus} cpu" if cpus < 2
                                  else f"skipped: {num_workers} worker")
    print(f"{'multi-worker speedup':{width}s} {speedup:9.2f} x   "
          f"(floor {min_speedup:.2f}x, {gate})")
    if gated and speedup < min_speedup:
        failures.append(f"speedup {speedup:.2f}x below {min_speedup:.2f}x "
                        f"with {num_workers} workers on {cpus} cpus")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


def _hits_raw(results) -> list[tuple[list[int], list[float]]]:
    return [(indices.tolist(), scores.tolist())
            for indices, scores in results]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized run (smaller store, lower floor)")
    parser.add_argument("--drugs", type=int, default=None,
                        help="parity-gate catalog size "
                             "(default: 800, quick: 260)")
    parser.add_argument("--hidden-dim", type=int, default=None,
                        help="parity-gate embedding width "
                             "(default: 64, quick: 16)")
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--store-rows", type=int, default=None,
                        help="synthetic store rows "
                             "(default: 120000, quick: 24000)")
    parser.add_argument("--store-dim", type=int, default=None,
                        help="synthetic store width (default: 64, quick: 32)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--block-size", type=int, default=2048)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions (default: 10, quick: 4)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="failure floor (default: 1.4, quick: 1.1)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if args.top_k < 1:
        parser.error("--top-k must be >= 1")
    if args.shards < 1 or args.block_size < 1 or args.workers < 1:
        parser.error("--shards, --block-size, --workers must be >= 1")
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.drugs is not None and args.drugs < 10:
        parser.error("--drugs must be >= 10")
    if args.store_rows is not None and args.store_rows < 100:
        parser.error("--store-rows must be >= 100")
    def default(value, quick, full):
        return (quick if args.quick else full) if value is None else value

    num_drugs = default(args.drugs, 260, 800)
    hidden_dim = default(args.hidden_dim, 16, 64)
    store_rows = default(args.store_rows, 24000, 120000)
    store_dim = default(args.store_dim, 32, 64)
    repeats = default(args.repeats, 4, 10)
    # `--min-speedup 0` is the explicit way to disable the speedup gate.
    min_speedup = default(args.min_speedup, 1.1, 1.4)
    return run(num_drugs, hidden_dim, args.top_k, store_rows, store_dim,
               args.shards, args.block_size, args.workers, repeats,
               min_speedup, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
