"""Benchmark: Table V — full model comparison on TWOSIDES.

Shape assertions (who wins), not absolute numbers: the substrate is a
synthetic corpus on CPU, not the authors' testbed.
"""

from conftest import run_once

from repro.experiments import run_table5


def test_bench_table5(benchmark, profile):
    result = run_once(benchmark, run_table5, profile)
    result.show()
    by_model = {r["model"]: r for r in result.rows}

    hygnn_mlp_best = max(by_model["hygnn-kmer-mlp"]["ROC-AUC"],
                         by_model["hygnn-espf-mlp"]["ROC-AUC"])
    baselines = [r for r in result.rows if not r["model"].startswith("hygnn")]
    # HyGNN (MLP) is at or near the top of the structure-only models.  The
    # fast profile's test split holds only ~60 pairs, so rankings carry
    # several points of sampling noise, and Decagon sees privileged
    # relational data (train DDIs + proteins) that shines on tiny corpora.
    # The strict HyGNN-leads-everything ordering is verified at the default
    # profile and recorded in EXPERIMENTS.md.
    structure_only = [b for b in baselines if b["model"] != "decagon"]
    assert hygnn_mlp_best >= max(b["ROC-AUC"] for b in structure_only) - 5.0
    # MLP decoder >= dot decoder within each substructure method.
    assert (by_model["hygnn-kmer-mlp"]["F1"]
            >= by_model["hygnn-kmer-dot"]["F1"] - 2.0)
    # All models beat chance decisively.
    assert all(r["ROC-AUC"] > 55 for r in result.rows)
