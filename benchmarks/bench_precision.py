"""Precision-tier benchmark: float32 serving, sketch prefilter, int8 store.

The screening engine's exact float64 path is the accuracy reference; this
script measures what each precision dial buys and verifies the accuracy
gates that make the dials safe to turn:

1. **float32 serving** (``precision="float32"``): embeddings, decoder
   weights, and candidate projections downcast once at cache-build time;
   the whole blockwise screen runs float32, halving memory bandwidth on
   the GEMM-bound hot loop.  Gate: batched screens at least
   ``--min-f32-speedup`` faster than float64 with top-k rank agreement
   >= ``--min-agreement`` against the float64 reference.
2. **MLP sketch prefilter** (``approx=True``): shortlists via a low-rank
   sketch GEMM over the split-weight operands, then exact-reranks
   ``top_k * oversample`` survivors.  Gate: at least
   ``--min-approx-speedup`` faster than the exact screen with
   recall@k >= ``--min-recall``.
3. **int8 shard store** (``save_shards(quantize="int8")``): symmetric
   per-column-scaled int8 shards feeding the mmap prefilter, with the
   shortlist reranked against exact in-memory rows.  Gates: store size
   <= ``--max-size-fraction`` of the float64 store and
   recall@k >= ``--min-recall`` against the exact screen.

Measured numbers are written to a machine-readable ``BENCH_precision.json``
(``BENCH_precision_quick.json`` under ``--quick``) so the perf trajectory
is tracked across PRs.

    PYTHONPATH=src python benchmarks/bench_precision.py          # full gate
    PYTHONPATH=src python benchmarks/bench_precision.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.serving import DDIScreeningService, ShardStore, rank_agreement

def _timeit(fn, repeats: int) -> float:
    """Median seconds per call over ``repeats`` timed runs (1 warmup)."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _index_lists(batch_hits) -> list[list[int]]:
    return [[h.index for h in hits] for hits in batch_hits]


def _mean_agreement(reference: list[list[int]],
                    candidate: list[list[int]]) -> float:
    return float(np.mean([rank_agreement(r, c)
                          for r, c in zip(reference, candidate)]))


def run(num_drugs: int, hidden_dim: int, top_k: int, num_queries: int,
        oversample: int, repeats: int, min_f32_speedup: float,
        min_approx_speedup: float, min_agreement: float, min_recall: float,
        max_size_fraction: float, output: str, seed: int = 0) -> int:
    rng = np.random.default_rng(seed)
    print(f"generating {num_drugs}-drug catalog "
          f"(hidden_dim={hidden_dim}) ...", flush=True)
    corpus = [r.smiles for r in
              MoleculeGenerator(seed=seed).generate_corpus(num_drugs)]
    config = HyGNNConfig(parameter=4, embed_dim=hidden_dim,
                         hidden_dim=hidden_dim, seed=seed)
    model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
    model.eval()
    print(f"hypergraph: {hypergraph}")
    queries = [int(q) for q in
               rng.choice(num_drugs, size=num_queries, replace=False)]
    failures: list[str] = []

    # ------------------------------------------------------------------
    # Reference: exact float64 screens (MLP decoder, the paper's best)
    # ------------------------------------------------------------------
    # auto_refresh=False: frozen-weights serving, the deployment
    # configuration every tier is meant to be measured in (the
    # per-call weights fingerprint otherwise dilutes each ratio).
    exact = DDIScreeningService(model, builder, corpus,
                                auto_refresh=False)
    print("encoding float64 reference cache ...", flush=True)
    reference = _index_lists(exact.screen_batch(queries, top_k=top_k))
    f64_s = _timeit(lambda: exact.screen_batch(queries, top_k=top_k),
                    repeats)

    # ------------------------------------------------------------------
    # 1: float32 serving tier
    # ------------------------------------------------------------------
    low = DDIScreeningService(model, builder, corpus,
                              precision="float32",
                              auto_refresh=False)
    print("encoding float32 serving cache ...", flush=True)
    f32_hits = _index_lists(low.screen_batch(queries, top_k=top_k))
    f32_s = _timeit(lambda: low.screen_batch(queries, top_k=top_k), repeats)
    f32_speedup = f64_s / f32_s
    f32_agreement = _mean_agreement(reference, f32_hits)
    if f32_speedup < min_f32_speedup:
        failures.append(f"float32 speedup {f32_speedup:.2f}x below the "
                        f"{min_f32_speedup}x floor")
    if f32_agreement < min_agreement:
        failures.append(f"float32 rank agreement {f32_agreement:.4f} below "
                        f"{min_agreement}")

    # ------------------------------------------------------------------
    # 2: MLP sketch prefilter on the float32 tier (exact rerank)
    # ------------------------------------------------------------------
    # Tiers compose: the shortlist pass and the exact rerank both run in
    # the float32 serving tier; recall is still judged against the exact
    # float64 reference ranking.
    approx_hits = _index_lists(low.screen_batch(
        queries, top_k=top_k, approx=True, approx_oversample=oversample))
    approx_s = _timeit(
        lambda: low.screen_batch(queries, top_k=top_k, approx=True,
                                 approx_oversample=oversample), repeats)
    approx_speedup = f64_s / approx_s
    approx_recall = _mean_agreement(reference, approx_hits)
    if approx_speedup < min_approx_speedup:
        failures.append(f"sketch-prefilter speedup {approx_speedup:.2f}x "
                        f"below the {min_approx_speedup}x floor")
    if approx_recall < min_recall:
        failures.append(f"sketch-prefilter recall@{top_k} "
                        f"{approx_recall:.4f} below {min_recall}")

    # ------------------------------------------------------------------
    # 3: int8 shard store (mmap prefilter + exact rerank)
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        exact_store = ShardStore(
            exact.save_shards(Path(tmp) / "exact", num_shards=4))
        # The int8 store is saved from (and attached to) the float32 tier;
        # its size gate compares against the full float64 store.
        int8_manifest = low.save_shards(Path(tmp) / "int8", num_shards=4,
                                        quantize="int8")
        int8_store = ShardStore(int8_manifest)
        size_fraction = int8_store.nbytes() / exact_store.nbytes()
        if not low.open_shards(int8_manifest, strict=True):
            failures.append("int8 store failed to attach")
        int8_hits = _index_lists(low.screen_batch(
            queries, top_k=top_k, approx=True, approx_oversample=oversample))
        int8_s = _timeit(
            lambda: low.screen_batch(queries, top_k=top_k, approx=True,
                                     approx_oversample=oversample),
            repeats)
        int8_recall = _mean_agreement(reference, int8_hits)
        exact_bytes, int8_bytes = exact_store.nbytes(), int8_store.nbytes()
    if size_fraction > max_size_fraction:
        failures.append(f"int8 store is {size_fraction:.3f} of the float64 "
                        f"store; gate is <= {max_size_fraction:.3f}")
    if int8_recall < min_recall:
        failures.append(f"int8-prefilter recall@{top_k} {int8_recall:.4f} "
                        f"below {min_recall}")

    width = 52
    per_query = 1e3 / num_queries
    print()
    print(f"{'tier (' + str(num_drugs) + ' drugs, ' + str(num_queries) + ' queries, top-' + str(top_k) + ')':{width}s} "
          f"{'ms/query':>10s} {'speedup':>9s} {'accuracy':>9s}")
    print("-" * (width + 31))
    rows = [
        ("exact float64 (reference)", f64_s, 1.0, 1.0),
        ("float32 serving", f32_s, f32_speedup, f32_agreement),
        ("float32 + sketch prefilter + exact rerank", approx_s,
         approx_speedup, approx_recall),
        ("float32 + int8 store prefilter + exact rerank", int8_s,
         f64_s / int8_s, int8_recall),
    ]
    for label, seconds, speedup, accuracy in rows:
        print(f"{label:{width}s} {seconds * per_query:9.3f}  {speedup:8.2f}x "
              f"{accuracy:8.2%}")
    print("-" * (width + 31))
    print(f"{'int8 store size vs float64 store':{width}s} "
          f"{int8_bytes / 1e6:9.2f} MB vs {exact_bytes / 1e6:.2f} MB "
          f"({size_fraction:.3f}, gate <= {max_size_fraction:.3f})")

    results = {
        "config": {
            "num_drugs": num_drugs,
            "hidden_dim": hidden_dim,
            "top_k": top_k,
            "num_queries": num_queries,
            "oversample": oversample,
            "repeats": repeats,
            "seed": seed,
        },
        "screen_ms": {
            "float64": f64_s * 1000,
            "float32": f32_s * 1000,
            "sketch_approx": approx_s * 1000,
            "int8_approx": int8_s * 1000,
        },
        "float32": {"speedup": f32_speedup, "rank_agreement": f32_agreement},
        "sketch": {"speedup": approx_speedup, "recall": approx_recall},
        "int8": {"speedup": f64_s / int8_s, "recall": int8_recall,
                 "store_bytes": int8_bytes, "float64_store_bytes": exact_bytes,
                 "size_fraction": size_fraction},
        "gates": {
            "min_f32_speedup": min_f32_speedup,
            "min_approx_speedup": min_approx_speedup,
            "min_agreement": min_agreement,
            "min_recall": min_recall,
            "max_size_fraction": max_size_fraction,
        },
        "failures": failures,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized smoke run with relaxed timing floors")
    parser.add_argument("--drugs", type=int, default=None,
                        help="catalog size (default: 2000, quick: 400)")
    parser.add_argument("--hidden-dim", type=int, default=None,
                        help="embedding width (default: 128, quick: 64)")
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--queries", type=int, default=None,
                        help="query-batch size (default: 16, quick: 8)")
    parser.add_argument("--oversample", type=int, default=8,
                        help="approx shortlist factor (default: 8)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions (default: 10, quick: 3)")
    parser.add_argument("--min-f32-speedup", type=float, default=None)
    parser.add_argument("--min-approx-speedup", type=float, default=None)
    parser.add_argument("--min-agreement", type=float, default=0.99)
    parser.add_argument("--min-recall", type=float, default=0.95)
    parser.add_argument("--max-size-fraction", type=float, default=1 / 6)
    # --quick writes to a separate file by default so a smoke run never
    # clobbers the committed full-gate record.
    parser.add_argument("--output", default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if args.top_k < 1:
        parser.error("--top-k must be >= 1")
    if args.oversample < 1:
        parser.error("--oversample must be >= 1")
    if args.quick:
        # CI smoke: small enough to finish in seconds.  Timing floors are
        # loose — shared runners are variance-prone and small catalogs
        # amortise BLAS less — but the accuracy and size gates stay at
        # full strength (they do not depend on machine speed).
        defaults = {"drugs": 400, "hidden_dim": 64, "queries": 8,
                    "repeats": 3, "min_f32_speedup": 0.7,
                    "min_approx_speedup": 1.2}
    else:
        defaults = {"drugs": 2000, "hidden_dim": 128, "queries": 16,
                    "repeats": 10, "min_f32_speedup": 1.5,
                    "min_approx_speedup": 3.0}

    def resolve(name):
        value = getattr(args, name)
        return defaults[name] if value is None else value

    output = args.output or ("BENCH_precision_quick.json" if args.quick
                             else "BENCH_precision.json")
    return run(
        num_drugs=resolve("drugs"),
        hidden_dim=resolve("hidden_dim"),
        top_k=args.top_k,
        num_queries=resolve("queries"),
        oversample=args.oversample,
        repeats=resolve("repeats"),
        min_f32_speedup=resolve("min_f32_speedup"),
        min_approx_speedup=resolve("min_approx_speedup"),
        min_agreement=args.min_agreement,
        min_recall=args.min_recall,
        max_size_fraction=args.max_size_fraction,
        output=output,
        seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
