"""Benchmark: Fig. 4 — performance vs training fraction."""

from conftest import run_once

from repro.experiments import run_fig4


def test_bench_fig4(benchmark, profile):
    result = run_once(benchmark, run_fig4, profile,
                      fractions=(0.2, 0.8),
                      models=("node2vec", "caster", "hygnn-kmer-mlp"))
    result.show()
    rows = result.rows
    assert len(rows) == 6

    def auc(model, fraction):
        return next(r["ROC-AUC"] for r in rows
                    if r["model"] == model and r["train_fraction"] == fraction)

    # HyGNN at the full 80% training budget is at or near the top (strict
    # ordering is a default-profile claim; see EXPERIMENTS.md).
    assert auc("hygnn-kmer-mlp", 0.8) >= auc("node2vec", 0.8) - 5.0
    # Everything stays above chance even at 20% training data.
    assert all(r["ROC-AUC"] > 52 for r in rows)
