"""Benchmark fixtures.

Each benchmark regenerates one paper artifact at the ``fast`` profile
(seconds-scale) and prints the measured-vs-paper table.  ``pedantic`` with a
single round is used throughout: these are end-to-end experiment pipelines,
not micro-benchmarks, and re-running them many times would multiply minutes
of training for no statistical gain.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

import pytest

from repro.experiments import FAST


@pytest.fixture(scope="session")
def profile():
    return FAST


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
