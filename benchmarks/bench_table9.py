"""Benchmark: Table IX — cold-start prediction for new drugs."""

from conftest import run_once

from repro.experiments import run_table9


def test_bench_table9(benchmark, profile):
    result = run_once(benchmark, run_table9, profile)
    result.show()
    for row in result.rows:
        # Far above chance despite the drugs being entirely unseen.
        assert row["ROC-AUC"] > 60
