"""Benchmark: Table VI — full model comparison on DrugBank."""

from conftest import run_once

from repro.experiments import run_table6


def test_bench_table6(benchmark, profile):
    result = run_once(benchmark, run_table6, profile)
    result.show()
    models = {r["model"] for r in result.rows}
    # Decagon is excluded for DrugBank, as in the paper.
    assert "decagon" not in models
    by_model = {r["model"]: r for r in result.rows}
    hygnn_best = max(by_model["hygnn-kmer-mlp"]["ROC-AUC"],
                     by_model["hygnn-espf-mlp"]["ROC-AUC"])
    baselines = [r for r in result.rows if not r["model"].startswith("hygnn")]
    # Near-top at the fast profile; strict ordering is checked at the
    # default profile (EXPERIMENTS.md) — see bench_table5 for rationale.
    assert hygnn_best >= max(b["ROC-AUC"] for b in baselines) - 5.0
    assert all(r["ROC-AUC"] > 55 for r in result.rows)
