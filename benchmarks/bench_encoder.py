"""Encoder-kernel benchmark: fused segment-attention vs the unfused path.

The HyGNN encoder's two attention levels (Eqs. 4-9) are the shared hot path
of training epochs, corpus cold-start encodes, and every experiment sweep.
The fused ``incidence_scores`` / ``segment_attend`` kernels stream the
incidence entries through O(block · d) scratch instead of materialising
five ``(nnz, d)`` intermediates per level, while preserving the unfused
summation order exactly.

This script gates all four claims at a DrugBank-scale synthetic hypergraph
(~2k drugs, ~50k incidences, hidden 128) and exits non-zero on any failure:

1. full-corpus eval-mode encode at least ``--min-encode-speedup`` (2x)
   faster fused than unfused;
2. a taped training epoch (encoder + MLP pair decoder + BCE, forward +
   backward replay) at least ``--min-epoch-speedup`` (1.5x) faster on the
   fused tape than on the unfused tape;
3. peak traced memory of a fused encode below 1/3 of the unfused encode's
   (tracemalloc over the whole eager encode; the persistent (V, d)/(E, d)
   outputs are identical in both modes, so the ratio is driven entirely by
   the intermediates each path allocates);
4. fused eval-mode embeddings bitwise-identical to the unfused (pre-PR)
   encoder, so serving caches and fingerprints are unaffected.

Measured numbers are written to a machine-readable ``BENCH_encoder.json``
so the perf trajectory is tracked across PRs.

    PYTHONPATH=src python benchmarks/bench_encoder.py          # full gate
    PYTHONPATH=src python benchmarks/bench_encoder.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc

import numpy as np

from repro.core import HyGNNEncoder, MLPDecoder, fused_kernels
from repro.hypergraph import Hypergraph
from repro.nn import Tape, bce_with_logits
from repro.nn import functional as F


def make_hypergraph(num_drugs: int, num_substructures: int,
                    incidences: int, seed: int) -> Hypergraph:
    """Random DrugBank-shaped incidence: every drug keeps >= 1 substructure."""
    rng = np.random.default_rng(seed)
    node_ids = np.concatenate([
        rng.integers(0, num_substructures, size=incidences),
        rng.integers(0, num_substructures, size=num_drugs)])
    edge_ids = np.concatenate([
        rng.integers(0, num_drugs, size=incidences),
        np.arange(num_drugs)])
    return Hypergraph(num_substructures, num_drugs, node_ids, edge_ids)


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _peak_bytes(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _epoch_tape(encoder, hypergraph, pairs, labels, decoder) -> Tape:
    """One training step — encode, score shuffled pairs, BCE — as a tape."""
    def step():
        embeddings = encoder.encode_hypergraph(hypergraph)
        left = F.gather_rows(embeddings, pairs[:, 0])
        right = F.gather_rows(embeddings, pairs[:, 1])
        return bce_with_logits(decoder(left, right), labels)
    return Tape.record(step)


def run(num_drugs: int, num_substructures: int, incidences: int,
        hidden_dim: int, num_pairs: int, repeats: int,
        min_encode_speedup: float, min_epoch_speedup: float,
        max_scratch_fraction: float, output: str, seed: int = 0) -> int:
    print(f"building synthetic hypergraph: {num_drugs} drugs, "
          f"{num_substructures} substructures, ~{incidences} incidences ...",
          flush=True)
    hypergraph = make_hypergraph(num_drugs, num_substructures, incidences,
                                 seed)
    print(f"  {hypergraph}")
    rng = np.random.default_rng(seed + 1)
    encoder = HyGNNEncoder(num_substructures, embed_dim=hidden_dim,
                           hidden_dim=hidden_dim,
                           rng=np.random.default_rng(seed + 2), dropout=0.0)
    encoder.eval()
    pairs = rng.integers(0, num_drugs, size=(num_pairs, 2))
    labels = rng.integers(0, 2, size=num_pairs).astype(np.float64)
    decoder = MLPDecoder(hidden_dim, hidden_dim, np.random.default_rng(seed + 3))

    # 1 + 4: eval-mode encode speed and bitwise parity.  The unfused path is
    # the pre-PR encoder op-for-op, so fused == unfused here implies serving
    # caches and weight fingerprints are unaffected.
    print(f"timing full-corpus encode (best of {repeats}) ...", flush=True)
    with fused_kernels(False):
        unfused_s = _best_seconds(
            lambda: encoder.encode_hypergraph(hypergraph), repeats)
        reference = encoder.encode_hypergraph(hypergraph).numpy().copy()
    with fused_kernels(True):
        fused_s = _best_seconds(
            lambda: encoder.encode_hypergraph(hypergraph), repeats)
        fused = encoder.encode_hypergraph(hypergraph).numpy().copy()
    encode_speedup = unfused_s / fused_s
    bitwise = bool(np.array_equal(reference, fused))

    # 2: taped train epoch (forward + backward replay), fused vs unfused tape.
    print("timing taped train epochs ...", flush=True)
    encoder.train()

    def epoch(tape):
        tape.forward()
        tape.backward()

    with fused_kernels(False):
        unfused_tape = _epoch_tape(encoder, hypergraph, pairs, labels, decoder)
        unfused_epoch_s = _best_seconds(lambda: epoch(unfused_tape), repeats)
    with fused_kernels(True):
        fused_tape = _epoch_tape(encoder, hypergraph, pairs, labels, decoder)
        fused_epoch_s = _best_seconds(lambda: epoch(fused_tape), repeats)
    epoch_speedup = unfused_epoch_s / fused_epoch_s
    loss_drift = abs(unfused_tape.root.item() - fused_tape.root.item())

    # 3: peak scratch of one eval encode (eager, so every intermediate is a
    # fresh traced allocation; the (V, d)/(E, d) outputs are common to both).
    print("measuring peak encode scratch (tracemalloc) ...", flush=True)
    encoder.eval()
    with fused_kernels(False):
        unfused_peak = _peak_bytes(
            lambda: encoder.encode_hypergraph(hypergraph))
    with fused_kernels(True):
        fused_peak = _peak_bytes(
            lambda: encoder.encode_hypergraph(hypergraph))

    print(f"\n  encode: unfused {unfused_s * 1000:8.1f} ms   fused "
          f"{fused_s * 1000:8.1f} ms   speedup {encode_speedup:5.2f}x  "
          f"(gate: >= {min_encode_speedup}x)")
    print(f"  taped epoch: unfused {unfused_epoch_s * 1000:8.1f} ms   fused "
          f"{fused_epoch_s * 1000:8.1f} ms   speedup {epoch_speedup:5.2f}x  "
          f"(gate: >= {min_epoch_speedup}x)")
    print(f"  peak encode scratch: unfused {unfused_peak / 1e6:8.2f} MB   "
          f"fused {fused_peak / 1e6:8.2f} MB  "
          f"(gate: fused < unfused * {max_scratch_fraction})")
    print(f"  eval-mode embeddings bitwise-identical: {bitwise}")
    print(f"  taped-epoch loss drift (summation-order only): {loss_drift:.2e}")

    failures = []
    if not bitwise:
        failures.append("fused embeddings are not bitwise-identical to the "
                        "unfused encoder")
    if encode_speedup < min_encode_speedup:
        failures.append(f"encode speedup {encode_speedup:.2f}x below the "
                        f"{min_encode_speedup}x floor")
    if epoch_speedup < min_epoch_speedup:
        failures.append(f"taped-epoch speedup {epoch_speedup:.2f}x below "
                        f"the {min_epoch_speedup}x floor")
    if fused_peak >= unfused_peak * max_scratch_fraction:
        failures.append(f"fused peak scratch {fused_peak / 1e6:.2f} MB not "
                        f"< {max_scratch_fraction} of unfused "
                        f"{unfused_peak / 1e6:.2f} MB")
    for failure in failures:
        print(f"  FAIL: {failure}")
    if not failures:
        print("  OK")

    results = {
        "config": {
            "num_drugs": num_drugs,
            "num_substructures": num_substructures,
            "num_incidences": hypergraph.num_incidences,
            "hidden_dim": hidden_dim,
            "num_pairs": num_pairs,
            "repeats": repeats,
            "seed": seed,
        },
        "encode_ms": {"unfused": unfused_s * 1000, "fused": fused_s * 1000},
        "encode_speedup": encode_speedup,
        "taped_epoch_ms": {"unfused": unfused_epoch_s * 1000,
                           "fused": fused_epoch_s * 1000},
        "taped_epoch_speedup": epoch_speedup,
        "peak_encode_bytes": {"unfused": unfused_peak, "fused": fused_peak},
        "bitwise_identical": bitwise,
        "gates": {
            "min_encode_speedup": min_encode_speedup,
            "min_epoch_speedup": min_epoch_speedup,
            "max_scratch_fraction": max_scratch_fraction,
        },
        "failures": failures,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"  wrote {output}")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized smoke run with relaxed floors")
    parser.add_argument("--drugs", type=int, default=None)
    parser.add_argument("--substructures", type=int, default=None)
    parser.add_argument("--incidences", type=int, default=None)
    parser.add_argument("--hidden", type=int, default=None)
    parser.add_argument("--pairs", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--min-encode-speedup", type=float, default=None)
    parser.add_argument("--min-epoch-speedup", type=float, default=None)
    # --quick writes to a separate file by default so a smoke run never
    # clobbers the committed full-gate record.
    parser.add_argument("--output", default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if args.output is None:
        args.output = ("BENCH_encoder_quick.json" if args.quick
                       else "BENCH_encoder.json")
    if args.quick:
        # CI smoke: small enough to finish in seconds; timing floors loose —
        # shared runners are variance-prone and small graphs amortise the
        # python-level blocking loop less.  Parity and memory gates stay on.
        defaults = {"drugs": 400, "substructures": 500, "incidences": 8_000,
                    "hidden": 64, "pairs": 4_000, "repeats": 3,
                    "min_encode_speedup": 1.2, "min_epoch_speedup": 1.05,
                    "max_scratch_fraction": 1 / 2}
    else:
        defaults = {"drugs": 2_000, "substructures": 1_500,
                    "incidences": 50_000, "hidden": 128, "pairs": 20_000,
                    "repeats": 5, "min_encode_speedup": 2.0,
                    "min_epoch_speedup": 1.5, "max_scratch_fraction": 1 / 3}
    def resolve(name):
        value = getattr(args, name)
        return defaults[name] if value is None else value

    return run(
        num_drugs=resolve("drugs"),
        num_substructures=resolve("substructures"),
        incidences=resolve("incidences"),
        hidden_dim=resolve("hidden"),
        num_pairs=resolve("pairs"),
        repeats=resolve("repeats"),
        min_encode_speedup=resolve("min_encode_speedup"),
        min_epoch_speedup=resolve("min_epoch_speedup"),
        max_scratch_fraction=defaults["max_scratch_fraction"],
        output=args.output,
        seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
