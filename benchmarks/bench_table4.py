"""Benchmark: Table IV — hyper-parameter grid search."""

from conftest import run_once

from repro.experiments import run_table4


def test_bench_table4(benchmark, profile):
    result = run_once(benchmark, run_table4, profile)
    result.show()
    assert len(result.rows) == 4  # reduced 2x2 grid
    assert sum(1 for r in result.rows if r["best"] == "*") == 1
    best = next(r for r in result.rows if r["best"] == "*")
    assert best["val_loss"] == min(r["val_loss"] for r in result.rows)
