"""Benchmark: Fig. 2 — performance vs ESPF frequency threshold.

The fast profile sweeps a 3-point threshold subset on TWOSIDES/MLP; the
default and full profiles cover the paper's complete 5x2x2 grid.
"""

from conftest import run_once

from repro.experiments import run_fig2


def test_bench_fig2(benchmark, profile):
    result = run_once(benchmark, run_fig2, profile,
                      thresholds=(5, 15, 25), datasets=("TWOSIDES",),
                      decoders=("mlp",))
    result.show()
    assert len(result.rows) == 3
    # Every threshold learns the task well above chance.  The paper's
    # threshold-5-wins ordering needs converged training; it is asserted
    # at the default profile (see EXPERIMENTS.md), not under the fast
    # profile's truncated budget where run-to-run noise dominates.
    assert all(r["ROC-AUC"] > 55 for r in result.rows)
    by_threshold = {r["parameter"]: r["ROC-AUC"] for r in result.rows}
    assert max(by_threshold.values()) - min(by_threshold.values()) < 30
