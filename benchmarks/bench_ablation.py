"""Benchmark: design-choice ablations (DESIGN.md Sec. 5)."""

from conftest import run_once

from repro.experiments import run_ablation


def test_bench_ablation(benchmark, profile):
    result = run_once(benchmark, run_ablation, profile)
    result.show()
    by_variant = {r["variant"]: r for r in result.rows}
    assert "hygnn (1 layer, attention)" in by_variant
    assert "mean-pool encoder (no attention)" in by_variant
    # All variants learn something.
    assert all(r["ROC-AUC"] > 55 for r in result.rows)
