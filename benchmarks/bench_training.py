"""Training-pipeline benchmark: compiled tape replay vs the eager trainer.

Measures per-epoch wall-clock time of three pipelines on a synthetic drug
corpus (dropout 0 so every pipeline is deterministically comparable):

- **eager**: the original closure-graph loop — re-traces the autograd graph
  every epoch and pays a *second* full corpus encode for the validation loss.
- **compiled**: ``Trainer`` with the replayable :class:`repro.nn.Tape` —
  records the epoch graph once, then every epoch is a replay into persistent
  buffers plus an Adam step; validation scores pairs from the epoch's cached
  embeddings through a decoder-only tape.
- **mini-batch**: the compiled encoder tape plus shuffled pair batches
  (gradient accumulation; informational row — it bounds memory, not time).

The compiled pipeline executes the *same arithmetic in the same order* as
the eager loop, so this doubles as a correctness gate: the script exits
non-zero unless (a) the eager and compiled train/val loss trajectories agree
to 1e-8 (they are bitwise-equal in practice), (b) final weights match, and
(c) the compiled pipeline is at least ``--min-speedup`` (default 3x) faster
per epoch:

    PYTHONPATH=src python benchmarks/bench_training.py          # full gate
    PYTHONPATH=src python benchmarks/bench_training.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.core.trainer import Trainer
from repro.data import random_split


def _fit_timed(corpus, pairs, labels, split, config, compiled):
    """Train one fresh model; returns (seconds/epoch, history, state_dict)."""
    model, hypergraph, _ = HyGNN.for_corpus(corpus, config)
    trainer = Trainer(model, config, compiled=compiled)
    start = time.perf_counter()
    history = trainer.fit(hypergraph, pairs, labels, split)
    elapsed = time.perf_counter() - start
    return elapsed / history.epochs_run, history, model.state_dict()


def run(num_drugs: int, num_pairs: int, epochs: int, min_speedup: float,
        batch_size: int, tolerance: float = 1e-8, seed: int = 0) -> int:
    rng = np.random.default_rng(seed)
    print(f"generating {num_drugs}-drug corpus ...", flush=True)
    corpus = [r.smiles for r in
              MoleculeGenerator(seed=seed).generate_corpus(num_drugs)]
    pairs = rng.integers(0, num_drugs, size=(num_pairs, 2))
    labels = rng.integers(0, 2, size=num_pairs).astype(np.float64)
    split = random_split(num_pairs, seed=seed)
    # dropout=0 makes eager and compiled bitwise-comparable end to end
    # (including validation); patience is effectively infinite so both run
    # the full epoch budget and timings are like for like.
    config = HyGNNConfig(parameter=4, dropout=0.0, epochs=epochs,
                         patience=10**9, seed=seed)

    print(f"training {epochs} epochs, {len(split.train)} train pairs ...",
          flush=True)
    eager_s, eager_hist, eager_state = _fit_timed(
        corpus, pairs, labels, split, config, compiled=False)
    compiled_s, compiled_hist, compiled_state = _fit_timed(
        corpus, pairs, labels, split, config, compiled=True)
    batch_s, batch_hist, _ = _fit_timed(
        corpus, pairs, labels, split,
        config.with_updates(batch_size=batch_size), compiled=True)

    speedup = eager_s / compiled_s
    train_drift = max(abs(a - b) for a, b in
                      zip(eager_hist.train_loss, compiled_hist.train_loss))
    val_drift = max(abs(a - b) for a, b in
                    zip(eager_hist.val_loss, compiled_hist.val_loss))
    weight_drift = max(np.abs(eager_state[k] - compiled_state[k]).max()
                       for k in eager_state)
    batch_drift = max(abs(a - b) for a, b in
                      zip(compiled_hist.train_loss, batch_hist.train_loss))

    print(f"\n  eager      {eager_s * 1000:8.1f} ms/epoch  (closure graph "
          f"+ validation re-encode)")
    print(f"  compiled   {compiled_s * 1000:8.1f} ms/epoch  (tape replay, "
          f"cached-embedding validation)")
    print(f"  mini-batch {batch_s * 1000:8.1f} ms/epoch  (B={batch_size}, "
          f"gradient accumulation)")
    print(f"  speedup    {speedup:8.2f}x  (gate: >= {min_speedup}x)")
    print(f"  train-loss drift {train_drift:.2e}, val-loss drift "
          f"{val_drift:.2e}, weight drift {weight_drift:.2e} "
          f"(gate: <= {tolerance})")
    print(f"  mini-batch train-loss drift {batch_drift:.2e} "
          f"(float summation order only)")

    failures = []
    if train_drift > tolerance or val_drift > tolerance:
        failures.append(f"loss trajectories drifted beyond {tolerance}")
    if weight_drift > tolerance:
        failures.append(f"final weights drifted beyond {tolerance}")
    if batch_drift > 1e-6:
        failures.append("mini-batch trajectory diverged from full batch")
    if speedup < min_speedup:
        failures.append(f"speedup {speedup:.2f}x below the "
                        f"{min_speedup}x floor")
    for failure in failures:
        print(f"  FAIL: {failure}")
    if not failures:
        print("  OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized smoke run with a relaxed floor")
    parser.add_argument("--drugs", type=int, default=None)
    parser.add_argument("--pairs", type=int, default=None)
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--min-speedup", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if args.quick:
        # CI smoke: small enough to finish in ~15 s, floor left loose — the
        # quick scale is variance-prone on shared runners; the full run
        # enforces the real 3x gate.
        defaults = {"drugs": 200, "pairs": 2000, "epochs": 6,
                    "min_speedup": 1.4}
    else:
        defaults = {"drugs": 400, "pairs": 4000, "epochs": 10,
                    "min_speedup": 3.0}
    return run(num_drugs=args.drugs or defaults["drugs"],
               num_pairs=args.pairs or defaults["pairs"],
               epochs=args.epochs or defaults["epochs"],
               min_speedup=(defaults["min_speedup"]
                            if args.min_speedup is None else args.min_speedup),
               batch_size=args.batch_size,
               seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
