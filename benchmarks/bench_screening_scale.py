"""Screening-engine benchmark: blockwise/sharded top-k vs the legacy path.

Compares two implementations of "screen one drug against the catalog":

- **legacy** (the pre-engine hot path): materialize a full ``(N, 2)`` pair
  array, push all N candidates through the decoder at once
  (``score_pairs`` -> gather + concat + full GEMM), then rank with a full
  O(N log N) stable argsort.  Per-query compute *and* memory are linear in
  the catalog with large constants.
- **engine** (``DDIScreeningService.screen``): candidate-side decoder
  projections precomputed once per (weights, catalog) version, candidates
  streamed in fixed-size blocks through blocking-invariant kernels with
  ``np.argpartition``-based top-k selection — peak scoring memory is
  O(block + k), and per-query FLOPs drop by ~the embedding dimension.

Gates (exit non-zero on violation, so CI can run it as a regression guard):

1. engine screen speedup >= the floor (5x at the default 2000-drug scale
   with ``hidden_dim=128``, a value from the paper's own search grid —
   the fast path's headline property is that per-query cost no longer
   scales with the embedding width, so the wider the model, the bigger
   the win; the ``hidden_dim=64`` ratio is also reported);
2. engine ranking identical to legacy, probabilities within 1e-9 for the
   MLP decoder and **bitwise** for the dot decoder (the MLP folded kernel
   is the same real-valued function as the legacy concat GEMM, but no
   precomputation can reproduce that GEMM's interleaved accumulation
   order bitwise — the dot kernel reuses the legacy ops exactly);
3. exact-mode scores bitwise-identical across block sizes, shard counts,
   and query batching (the engine's determinism contract);
4. peak scoring memory: engine < legacy/3 and strictly below the bytes of
   the ``(N, 2d)`` concat the legacy path materializes — i.e. O(block + k),
   no full pair materialization.

Measured numbers are written to a machine-readable ``BENCH_screening.json``
(``BENCH_screening_quick.json`` under ``--quick``) so the perf trajectory
is tracked across PRs.

    PYTHONPATH=src python benchmarks/bench_screening_scale.py          # 2000 drugs
    PYTHONPATH=src python benchmarks/bench_screening_scale.py --quick  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
import tracemalloc

import numpy as np

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.serving import DDIScreeningService


def _timeit(fn, repeats: int) -> float:
    """Median seconds per call over ``repeats`` timed runs (1 warmup)."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _peak_bytes(fn) -> int:
    """Peak traced allocation while running ``fn`` once."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def legacy_screen(service: DDIScreeningService, query: int,
                  top_k: int) -> list[tuple[int, float]]:
    """The pre-engine screen: full (N, 2) pairs + full stable argsort."""
    candidates = np.arange(service.num_drugs, dtype=np.int64)
    pairs = np.stack([np.full_like(candidates, query), candidates], axis=1)
    probs = service.score_pairs(pairs)
    hits = []
    for j in np.argsort(-probs, kind="stable"):
        if int(j) == query:
            continue
        hits.append((int(j), float(probs[j])))
        if len(hits) == top_k:
            break
    return hits


def _hit_list(hits) -> list[tuple[int, float]]:
    return [(h.index, h.probability) for h in hits]


def run(num_drugs: int, top_k: int, block_size: int, hidden_dim: int,
        repeats: int, min_speedup: float, output: str,
        seed: int = 0) -> int:
    rng = np.random.default_rng(seed)
    print(f"generating {num_drugs}-drug catalog "
          f"(hidden_dim={hidden_dim}) ...", flush=True)
    corpus = [r.smiles for r in
              MoleculeGenerator(seed=seed).generate_corpus(num_drugs)]
    config = HyGNNConfig(parameter=4, embed_dim=hidden_dim,
                         hidden_dim=hidden_dim, seed=seed)
    model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
    model.eval()
    service = DDIScreeningService(model, builder, corpus,
                                  block_size=block_size)
    query = int(rng.integers(num_drugs))
    batch = rng.choice(num_drugs, size=min(32, num_drugs), replace=False)
    failures: list[str] = []

    print(f"hypergraph: {hypergraph}")
    service.screen(query, top_k=top_k)  # pay the one-off encode + precompute

    # ------------------------------------------------------------------
    # 1+2: speed and parity, MLP decoder (the paper's best variant)
    # ------------------------------------------------------------------
    legacy_s = _timeit(lambda: legacy_screen(service, query, top_k), repeats)
    engine_s = _timeit(lambda: service.screen(query, top_k=top_k), repeats)
    speedup = legacy_s / engine_s

    legacy_hits = legacy_screen(service, query, top_k)
    engine_hits = _hit_list(service.screen(query, top_k=top_k))
    if [j for j, _ in engine_hits] != [j for j, _ in legacy_hits]:
        failures.append("engine ranking diverges from the legacy path")
    prob_gap = max((abs(a - b) for (_, a), (_, b)
                    in zip(engine_hits, legacy_hits)), default=0.0)
    if prob_gap > 1e-9:
        failures.append(f"MLP probability gap {prob_gap:.2e} exceeds 1e-9")

    # ------------------------------------------------------------------
    # 3: exact-mode determinism across execution plans
    # ------------------------------------------------------------------
    reference = engine_hits
    for blocks, shards in [(max(1, block_size // 4), 1), (block_size, 7),
                           (num_drugs + 100, 3)]:
        service.block_size, service.num_shards = blocks, shards
        if _hit_list(service.screen(query, top_k=top_k)) != reference:
            failures.append(f"scores not bitwise-stable at block={blocks}, "
                            f"shards={shards}")
    service.block_size, service.num_shards = block_size, 1
    batched = service.screen_batch(list(batch), top_k=top_k)
    singles = [service.screen(int(q), top_k=top_k) for q in batch]
    if [_hit_list(h) for h in batched] != [_hit_list(h) for h in singles]:
        failures.append("screen_batch diverges from per-query screens")
    batch_each_s = _timeit(lambda: service.screen_batch(list(batch),
                                                        top_k=top_k),
                           max(3, repeats // 4)) / len(batch)

    # ------------------------------------------------------------------
    # 4: peak scoring memory
    # ------------------------------------------------------------------
    legacy_peak = _peak_bytes(lambda: legacy_screen(service, query, top_k))
    engine_peak = _peak_bytes(lambda: service.screen(query, top_k=top_k))
    concat_bytes = num_drugs * 2 * hidden_dim * 8
    if engine_peak >= legacy_peak / 3:
        failures.append(f"engine peak {engine_peak / 1e6:.2f} MB not < 1/3 "
                        f"of legacy {legacy_peak / 1e6:.2f} MB")
    if engine_peak >= concat_bytes:
        failures.append(f"engine peak {engine_peak / 1e6:.2f} MB >= the "
                        f"(N, 2d) concat ({concat_bytes / 1e6:.2f} MB) — "
                        f"not O(block + k)")

    # ------------------------------------------------------------------
    # Dot decoder: bitwise-legacy parity + approximate mode
    # ------------------------------------------------------------------
    dot_model = HyGNN(model.encoder.num_substructures,
                      config.with_updates(decoder="dot"))
    dot_model.eval()
    dot_service = DDIScreeningService(dot_model, builder, corpus,
                                      block_size=block_size)
    dot_engine = _hit_list(dot_service.screen(query, top_k=top_k))
    dot_legacy = legacy_screen(dot_service, query, top_k)
    if dot_engine != dot_legacy:
        failures.append("dot-decoder engine is not bitwise-identical to "
                        "the legacy path")
    dot_exact_s = _timeit(lambda: dot_service.screen(query, top_k=top_k),
                          repeats)
    dot_approx_s = _timeit(lambda: dot_service.screen(query, top_k=top_k,
                                                      approx=True), repeats)
    approx_hits = _hit_list(dot_service.screen(query, top_k=top_k,
                                               approx=True))
    recall = len({j for j, _ in approx_hits} & {j for j, _ in dot_engine}) \
        / max(len(dot_engine), 1)

    # ------------------------------------------------------------------
    # Context row: the same catalog at hidden_dim=64 (ungated — the
    # engine's win grows with embedding width, this shows the narrow end).
    # ------------------------------------------------------------------
    narrow_speedup = None
    if hidden_dim != 64:
        narrow_model, _, narrow_builder = HyGNN.for_corpus(
            corpus, config.with_updates(embed_dim=64, hidden_dim=64))
        narrow_model.eval()
        narrow = DDIScreeningService(narrow_model, narrow_builder, corpus,
                                     block_size=block_size)
        narrow.screen(query, top_k=top_k)
        narrow_speedup = (
            _timeit(lambda: legacy_screen(narrow, query, top_k), repeats)
            / _timeit(lambda: narrow.screen(query, top_k=top_k), repeats))

    width = 52
    print()
    print(f"{'benchmark (' + str(num_drugs) + ' drugs, top-' + str(top_k) + ')':{width}s} "
          f"{'median':>12s}")
    print("-" * (width + 13))
    rows = [
        ("legacy screen (full pairs + stable argsort)", legacy_s),
        (f"engine screen (block={block_size}, exact)", engine_s),
        (f"engine screen_batch ({len(batch)} queries, per query)",
         batch_each_s),
        ("dot decoder: engine screen (exact)", dot_exact_s),
        ("dot decoder: engine screen (approx prefilter)", dot_approx_s),
    ]
    for label, seconds in rows:
        print(f"{label:{width}s} {seconds * 1e3:9.3f} ms")
    print("-" * (width + 13))
    print(f"{'single-query screen speedup':{width}s} {speedup:9.1f} x   "
          f"(floor {min_speedup:.0f}x)")
    if narrow_speedup is not None:
        print(f"{'  ... same catalog at hidden_dim=64 (ungated)':{width}s} "
              f"{narrow_speedup:9.1f} x")
    print(f"{'MLP engine-vs-legacy probability gap':{width}s} "
          f"{prob_gap:12.2e}   (floor 1e-09; ranking identical)")
    print(f"{'peak scoring memory: legacy':{width}s} "
          f"{legacy_peak / 1e6:9.2f} MB")
    print(f"{'peak scoring memory: engine':{width}s} "
          f"{engine_peak / 1e6:9.2f} MB  (< (N,2d) concat = "
          f"{concat_bytes / 1e6:.2f} MB)")
    print(f"{'approx top-' + str(top_k) + ' recall vs exact (dot)':{width}s} "
          f"{recall:9.2%}")
    print(f"stats: {service.stats.as_dict()}")

    if speedup < min_speedup:
        failures.append(f"speedup {speedup:.1f}x below {min_speedup:.0f}x")

    results = {
        "config": {
            "num_drugs": num_drugs,
            "top_k": top_k,
            "block_size": block_size,
            "hidden_dim": hidden_dim,
            "repeats": repeats,
            "seed": seed,
        },
        "screen_ms": {
            "legacy": legacy_s * 1000,
            "engine": engine_s * 1000,
            "engine_batched_per_query": batch_each_s * 1000,
            "dot_exact": dot_exact_s * 1000,
            "dot_approx": dot_approx_s * 1000,
        },
        "screen_speedup": speedup,
        "narrow_speedup": narrow_speedup,
        "mlp_probability_gap": prob_gap,
        "peak_scoring_bytes": {"legacy": legacy_peak, "engine": engine_peak,
                               "pair_concat": concat_bytes},
        "dot_approx_recall": recall,
        "gates": {"min_speedup": min_speedup},
        "failures": failures,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized run (fewer drugs, lower floor)")
    parser.add_argument("--drugs", type=int, default=None,
                        help="catalog size (default: 2000, quick: 400)")
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--block-size", type=int, default=None,
                        help="engine block size (default: 1024, quick: 128)")
    parser.add_argument("--hidden-dim", type=int, default=128,
                        help="embedding width (default: 128, from the "
                             "paper's search grid)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions (default: 20, quick: 5)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="failure floor (default: 5, quick: 2)")
    parser.add_argument("--seed", type=int, default=0)
    # --quick writes to a separate file by default so a smoke run never
    # clobbers the committed full-gate record.
    parser.add_argument("--output", default=None,
                        help="JSON results path (default: "
                             "BENCH_screening.json, quick: "
                             "BENCH_screening_quick.json)")
    args = parser.parse_args()
    if args.top_k < 1:
        parser.error("--top-k must be >= 1")
    if args.drugs is not None and args.drugs < 2:
        parser.error("--drugs must be >= 2")
    if args.block_size is not None and args.block_size < 1:
        parser.error("--block-size must be >= 1")
    if args.hidden_dim is not None and args.hidden_dim < 1:
        parser.error("--hidden-dim must be >= 1")
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    num_drugs = args.drugs or (400 if args.quick else 2000)
    block_size = args.block_size or (128 if args.quick else 1024)
    repeats = args.repeats or (5 if args.quick else 20)
    min_speedup = args.min_speedup or (2.0 if args.quick else 5.0)
    output = args.output or ("BENCH_screening_quick.json" if args.quick
                             else "BENCH_screening.json")
    return run(num_drugs, args.top_k, block_size, args.hidden_dim, repeats,
               min_speedup, output, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
