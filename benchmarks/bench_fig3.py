"""Benchmark: Fig. 3 — performance vs k-mer size."""

from conftest import run_once

from repro.experiments import run_fig3


def test_bench_fig3(benchmark, profile):
    result = run_once(benchmark, run_fig3, profile,
                      sizes=(3, 6, 9), datasets=("TWOSIDES",),
                      decoders=("mlp",))
    result.show()
    assert len(result.rows) == 3
    assert all(r["ROC-AUC"] > 55 for r in result.rows)
    # Mid-size k should be competitive with the extremes (rising-then-
    # saturating curve; the bend sits at smaller k on shorter SMILES).
    aucs = {r["parameter"]: r["ROC-AUC"] for r in result.rows}
    assert max(aucs[3], aucs[6]) >= aucs[9] - 3.0
