"""Benchmark: Tables VII & VIII — novel DDI case studies."""

import numpy as np
from conftest import run_once

from repro.experiments import run_table7, run_table8


def _check_separation(result, validate_key):
    positives = [r["predicted"] for r in result.rows
                 if r[validate_key] == 1]
    negatives = [r["predicted"] for r in result.rows
                 if r[validate_key] == 0]
    assert positives and negatives
    # Cross-corpus positives should score above cross-corpus negatives on
    # average (the paper's positives score >0.9, negatives ~1e-8).
    assert np.mean(positives) > np.mean(negatives)


def test_bench_table7(benchmark, profile):
    result = run_once(benchmark, run_table7, profile)
    result.show()
    _check_separation(result, "drugbank_label")


def test_bench_table8(benchmark, profile):
    result = run_once(benchmark, run_table8, profile)
    result.show()
    _check_separation(result, "twosides_label")
