"""Multi-host screening benchmark (and fault-tolerance regression gate).

Exercises the remote execution tier (``repro.serving.remote``): localhost
:class:`ShardWorker` processes serving a shard store over the stdlib TCP
transport, screened through the failover client
(:class:`RemoteShardExecutor`) and through a cold-booted service
(:meth:`DDIScreeningService.from_store`).

Gates (exit non-zero on violation, so CI can run ``--quick`` as a guard;
all three are always on, ``--quick`` only shrinks the catalog):

1. **Remote parity**: screens fanned out to live localhost workers return
   ``(indices, probabilities)`` bitwise-identical to the serial in-memory
   engine.
2. **Failover correctness**: under injected fault schedules — a dropped
   connection, a worker error, and a corrupted reply frame against every
   shard, plus the every-replica-down case — merged results stay bitwise
   identical (retry / replica failover / local mmap fallback), and the
   executor's stats prove the faults actually fired.
3. **Cold boot parity**: a service booted from the saved manifest +
   serving context screens bitwise-identically to the warm service that
   wrote them, with ``stats.corpus_encodes == 0`` (the corpus hypergraph
   is never re-encoded).

Timing rows (informational): serial vs remote latency (the transport tax
on a small catalog), faulted-screen latency (the retry tax), and the cold
boot wall time.

    PYTHONPATH=src python benchmarks/bench_remote_screening.py
    PYTHONPATH=src python benchmarks/bench_remote_screening.py --quick
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.serving import (DDIScreeningService, FaultPolicy, ShardWorker)


def _timeit(fn, repeats: int) -> float:
    """Median seconds per call over ``repeats`` timed runs (1 warmup)."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _hits(results) -> list[list[tuple[int, float]]]:
    return [[(h.index, h.probability) for h in hits] for hits in results]


def _dead_addresses(count: int) -> list[tuple[str, int]]:
    """Localhost ports with no listener (bind, read the port, close)."""
    import socket
    addresses = []
    for _ in range(count):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        addresses.append(probe.getsockname())
        probe.close()
    return addresses


def _check_fault_schedules(service, manifest, queries, top_k, reference,
                           num_shards, failures) -> float:
    """Gate 2: every schedule stays bitwise; returns faulted-screen secs."""
    schedules = [(action, shard) for action in ("drop", "error", "corrupt")
                 for shard in range(num_shards)]
    faulted_s = []
    for action, shard in schedules:
        policy = FaultPolicy.single(action, shard=shard)
        with ShardWorker(manifest, fault_policy=policy) as w1, \
                ShardWorker(manifest, fault_policy=policy) as w2:
            service.connect_workers([w1, w2], backoff_base_s=0.002,
                                    breaker_threshold=10)
            try:
                start = time.perf_counter()
                got = _hits(service.screen_batch(queries, top_k=top_k))
                faulted_s.append(time.perf_counter() - start)
                stats = dict(service.remote.stats)
            finally:
                service.disconnect_workers()
        label = f"{action} on shard {shard}"
        if got != reference:
            failures.append(f"faulted screen diverges ({label})")
        if not policy.fired:
            failures.append(f"fault schedule never fired ({label})")
        if stats["retries"] < 1:
            failures.append(f"no retry recorded ({label})")

    # Every replica down: the local mmap fallback must answer, bitwise.
    service.connect_workers(_dead_addresses(2), timeout_s=0.3,
                            backoff_base_s=0.002)
    try:
        got = _hits(service.screen_batch(queries, top_k=top_k))
        stats = dict(service.remote.stats)
    finally:
        service.disconnect_workers()
    if got != reference:
        failures.append("all-workers-down screen diverges from serial")
    if stats["local_fallbacks"] != num_shards:
        failures.append(
            f"expected {num_shards} local fallbacks with every worker "
            f"down, saw {stats['local_fallbacks']}")
    print(f"failover: {len(schedules)} fault schedules + all-down local "
          f"fallback vs serial engine — "
          f"{'OK' if not failures else 'FAILED'}")
    return statistics.median(faulted_s)


def run(num_drugs: int, hidden_dim: int, top_k: int, num_shards: int,
        num_workers: int, repeats: int, seed: int = 0) -> int:
    failures: list[str] = []
    rng = np.random.default_rng(seed)
    print(f"building {num_drugs}-drug catalog (hidden_dim={hidden_dim}, "
          f"{num_shards} shards) ...", flush=True)
    corpus = [r.smiles for r in
              MoleculeGenerator(seed=seed).generate_corpus(num_drugs)]
    config = HyGNNConfig(parameter=4, embed_dim=hidden_dim,
                         hidden_dim=hidden_dim, seed=seed)
    model, _, builder = HyGNN.for_corpus(corpus, config)
    model.eval()

    with tempfile.TemporaryDirectory() as tmp:
        service = DDIScreeningService(model, builder, corpus,
                                      num_shards=num_shards, block_size=64)
        manifest = service.save_shards(Path(tmp) / "store",
                                       num_shards=num_shards)
        if not service.open_shards(manifest, strict=True):
            failures.append("open_shards refused its own store")
            return _report(failures, {})
        queries = [int(q) for q in rng.choice(
            num_drugs, size=min(8, num_drugs), replace=False)]
        reference = _hits(service.screen_batch(queries, top_k=top_k,
                                               parallel=False))
        serial_s = _timeit(
            lambda: service.screen_batch(queries, top_k=top_k,
                                         parallel=False), repeats)

        # ------------------------------------------------------------------
        # 1: remote parity + transport latency on live localhost workers
        # ------------------------------------------------------------------
        workers = [ShardWorker(manifest).start()
                   for _ in range(num_workers)]
        try:
            service.connect_workers(workers, backoff_base_s=0.002)
            remote = _hits(service.screen_batch(queries, top_k=top_k))
            if remote != reference:
                failures.append("remote screen diverges from the serial "
                                "in-memory engine")
            remote_s = _timeit(
                lambda: service.screen_batch(queries, top_k=top_k), repeats)
            health = service.remote.probe_health()
            if any(meta is None for meta in health.values()):
                failures.append("health probe failed on a live worker")
        finally:
            service.disconnect_workers()
        print(f"remote parity: {num_workers} workers x {len(queries)} "
              f"queries — {'OK' if not failures else 'FAILED'}")

        # ------------------------------------------------------------------
        # 2: failover correctness under injected fault schedules
        # ------------------------------------------------------------------
        faulted_s = _check_fault_schedules(service, manifest, queries,
                                           top_k, reference, num_shards,
                                           failures)
        for worker in workers:
            worker.stop()

        # ------------------------------------------------------------------
        # 3: cold boot parity (no corpus re-encode)
        # ------------------------------------------------------------------
        context = service.save_serving_context(Path(tmp) / "context")
        start = time.perf_counter()
        cold = DDIScreeningService.from_store(manifest, context)
        boot_s = time.perf_counter() - start
        cold_hits = _hits(cold.screen_batch(queries, top_k=top_k))
        if cold_hits != reference:
            failures.append("cold-booted service diverges from the warm "
                            "service that wrote the store")
        if cold.stats.corpus_encodes != 0:
            failures.append(
                f"cold boot re-encoded the corpus "
                f"({cold.stats.corpus_encodes} encodes; expected 0)")
        print(f"cold boot: manifest + context -> bitwise screens, "
              f"corpus_encodes={cold.stats.corpus_encodes} — "
              f"{'OK' if not failures else 'FAILED'}")
        service.close()

    rows = {
        f"serial in-memory screen ({len(queries)} queries)":
            f"{serial_s * 1e3:9.2f} ms",
        f"remote screen ({num_workers} localhost workers)":
            f"{remote_s * 1e3:9.2f} ms",
        "faulted screen (1 injected fault, median)":
            f"{faulted_s * 1e3:9.2f} ms",
        "cold boot (load context + attach store)":
            f"{boot_s * 1e3:9.2f} ms",
    }
    return _report(failures, rows)


def _report(failures: list[str], rows: dict[str, str]) -> int:
    width = 52
    if rows:
        print()
        print(f"{'benchmark':{width}s} {'value':>14s}")
        print("-" * (width + 15))
        for label, value in rows.items():
            print(f"{label:{width}s} {value}")
        print("-" * (width + 15))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized run")
    parser.add_argument("--drugs", type=int, default=None,
                        help="catalog size (default: 600, quick: 200)")
    parser.add_argument("--hidden-dim", type=int, default=None,
                        help="embedding width (default: 32, quick: 16)")
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count (default: 4, quick: 3)")
    parser.add_argument("--workers", type=int, default=2,
                        help="localhost shard workers")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions (default: 8, quick: 3)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if args.top_k < 1:
        parser.error("--top-k must be >= 1")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.drugs is not None and args.drugs < 10:
        parser.error("--drugs must be >= 10")
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")

    def default(value, quick, full):
        return (quick if args.quick else full) if value is None else value

    return run(default(args.drugs, 200, 600),
               default(args.hidden_dim, 16, 32),
               args.top_k,
               default(args.shards, 3, 4),
               args.workers,
               default(args.repeats, 3, 8),
               seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
