"""Serving-path benchmark: cached-embedding scoring vs naive full re-encode.

Measures the repeat pair-scoring hot path on a synthetic drug catalog:

- **naive**: ``model.predict_proba(hypergraph, pairs)`` — re-encodes the
  entire corpus hypergraph on every call (the training-time API).
- **service**: ``DDIScreeningService.score_pairs(pairs)`` — encodes once,
  then every call is a vectorized decoder pass over cached embeddings
  (including the per-call weight-fingerprint staleness check).

Also times incremental registration and top-k screening, and verifies score
parity between the two paths.  Exits non-zero if parity exceeds 1e-8 or the
speedup falls below the floor (10x at the default 500-drug scale), so CI can
run it as a regression gate:

    PYTHONPATH=src python benchmarks/bench_serving.py          # full (500 drugs)
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

import numpy as np

from repro.chem import MoleculeGenerator
from repro.core import HyGNN, HyGNNConfig
from repro.serving import DDIScreeningService


def _timeit(fn, repeats: int) -> float:
    """Median seconds per call over ``repeats`` timed runs (1 warmup)."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def run(num_drugs: int, num_pairs: int, repeats: int, min_speedup: float,
        seed: int = 0) -> int:
    rng = np.random.default_rng(seed)
    print(f"generating {num_drugs}-drug catalog ...", flush=True)
    corpus = [r.smiles for r in
              MoleculeGenerator(seed=seed).generate_corpus(num_drugs)]
    config = HyGNNConfig(parameter=4, embed_dim=64, hidden_dim=64, seed=seed)
    model, hypergraph, builder = HyGNN.for_corpus(corpus, config)
    model.eval()
    service = DDIScreeningService(model, builder, corpus)
    pairs = rng.integers(0, num_drugs, size=(num_pairs, 2))

    print(f"hypergraph: {hypergraph}")
    naive_s = _timeit(lambda: model.predict_proba(hypergraph, pairs), repeats)
    served_s = _timeit(lambda: service.score_pairs(pairs), repeats)
    speedup = naive_s / served_s

    parity = float(np.abs(model.predict_proba(hypergraph, pairs)
                          - service.score_pairs(pairs)).max())

    new_drug = [r.smiles for r in
                MoleculeGenerator(seed=seed + 1).generate_corpus(1)][0]
    start = time.perf_counter()
    service.register_drug(new_drug, drug_id="bench_candidate",
                          allow_unknown=True)
    register_s = time.perf_counter() - start
    screen_s = _timeit(lambda: service.screen("bench_candidate", top_k=10),
                       max(3, repeats // 2))

    width = 44
    print()
    print(f"{'benchmark (' + str(num_drugs) + ' drugs)':{width}s} "
          f"{'median':>12s}")
    print("-" * (width + 13))
    rows = [
        (f"naive predict_proba ({num_pairs} pairs)", naive_s),
        (f"service score_pairs ({num_pairs} pairs)", served_s),
        ("register one new drug (incremental)", register_s),
        ("screen 1 drug vs catalog (top-10)", screen_s),
    ]
    for label, seconds in rows:
        print(f"{label:{width}s} {seconds * 1e3:9.3f} ms")
    print("-" * (width + 13))
    print(f"{'repeat-scoring speedup':{width}s} {speedup:9.1f} x   "
          f"(floor {min_speedup:.0f}x)")
    print(f"{'max |service - naive| score gap':{width}s} {parity:12.2e}   "
          f"(floor 1e-08)")
    print(f"stats: {service.stats.as_dict()}")

    failures = []
    if parity > 1e-8:
        failures.append(f"score parity {parity:.2e} exceeds 1e-8")
    if speedup < min_speedup:
        failures.append(f"speedup {speedup:.1f}x below {min_speedup:.0f}x")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run (fewer drugs, lower floor)")
    parser.add_argument("--drugs", type=int, default=None,
                        help="catalog size (default: 500, smoke: 100)")
    parser.add_argument("--pairs", type=int, default=256,
                        help="pairs per scoring call")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions (default: 20, smoke: 5)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="failure floor (default: 10, smoke: 3)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if args.pairs < 1:
        parser.error("--pairs must be >= 1")
    if args.drugs is not None and args.drugs < 2:
        parser.error("--drugs must be >= 2 (pairs need two drugs)")
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    num_drugs = args.drugs or (100 if args.smoke else 500)
    repeats = args.repeats or (5 if args.smoke else 20)
    min_speedup = args.min_speedup or (3.0 if args.smoke else 10.0)
    return run(num_drugs, args.pairs, repeats, min_speedup, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
