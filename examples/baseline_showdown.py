"""Baseline showdown: a miniature Table V on one command.

Trains the best model of each baseline family plus HyGNN on the same
TWOSIDES-like split and prints the comparison.  At this demo's tiny scale
the test split holds only ~100 pairs, so rankings carry a few points of
noise (Decagon, which sees privileged protein data, sometimes spikes); the
paper-shape comparison (HyGNN leads, CASTER best baseline) is measured at
the default profile in EXPERIMENTS.md.

    python examples/baseline_showdown.py
"""

import time

from repro.baselines import (BaselineConfig, CasterConfig, UnsupervisedConfig,
                             WalkConfig, run_baseline)
from repro.core import HyGNNConfig, train_hygnn
from repro.data import balanced_pairs_and_labels, load_benchmark, random_split


def main() -> None:
    benchmark = load_benchmark(scale=0.1, seed=0)
    dataset = benchmark.twosides
    pairs, labels = balanced_pairs_and_labels(dataset, seed=0)
    split = random_split(len(pairs), seed=0)
    config = BaselineConfig(
        walk=WalkConfig(num_walks=5, walk_length=40, epochs=2,
                        learning_rate=0.05),
        unsupervised=UnsupervisedConfig(epochs=80),
        caster=CasterConfig(epochs=120, patience=25))

    rows = []
    for name in ("node2vec", "graphsage-ddi", "graphsage-ssg", "caster",
                 "decagon"):
        start = time.time()
        summary = run_baseline(name, dataset, pairs, labels, split, config,
                               universe=benchmark.universe)
        rows.append((name, summary, time.time() - start))

    start = time.time()
    _, _, _, summary = train_hygnn(
        dataset.smiles, pairs, labels, split,
        HyGNNConfig(method="kmer", parameter=6, epochs=200, patience=40))
    rows.append(("hygnn-kmer-mlp", summary, time.time() - start))

    print(f"{'model':18s} {'F1':>7s} {'ROC-AUC':>8s} {'PR-AUC':>7s} {'sec':>6s}")
    for name, summary, elapsed in rows:
        print(f"{name:18s} {summary.f1:7.2f} {summary.roc_auc:8.2f} "
              f"{summary.pr_auc:7.2f} {elapsed:6.1f}")
    best = max(rows, key=lambda r: r[1].roc_auc)
    print(f"\nbest model by ROC-AUC: {best[0]}")


if __name__ == "__main__":
    main()
