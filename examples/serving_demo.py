"""Train → save → serve: the production-shaped DDI screening path.

Trains a small HyGNN, persists it with ``serialize.save_model``, then stands
up a :class:`~repro.serving.DDIScreeningService` from the artifact alone —
the deployment story: the serving process never sees the training code, just
the ``.npz`` weights+vocabulary bundle and the catalog SMILES.  The service
encodes the catalog once, answers batched pair queries from cached
embeddings, registers a brand-new drug without re-encoding anything, and
screens it against the whole catalog.

    python examples/serving_demo.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import HyGNN, HyGNNConfig, Trainer, save_model
from repro.data import balanced_pairs_and_labels, load_dataset, random_split
from repro.serving import DDIScreeningService


def main() -> None:
    # ------------------------------------------------------------------
    # Train and persist (the "offline" half of the pipeline).
    # ------------------------------------------------------------------
    dataset = load_dataset("twosides", scale=0.12, seed=0)
    pairs, labels = balanced_pairs_and_labels(dataset, seed=0)
    split = random_split(len(pairs), seed=0)
    config = HyGNNConfig(method="kmer", parameter=4, epochs=120, patience=30)
    model, hypergraph, builder = HyGNN.for_corpus(dataset.smiles, config)
    trainer = Trainer(model, config)
    trainer.fit(hypergraph, pairs, labels, split)
    summary = trainer.evaluate(hypergraph, pairs[split.test],
                               labels[split.test])
    print(f"trained on {dataset.num_drugs} drugs; test metrics: {summary}")

    artifact = Path(tempfile.mkdtemp()) / "hygnn.npz"
    save_model(artifact, model, builder)
    print(f"saved artifact: {artifact} ({artifact.stat().st_size / 1024:.0f} KiB)")

    # ------------------------------------------------------------------
    # Serve from the artifact (the "online" half).
    # ------------------------------------------------------------------
    service = DDIScreeningService.from_artifact(
        artifact, dataset.smiles,
        drug_ids=[d.drug_id for d in dataset.drugs])

    query_pairs = pairs[split.test][:512]
    start = time.perf_counter()
    naive = model.predict_proba(hypergraph, query_pairs)
    naive_ms = (time.perf_counter() - start) * 1e3
    service.score_pairs(query_pairs)  # first call pays the one-off encode
    start = time.perf_counter()
    served = service.score_pairs(query_pairs)
    served_ms = (time.perf_counter() - start) * 1e3
    print(f"\nscoring {len(query_pairs)} pairs: naive {naive_ms:.1f} ms, "
          f"cached service {served_ms:.2f} ms "
          f"({naive_ms / served_ms:.0f}x), "
          f"max score gap {np.abs(naive - served).max():.1e}")

    # ------------------------------------------------------------------
    # A drug still in development arrives: register it incrementally.
    # ------------------------------------------------------------------
    candidate = "CC(=O)Oc1ccccc1C(=O)NCCN1CCOCC1"  # novel SMILES
    start = time.perf_counter()
    service.register_drug(candidate, drug_id="CANDIDATE-001")
    register_ms = (time.perf_counter() - start) * 1e3
    print(f"\nregistered CANDIDATE-001 in {register_ms:.2f} ms "
          f"(corpus encodes so far: {service.stats.corpus_encodes})")

    print("\ntop predicted interaction partners for CANDIDATE-001:")
    name_of = {d.drug_id: d.name for d in dataset.drugs}
    for hit in service.screen("CANDIDATE-001", top_k=5):
        name = name_of.get(hit.drug_id, hit.drug_id)
        print(f"  {name:28s} P(interact)={hit.probability:.3f}")

    # ------------------------------------------------------------------
    # Scale knobs: screening streams candidate blocks through a sharded
    # catalog with precomputed decoder projections — peak memory is
    # O(block + k), and results are bitwise-identical for ANY block size
    # or shard count.  screen_batch scores a whole query batch against
    # each block in one pass.
    # ------------------------------------------------------------------
    sharded = DDIScreeningService.from_artifact(
        artifact, dataset.smiles,
        drug_ids=[d.drug_id for d in dataset.drugs],
        block_size=256, num_shards=4)
    queries = [d.drug_id for d in dataset.drugs[:16]]
    start = time.perf_counter()
    batched = sharded.screen_batch(queries, top_k=5)
    batch_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    singles = [sharded.screen(q, top_k=5) for q in queries]
    single_ms = (time.perf_counter() - start) * 1e3
    assert all([(h.index, h.probability) for h in b]
               == [(h.index, h.probability) for h in s]
               for b, s in zip(batched, singles))  # bitwise-identical
    print(f"\nscreen_batch({len(queries)} queries, 4 shards, block=256): "
          f"{batch_ms:.1f} ms vs {single_ms:.1f} ms looped "
          f"({single_ms / batch_ms:.1f}x) — identical hits")

    # ------------------------------------------------------------------
    # Out-of-core tier: persist the shards as memory-mapped .npy files +
    # manifest, reopen them, and fan screening out to a process pool.
    # Every plan returns bitwise-identical hits.
    # ------------------------------------------------------------------
    store_dir = Path(tempfile.mkdtemp()) / "catalog_store"
    manifest = sharded.save_shards(store_dir, num_shards=4)
    assert sharded.open_shards(manifest, num_workers=2)
    mapped = sharded.screen_batch(queries, top_k=5, parallel=False)
    pooled = sharded.screen_batch(queries, top_k=5, parallel=True)
    assert all([(h.index, h.probability) for h in m]
               == [(h.index, h.probability) for h in b]
               for m, b in zip(mapped, batched))
    assert all([(h.index, h.probability) for h in p]
               == [(h.index, h.probability) for h in b]
               for p, b in zip(pooled, batched))
    sharded.close()
    store_kib = sum(f.stat().st_size
                    for f in store_dir.iterdir()) / 1024
    print(f"\nshard store: {manifest.parent.name}/ ({store_kib:.0f} KiB on "
          f"disk, mmap'd) — serial, memory-mapped, and 2-worker screens "
          f"all bitwise-identical")

    print(f"\nservice stats: {service.stats.as_dict()}")


if __name__ == "__main__":
    main()
