"""New-drug screening: predict interactions for drugs never seen in training.

This is the paper's Table IX scenario and the motivating use case from its
introduction: a drug still in development has *only* a SMILES string — no
known interactions, side effects, or targets.  HyGNN embeds it from its
substructures alone and screens it against the existing pharmacopoeia.

    python examples/new_drug_screening.py
"""

import numpy as np

from repro.core import HyGNN, HyGNNConfig, Trainer
from repro.data import balanced_pairs_and_labels, cold_start_split, load_dataset
from repro.hypergraph import DrugHypergraphBuilder


def main() -> None:
    dataset = load_dataset("twosides", scale=0.12, seed=0)
    pairs, labels = balanced_pairs_and_labels(dataset, seed=0)

    # Hold out 5% of drugs completely (the "new drugs").
    split, unseen = cold_start_split(pairs, dataset.num_drugs, seed=0,
                                     unseen_fraction=0.05)
    unseen_set = set(unseen.tolist())
    print("new drugs held out from training:")
    for index in unseen:
        drug = dataset.drugs[index]
        print(f"  {drug.drug_id} {drug.name}: {drug.smiles}")

    # Fit the substructure vocabulary on *seen* drugs only, then build the
    # incidence structure for all drugs: the new drugs' hyperedges connect
    # to whatever trained substructures they contain.
    config = HyGNNConfig(method="kmer", parameter=6, epochs=150, patience=30)
    builder = DrugHypergraphBuilder(method=config.method,
                                    parameter=config.parameter)
    builder.fit([d.smiles for i, d in enumerate(dataset.drugs)
                 if i not in unseen_set])
    hypergraph = builder.transform(dataset.smiles)

    model = HyGNN(num_substructures=builder.num_nodes, config=config)
    trainer = Trainer(model, config)
    trainer.fit(hypergraph, pairs, labels, split)
    summary = trainer.evaluate(hypergraph, pairs[split.test],
                               labels[split.test])
    print(f"\ncold-start test metrics (pairs touching new drugs): {summary}")

    # Screen the first new drug against every known drug; report the most
    # likely interaction partners.
    new_drug = int(unseen[0])
    partners = np.array([[new_drug, j] for j in range(dataset.num_drugs)
                         if j != new_drug])
    scores = model.predict_proba(hypergraph, partners)
    top = np.argsort(-scores)[:5]
    print(f"\ntop predicted interaction partners for "
          f"{dataset.drugs[new_drug].name}:")
    for rank in top:
        j = int(partners[rank, 1])
        print(f"  {dataset.drugs[j].name:28s} P(interact)={scores[rank]:.3f}")


if __name__ == "__main__":
    main()
