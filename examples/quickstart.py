"""Quickstart: train HyGNN on a TWOSIDES-like corpus and predict DDIs.

Runs in under a minute on CPU::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import HyGNNConfig, train_hygnn
from repro.data import balanced_pairs_and_labels, load_dataset, random_split


def main() -> None:
    # 1. Load a TWOSIDES-like corpus (scaled down for speed; scale=1.0
    #    reproduces the paper's 645 drugs / 63 473 DDIs exactly).
    dataset = load_dataset("twosides", scale=0.1, seed=0)
    print(f"dataset: {dataset}")
    print(f"example drug: {dataset.drugs[0].name} "
          f"SMILES={dataset.drugs[0].smiles}")

    # 2. Build the balanced pair corpus (one sampled negative per positive)
    #    and an 80/10/10 split, exactly as in the paper (Sec. IV-A/B).
    pairs, labels = balanced_pairs_and_labels(dataset, seed=0)
    split = random_split(len(pairs), seed=0)

    # 3. Train the paper's best variant: k-mer substructures + MLP decoder.
    config = HyGNNConfig(method="kmer", parameter=6, decoder="mlp",
                         epochs=150, patience=30)
    model, hypergraph, history, summary = train_hygnn(
        dataset.smiles, pairs, labels, split, config)
    print(f"hypergraph: {hypergraph}")
    print(f"trained for {history.epochs_run} epochs "
          f"(best at {history.best_epoch})")
    print(f"test metrics: {summary}")

    # 4. Score a few unseen drug pairs.
    query = pairs[split.test][:5]
    scores = model.predict_proba(hypergraph, query)
    for (a, b), score, truth in zip(query, scores,
                                    labels[split.test][:5]):
        print(f"  {dataset.drugs[a].name} + {dataset.drugs[b].name}: "
              f"P(interact)={score:.3f}  (label={int(truth)})")


if __name__ == "__main__":
    main()
