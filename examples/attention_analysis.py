"""Substructure attention analysis: which functional groups drive DDIs?

The paper's interpretability claim (Sec. I): "not all but a few
substructures are mainly significant in chemical reactions", and the
node-level attention (Eq. 8) learns to weight them.  This example trains
HyGNN, extracts the attention coefficients X_ji per (substructure ∈ drug)
membership, and ranks each drug's substructures — the highly attended ones
should overlap the latent pharmacophores the generator planted.

    python examples/attention_analysis.py
"""

import numpy as np

from repro.chem import fragment_by_name
from repro.core import HyGNNConfig, train_hygnn
from repro.data import balanced_pairs_and_labels, load_dataset, random_split


def main() -> None:
    dataset = load_dataset("twosides", scale=0.1, seed=0)
    pairs, labels = balanced_pairs_and_labels(dataset, seed=0)
    split = random_split(len(pairs), seed=0)
    config = HyGNNConfig(method="kmer", parameter=6, epochs=150, patience=30)
    model, hypergraph, _, summary = train_hygnn(dataset.smiles, pairs,
                                                labels, split, config)
    print(f"test metrics: {summary}\n")

    # Attention weight per incidence entry, grouped by drug (hyperedge).
    weights = model.encoder.substructure_attention(hypergraph)

    hit_count = 0
    shown = 0
    for drug_index in range(dataset.num_drugs):
        drug = dataset.drugs[drug_index]
        if not drug.pharmacophores or shown >= 5:
            continue
        mask = hypergraph.edge_ids == drug_index
        entry_nodes = hypergraph.node_ids[mask]
        entry_weights = weights[mask]
        order = np.argsort(-entry_weights)[:3]
        top_tokens = [hypergraph.node_labels[entry_nodes[i]] for i in order]

        pharma_smiles = [fragment_by_name(n).smiles
                         for n in sorted(drug.pharmacophores)]
        overlap = any(token in p or p in token
                      for token in top_tokens for p in pharma_smiles)
        hit_count += overlap
        shown += 1
        print(f"{drug.name} ({drug.smiles})")
        print(f"  latent pharmacophores: {pharma_smiles}")
        print(f"  top-attended substructures: {top_tokens} "
              f"{'<-- overlap' if overlap else ''}")
    print(f"\n{hit_count}/{shown} drugs have a pharmacophore among their "
          "top-attended substructures")


if __name__ == "__main__":
    main()
