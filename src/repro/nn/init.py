"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so that
every model in the repository is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def xavier_uniform(shape: tuple, rng: np.random.Generator,
                   gain: float = 1.0) -> Tensor:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def xavier_normal(shape: tuple, rng: np.random.Generator,
                  gain: float = 1.0) -> Tensor:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def kaiming_uniform(shape: tuple, rng: np.random.Generator,
                    negative_slope: float = 0.0) -> Tensor:
    """He uniform, appropriate in front of (leaky) ReLU activations."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope ** 2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def zeros(shape: tuple) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=True)


def normal(shape: tuple, rng: np.random.Generator, std: float = 0.01) -> Tensor:
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def _fans(shape: tuple) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
