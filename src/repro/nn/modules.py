"""Neural-network module abstractions (Linear, Dropout, MLP, ...).

A :class:`Module` owns named parameters and child modules, mirroring the
familiar PyTorch contract: ``parameters()`` walks the tree, ``train()`` /
``eval()`` toggle stochastic layers, ``zero_grad()`` clears gradients.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor


class Module:
    """Base class for all models; tracks parameters and children by attribute."""

    def __init__(self):
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Tensor) -> Tensor:
        self._parameters[name] = param
        object.__setattr__(self, name, param)
        return param

    def parameters(self) -> Iterator[Tensor]:
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {state[name].shape}")
            param.data = state[name].copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-uniform weights."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform((in_features, out_features), rng)
        self.bias = init.zeros((out_features,)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"Linear(in={self.in_features}, out={self.out_features}, "
                f"bias={self.bias is not None})")


class Dropout(Module):
    """Inverted dropout driven by an explicit generator for reproducibility."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = init.xavier_uniform((num_embeddings, embedding_dim), rng)

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.gather_rows(self.weight, indices)


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[f"layer{i}"] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.2):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and optional dropout.

    This is the decoder architecture of HyGNN Eq. (11): hidden layers use
    ReLU (the paper's decoder-side activation), the output layer is linear.
    """

    def __init__(self, dims: list[int], rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        layers: list[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng))
            is_last = i == len(dims) - 2
            if not is_last:
                layers.append(ReLU())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
