"""Finite-difference gradient checking used throughout the test suite."""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor


def numerical_gradient(fn: Callable[[], Tensor], param: Tensor,
                       eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``param.data``."""
    grad = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn().item()
        flat[i] = original - eps
        minus = fn().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[[], Tensor], params: list[Tensor],
              eps: float = 1e-6, atol: float = 1e-5, rtol: float = 1e-4) -> bool:
    """Compare analytic and numerical gradients for every parameter.

    Raises ``AssertionError`` with a diagnostic message on mismatch so tests
    report which parameter diverged.
    """
    for param in params:
        param.grad = None
    loss = fn()
    loss.backward()
    for idx, param in enumerate(params):
        analytic = param.grad if param.grad is not None else np.zeros_like(param.data)
        numeric = numerical_gradient(fn, param, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradcheck failed for parameter {idx}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}")
    return True
