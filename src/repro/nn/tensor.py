"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` substrate.  The paper's
models (HyGNN, GCN/GAT/GraphSAGE baselines, CASTER, Decagon) were originally
built on PyTorch; the build environment here is numpy-only, so we provide a
small but complete autograd engine.  Every differentiable operation used by
the models lives either here (operator overloads) or in
:mod:`repro.nn.functional`, and each is validated against finite differences
in the test suite.

The design follows the classic tape-free closure style: each :class:`Tensor`
produced by an operation records its parent tensors and a ``_backward``
closure that accumulates gradients into the parents.  ``Tensor.backward``
topologically sorts the graph and runs the closures in reverse order.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

DEFAULT_DTYPE = np.float64


def _as_array(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Coerce ``value`` to a numpy array of the engine's dtype."""
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting may both prepend dimensions and stretch size-1 axes; the
    gradient of a broadcast is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that participates in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    def __init__(self, data, requires_grad: bool = False,
                 _parents: Sequence["Tensor"] = (), op: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._parents = tuple(_parents)
        self.op = op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag}, op={self.op or 'leaf'})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from the graph."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.data.shape}")

        order: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: Tensor) -> None:
            # Iterative DFS to avoid recursion limits on deep graphs.
            stack = [(node, iter(node._parents))]
            if id(node) in visited:
                return
            visited.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Construction helpers used by operations
    # ------------------------------------------------------------------
    @staticmethod
    def _result(data: np.ndarray, parents: Sequence["Tensor"], op: str) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=parents if requires else (), op=op)

    # ------------------------------------------------------------------
    # Arithmetic operators
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._result(self.data + other.data, (self, other), "add")

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(out.grad, other.shape))

        out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor._result(-self.data, (self,), "neg")

        def backward() -> None:
            self._accumulate(-out.grad)

        out._backward = backward
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return (-self) + other

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._result(self.data * other.data, (self, other), "mul")

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(out.grad * self.data, other.shape))

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._result(self.data / other.data, (self, other), "div")

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(out.grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    unbroadcast(-out.grad * self.data / (other.data ** 2), other.shape))

        out._backward = backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor._result(self.data ** exponent, (self,), "pow")

        def backward() -> None:
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._result(self.data @ other.data, (self, other), "matmul")
        a_ndim, b_ndim = self.data.ndim, other.data.ndim

        def backward() -> None:
            grad = out.grad
            if self.requires_grad:
                if b_ndim == 1 and a_ndim == 1:        # (m,) @ (m,) -> scalar
                    grad_a = grad * other.data
                elif b_ndim == 1:                      # (n,m) @ (m,) -> (n,)
                    grad_a = np.outer(grad, other.data)
                elif a_ndim == 1:                      # (m,) @ (m,p) -> (p,)
                    grad_a = other.data @ grad
                else:                                  # (..,n,m) @ (..,m,p)
                    grad_a = grad @ other.data.swapaxes(-1, -2)
                self._accumulate(unbroadcast(grad_a, self.shape))
            if other.requires_grad:
                if a_ndim == 1 and b_ndim == 1:
                    grad_b = grad * self.data
                elif a_ndim == 1:                      # (m,) @ (m,p) -> (p,)
                    grad_b = np.outer(self.data, grad)
                elif b_ndim == 1:                      # (n,m) @ (m,) -> (n,)
                    grad_b = self.data.T @ grad
                else:
                    grad_b = self.data.swapaxes(-1, -2) @ grad
                other._accumulate(unbroadcast(grad_b, other.shape))

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor._result(self.data.reshape(shape), (self,), "reshape")

        def backward() -> None:
            self._accumulate(out.grad.reshape(self.shape))

        out._backward = backward
        return out

    def transpose(self, axes: tuple | None = None) -> "Tensor":
        out = Tensor._result(self.data.transpose(axes), (self,), "transpose")
        inverse = None if axes is None else tuple(np.argsort(axes))

        def backward() -> None:
            self._accumulate(out.grad.transpose(inverse))

        out._backward = backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = Tensor._result(self.data[index], (self,), "getitem")

        def backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor._result(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")

        def backward() -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))])
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor._result(out_data, (self,), "max")

        def backward() -> None:
            grad = out.grad
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * grad / counts)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities (also exposed in functional)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = Tensor._result(out_data, (self,), "exp")

        def backward() -> None:
            self._accumulate(out.grad * out_data)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = Tensor._result(np.log(self.data), (self,), "log")

        def backward() -> None:
            self._accumulate(out.grad / self.data)

        out._backward = backward
        return out


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def stack_parameters(params: Iterable[Tensor]) -> int:
    """Total number of scalar parameters, used for model summaries."""
    return int(sum(p.data.size for p in params))
