"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` substrate.  The paper's
models (HyGNN, GCN/GAT/GraphSAGE baselines, CASTER, Decagon) were originally
built on PyTorch; the build environment here is numpy-only, so we provide a
small but complete autograd engine.  Every differentiable operation used by
the models lives either here (operator overloads) or in
:mod:`repro.nn.functional`, and each is validated against finite differences
in the test suite.

Ops are *registry-style*: each operation is a pair of module-level
``forward(ctx, *parent_arrays, out=None)`` / ``backward(ctx, out, *parents)``
functions glued together by :func:`apply_op`.  The eager path wraps the
backward function in a per-tensor ``_backward`` closure (the classic
micrograd contract, preserved for external callers that attach closures by
hand), but because the functions read the *current* tensor data and a
mutable ``ctx`` at call time — never values frozen at trace time — the same
node can be re-executed later with new leaf values.  That is what
:class:`repro.nn.tape.Tape` exploits: it records one forward pass and then
replays forward+backward every epoch without re-tracing, re-allocating, or
re-sorting the graph.

``ctx`` doubles as a scratch-buffer cache: ops that need large temporaries
(scatter targets, broadcast products) allocate them once via
:func:`ctx_buffer` and reuse them on every replay.  In eager mode each call
gets a fresh ``ctx``, so eager numerics and allocation behaviour are exactly
the classic ones; under a tape the buffers persist and the hot loop stops
paying allocation and page-zeroing costs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Sequence

import numpy as np

DEFAULT_DTYPE = np.float64

# Stack of actively recording tapes (see repro.nn.tape).  apply_op notifies
# the innermost tape of every differentiable node it creates.
_TAPE_STACK: list = []


class _NullTape:
    """A tape that discards every note it receives.

    Pushed onto ``_TAPE_STACK`` by :func:`tape_shield` so that ops executed
    inside a shielded region (the checkpoint op's recompute subgraphs) are
    never recorded onto an enclosing :class:`repro.nn.tape.Tape` — the
    enclosing tape sees the checkpoint op as a single opaque node.
    """

    def _note(self, out, parents, forward_fn, ctx) -> None:
        pass


_NULL_TAPE = _NullTape()


@contextmanager
def tape_shield():
    """Hide ops executed in this block from any actively recording tape."""
    _TAPE_STACK.append(_NULL_TAPE)
    try:
        yield
    finally:
        _TAPE_STACK.pop()


@contextmanager
def grads_suspended(tensors: Sequence["Tensor"]):
    """Temporarily clear ``requires_grad`` on ``tensors``.

    Used by the checkpoint op's forward so the wrapped subgraph runs as a
    pure value computation: no closure graph is built through the suspended
    parameters and nothing is noted onto a recording tape (``apply_op``
    skips both when no parent requires grad).
    """
    flags = [t.requires_grad for t in tensors]
    for t in tensors:
        t.requires_grad = False
    try:
        yield
    finally:
        for t, flag in zip(tensors, flags):
            t.requires_grad = flag


def _as_array(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Coerce ``value`` to a numpy array of the engine's dtype."""
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting may both prepend dimensions and stretch size-1 axes; the
    gradient of a broadcast is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def ctx_buffer(ctx: dict, key: str, shape: tuple, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """A persistent scratch array stored in ``ctx`` (uninitialised contents)."""
    buf = ctx.get(key)
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        buf = np.empty(shape, dtype=dtype)
        ctx[key] = buf
    return buf


def ctx_zeros(ctx: dict, key: str, shape: tuple, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Like :func:`ctx_buffer` but zero-filled on every call."""
    buf = ctx_buffer(ctx, key, shape, dtype)
    buf.fill(0)
    return buf


class Tensor:
    """A numpy-backed tensor that participates in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    def __init__(self, data, requires_grad: bool = False,
                 _parents: Sequence["Tensor"] = (), op: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._parents = tuple(_parents)
        self.op = op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag}, op={self.op or 'leaf'})"

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a single-element tensor, got shape "
                f"{self.data.shape}")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from the graph."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.data.shape}")

        order = topological_order(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Construction helpers used by operations
    # ------------------------------------------------------------------
    @staticmethod
    def _result(data: np.ndarray, parents: Sequence["Tensor"], op: str) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=parents if requires else (), op=op)

    # ------------------------------------------------------------------
    # Arithmetic operators
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return apply_op("add", (self, other), _add_forward, _add_backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return apply_op("neg", (self,), _neg_forward, _neg_backward)

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return (-self) + other

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return apply_op("mul", (self, other), _mul_forward, _mul_backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return apply_op("div", (self, other), _div_forward, _div_backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        return apply_op("pow", (self,), _pow_forward, _pow_backward,
                        ctx={"exponent": float(exponent)})

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return apply_op("matmul", (self, other), _matmul_forward,
                        _matmul_backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply_op("reshape", (self,), _reshape_forward,
                        _reshape_backward, ctx={"shape": shape})

    def transpose(self, axes: tuple | None = None) -> "Tensor":
        inverse = None if axes is None else tuple(np.argsort(axes))
        return apply_op("transpose", (self,), _transpose_forward,
                        _transpose_backward,
                        ctx={"axes": axes, "inverse": inverse})

    def __getitem__(self, index) -> "Tensor":
        return apply_op("getitem", (self,), _getitem_forward,
                        _getitem_backward, ctx={"index": index})

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op("sum", (self,), _sum_forward, _sum_backward,
                        ctx={"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))])
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op("max", (self,), _max_forward, _max_backward,
                        ctx={"axis": axis, "keepdims": keepdims})

    # ------------------------------------------------------------------
    # Elementwise nonlinearities (also exposed in functional)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return apply_op("exp", (self,), _exp_forward, _exp_backward)

    def log(self) -> "Tensor":
        return apply_op("log", (self,), _log_forward, _log_backward)


def topological_order(root: Tensor) -> list[Tensor]:
    """Ancestors of ``root`` in topological order (root last).

    Iterative DFS so deep graphs never hit the recursion limit.  Both
    :meth:`Tensor.backward` and tape replay use this one function, so the
    two paths execute backward closures — and therefore accumulate floating
    point gradients — in exactly the same order.
    """
    order: list[Tensor] = []
    visited: set[int] = {id(root)}
    stack: list[tuple[Tensor, Iterable[Tensor]]] = [(root, iter(root._parents))]
    while stack:
        current, parents = stack[-1]
        advanced = False
        for parent in parents:
            if id(parent) not in visited:
                visited.add(id(parent))
                stack.append((parent, iter(parent._parents)))
                advanced = True
                break
        if not advanced:
            order.append(current)
            stack.pop()
    return order


def apply_op(op: str, parents: Sequence[Tensor],
             forward_fn: Callable, backward_fn: Callable,
             ctx: dict | None = None) -> Tensor:
    """Create the output tensor of one differentiable operation.

    ``forward_fn(ctx, *parent_arrays, out=None)`` computes the result (using
    ``out`` as a destination buffer when it can); ``backward_fn(ctx, out,
    *parents)`` returns one gradient array (or ``None``) per parent, reading
    the *current* ``out.data`` / ``out.grad`` / ``parent.data`` so the node
    stays valid when a tape re-executes it with new leaf values.
    """
    ctx = {} if ctx is None else ctx
    out_data = forward_fn(ctx, *[p.data for p in parents])
    requires = any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=requires,
                 _parents=parents if requires else (), op=op)
    if requires:
        parents = tuple(parents)

        def backward() -> None:
            grads = backward_fn(ctx, out, *parents)
            for parent, grad in zip(parents, grads):
                if grad is not None:
                    parent._accumulate(grad)

        out._backward = backward
        if _TAPE_STACK:
            _TAPE_STACK[-1]._note(out, parents, forward_fn, ctx)
    return out


# ---------------------------------------------------------------------------
# Op implementations (forward/backward pairs keyed by op via apply_op)
# ---------------------------------------------------------------------------

def _add_forward(ctx, a, b, out=None):
    return np.add(a, b, out=out)


def _add_backward(ctx, out, a, b):
    grad = out.grad
    ga = unbroadcast(grad, a.data.shape) if a.requires_grad else None
    gb = unbroadcast(grad, b.data.shape) if b.requires_grad else None
    return ga, gb


def _neg_forward(ctx, a, out=None):
    return np.negative(a, out=out)


def _neg_backward(ctx, out, a):
    return (np.negative(out.grad, out=ctx_buffer(ctx, "ga", out.grad.shape)),)


def _mul_forward(ctx, a, b, out=None):
    return np.multiply(a, b, out=out)


def _mul_backward(ctx, out, a, b):
    grad = out.grad
    ga = gb = None
    if a.requires_grad:
        prod = np.multiply(grad, b.data, out=ctx_buffer(ctx, "ga", grad.shape))
        ga = unbroadcast(prod, a.data.shape)
    if b.requires_grad:
        prod = np.multiply(grad, a.data, out=ctx_buffer(ctx, "gb", grad.shape))
        gb = unbroadcast(prod, b.data.shape)
    return ga, gb


def _div_forward(ctx, a, b, out=None):
    return np.divide(a, b, out=out)


def _div_backward(ctx, out, a, b):
    grad = out.grad
    ga = gb = None
    if a.requires_grad:
        ga = unbroadcast(grad / b.data, a.data.shape)
    if b.requires_grad:
        gb = unbroadcast(-grad * a.data / (b.data ** 2), b.data.shape)
    return ga, gb


def _pow_forward(ctx, a, out=None):
    return np.power(a, ctx["exponent"], out=out)


def _pow_backward(ctx, out, a):
    exponent = ctx["exponent"]
    return (out.grad * exponent * a.data ** (exponent - 1),)


def _matmul_forward(ctx, a, b, out=None):
    if out is not None and out.ndim == 0:
        out = None  # np.matmul cannot write scalar results in place
    return np.matmul(a, b, out=out)


def _matmul_backward(ctx, out, a, b):
    grad = out.grad
    a_data, b_data = a.data, b.data
    a_ndim, b_ndim = a_data.ndim, b_data.ndim
    ga = gb = None
    if a.requires_grad:
        if b_ndim == 1 and a_ndim == 1:            # (m,) @ (m,) -> scalar
            grad_a = grad * b_data
        elif b_ndim == 1:                          # (n,m) @ (m,) -> (n,)
            grad_a = np.outer(grad, b_data)
        elif a_ndim == 1:                          # (m,) @ (m,p) -> (p,)
            grad_a = b_data @ grad
        else:                                      # (..,n,m) @ (..,m,p)
            grad_a = np.matmul(grad, b_data.swapaxes(-1, -2),
                               out=ctx_buffer(ctx, "ga", a_data.shape)
                               if grad.ndim == 2 and b_ndim == 2 else None)
        ga = unbroadcast(grad_a, a_data.shape)
    if b.requires_grad:
        if a_ndim == 1 and b_ndim == 1:
            grad_b = grad * a_data
        elif a_ndim == 1:                          # (m,) @ (m,p) -> (p,)
            grad_b = np.outer(a_data, grad)
        elif b_ndim == 1:                          # (n,m) @ (m,) -> (n,)
            grad_b = a_data.T @ grad
        else:
            grad_b = np.matmul(a_data.swapaxes(-1, -2), grad,
                               out=ctx_buffer(ctx, "gb", b_data.shape)
                               if grad.ndim == 2 and a_ndim == 2 else None)
        gb = unbroadcast(grad_b, b_data.shape)
    return ga, gb


def _reshape_forward(ctx, a, out=None):
    return a.reshape(ctx["shape"])


def _reshape_backward(ctx, out, a):
    return (out.grad.reshape(a.data.shape),)


def _transpose_forward(ctx, a, out=None):
    return a.transpose(ctx["axes"])


def _transpose_backward(ctx, out, a):
    return (out.grad.transpose(ctx["inverse"]),)


def _getitem_forward(ctx, a, out=None):
    return a[ctx["index"]]


def _getitem_backward(ctx, out, a):
    grad = ctx_zeros(ctx, "ga", a.data.shape, a.data.dtype)
    np.add.at(grad, ctx["index"], out.grad)
    return (grad,)


def _sum_forward(ctx, a, out=None):
    return np.sum(a, axis=ctx["axis"], keepdims=ctx["keepdims"], out=out)


def _sum_backward(ctx, out, a):
    grad = out.grad
    axis, keepdims = ctx["axis"], ctx["keepdims"]
    if axis is not None and not keepdims:
        grad = np.expand_dims(grad, axis)
    expanded = np.broadcast_to(grad, a.data.shape)
    buf = ctx_buffer(ctx, "ga", a.data.shape, a.data.dtype)
    np.copyto(buf, expanded)
    return (buf,)


def _max_forward(ctx, a, out=None):
    return np.amax(a, axis=ctx["axis"], keepdims=ctx["keepdims"], out=out)


def _max_backward(ctx, out, a):
    grad, out_data = out.grad, out.data
    axis = ctx["axis"]
    if axis is not None and not ctx["keepdims"]:
        grad = np.expand_dims(grad, axis)
        out_data = np.expand_dims(out_data, axis)
    mask = (a.data == out_data)
    counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
    return (mask * grad / counts,)


def _exp_forward(ctx, a, out=None):
    return np.exp(a, out=out)


def _exp_backward(ctx, out, a):
    return (np.multiply(out.grad, out.data,
                        out=ctx_buffer(ctx, "ga", out.data.shape)),)


def _log_forward(ctx, a, out=None):
    return np.log(a, out=out)


def _log_backward(ctx, out, a):
    return (out.grad / a.data,)


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def stack_parameters(params: Iterable[Tensor]) -> int:
    """Total number of scalar parameters, used for model summaries."""
    return int(sum(p.data.size for p in params))
