"""Loss functions.

The paper trains HyGNN end-to-end with binary cross-entropy (Eq. 13); we
provide the numerically stable logits formulation plus MSE for the CASTER
reconstruction term.  Losses follow the same replayable op contract as the
rest of the substrate (see :func:`repro.nn.tensor.apply_op`), so a recorded
training graph can re-evaluate its loss every epoch without re-tracing.
"""

from __future__ import annotations

import numpy as np

from .functional import stable_sigmoid
from .tensor import Tensor, apply_op


def _bce_with_logits_forward(ctx, z, out=None):
    targets = ctx["targets"]
    loss = np.maximum(z, 0.0) - z * targets + np.log1p(np.exp(-np.abs(z)))
    return np.asarray(loss.mean())


def _bce_with_logits_backward(ctx, out, logits):
    z = logits.data
    targets = ctx["targets"]
    n = max(z.size, 1)
    return (out.grad * (stable_sigmoid(z) - targets) / n,)


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Binary cross-entropy on raw scores, Eq. (13) of the paper.

    Uses the stable identity ``max(z, 0) - z*y + log(1 + exp(-|z|))`` so that
    extreme logits neither overflow nor produce NaN gradients.
    """
    targets = np.asarray(targets, dtype=logits.data.dtype)
    if targets.shape != logits.shape:
        raise ValueError(f"targets shape {targets.shape} != logits shape {logits.shape}")
    return apply_op("bce_with_logits", (logits,), _bce_with_logits_forward,
                    _bce_with_logits_backward, ctx={"targets": targets})


def _bce_forward(ctx, p, out=None):
    targets, eps = ctx["targets"], ctx["eps"]
    clipped = np.clip(p, eps, 1.0 - eps)
    ctx["clipped"] = clipped
    ctx["inside"] = (p > eps) & (p < 1.0 - eps)
    loss = -(targets * np.log(clipped) + (1.0 - targets) * np.log(1.0 - clipped))
    return np.asarray(loss.mean())


def _bce_backward(ctx, out, probabilities):
    targets, clipped = ctx["targets"], ctx["clipped"]
    n = max(probabilities.data.size, 1)
    grad = (clipped - targets) / (clipped * (1.0 - clipped)) / n
    return (out.grad * grad * ctx["inside"],)


def bce(probabilities: Tensor, targets: np.ndarray, eps: float = 1e-12) -> Tensor:
    """Cross-entropy on probabilities already in (0, 1)."""
    targets = np.asarray(targets, dtype=probabilities.data.dtype)
    return apply_op("bce", (probabilities,), _bce_forward, _bce_backward,
                    ctx={"targets": targets, "eps": eps})


def mse(predictions: Tensor, targets: np.ndarray) -> Tensor:
    targets = np.asarray(targets, dtype=predictions.data.dtype)
    diff = predictions - Tensor(targets)
    return (diff * diff).mean()
