"""Loss functions.

The paper trains HyGNN end-to-end with binary cross-entropy (Eq. 13); we
provide the numerically stable logits formulation plus MSE for the CASTER
reconstruction term.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Binary cross-entropy on raw scores, Eq. (13) of the paper.

    Uses the stable identity ``max(z, 0) - z*y + log(1 + exp(-|z|))`` so that
    extreme logits neither overflow nor produce NaN gradients.
    """
    targets = np.asarray(targets, dtype=logits.data.dtype)
    if targets.shape != logits.shape:
        raise ValueError(f"targets shape {targets.shape} != logits shape {logits.shape}")
    z = logits.data
    loss_data = np.maximum(z, 0.0) - z * targets + np.log1p(np.exp(-np.abs(z)))
    out = Tensor._result(np.array(loss_data.mean()), (logits,), "bce_with_logits")
    n = max(z.size, 1)

    def backward() -> None:
        sig = np.where(z >= 0, 1.0 / (1.0 + np.exp(-z)),
                       np.exp(z) / (1.0 + np.exp(z)))
        logits._accumulate(out.grad * (sig - targets) / n)

    out._backward = backward
    return out


def bce(probabilities: Tensor, targets: np.ndarray, eps: float = 1e-12) -> Tensor:
    """Cross-entropy on probabilities already in (0, 1)."""
    targets = np.asarray(targets, dtype=probabilities.data.dtype)
    p = probabilities.data
    clipped = np.clip(p, eps, 1.0 - eps)
    loss_data = -(targets * np.log(clipped) + (1.0 - targets) * np.log(1.0 - clipped))
    out = Tensor._result(np.array(loss_data.mean()), (probabilities,), "bce")
    n = max(p.size, 1)
    inside = (p > eps) & (p < 1.0 - eps)

    def backward() -> None:
        grad = (clipped - targets) / (clipped * (1.0 - clipped)) / n
        probabilities._accumulate(out.grad * grad * inside)

    out._backward = backward
    return out


def mse(predictions: Tensor, targets: np.ndarray) -> Tensor:
    targets = np.asarray(targets, dtype=predictions.data.dtype)
    diff = predictions - Tensor(targets)
    return (diff * diff).mean()
