"""``repro.nn`` — a from-scratch autograd / neural-network substrate.

The original HyGNN implementation targets PyTorch; this package supplies the
equivalent machinery on numpy so the whole reproduction runs offline:

- :mod:`repro.nn.tensor` — reverse-mode autodiff tensors (registry-style ops)
- :mod:`repro.nn.tape` — compiled, replayable op graphs (``Tape``)
- :mod:`repro.nn.functional` — activations, segment ops, fused
  segment-attention kernels, sparse matmul
- :mod:`repro.nn.modules` — ``Module`` / ``Linear`` / ``Dropout`` / ``MLP``
- :mod:`repro.nn.optim` — SGD / Adam
- :mod:`repro.nn.losses` — BCE (Eq. 13), MSE
- :mod:`repro.nn.gradcheck` — finite-difference validation
"""

from . import functional
from . import init
from .functional import SegmentPartition
from .gradcheck import gradcheck, numerical_gradient
from .losses import bce, bce_with_logits, mse
from .modules import (MLP, Dropout, Embedding, LeakyReLU, Linear, Module,
                      ReLU, Sequential)
from .optim import SGD, Adam, Optimizer
from .tape import Tape
from .tensor import Tensor, ones, tensor, zeros

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "Tape",
    "functional", "init", "SegmentPartition",
    "Module", "Linear", "Dropout", "Embedding", "Sequential", "MLP",
    "ReLU", "LeakyReLU",
    "Optimizer", "SGD", "Adam",
    "bce", "bce_with_logits", "mse",
    "gradcheck", "numerical_gradient",
]
