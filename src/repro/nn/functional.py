"""Differentiable functions for :mod:`repro.nn`.

Beyond the usual activations this module provides the *segment* operations
(``segment_sum``, ``segment_softmax``, ``segment_mean``) that make sparse
message passing tractable: hypergraph attention (HyGNN Eqs. 4-9) and graph
attention (GAT) are both softmaxes over variable-sized neighbourhoods, which
we flatten into (entry, segment-id) pairs and normalise per segment.

Every op follows the registry contract of :func:`repro.nn.tensor.apply_op`:
a ``forward(ctx, *arrays, out=None)`` / ``backward(ctx, out, *parents)``
pair that reads current values at call time, so recorded nodes can be
replayed by :class:`repro.nn.tape.Tape` with new leaf values and reused
scratch buffers.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import (Tensor, apply_op, ctx_buffer, ctx_zeros, unbroadcast)


# ---------------------------------------------------------------------------
# Elementwise activations
# ---------------------------------------------------------------------------

def _relu_forward(ctx, x, out=None):
    mask = np.greater(x, 0, out=ctx_buffer(ctx, "mask", x.shape, bool))
    return np.multiply(x, mask, out=out)


def _relu_backward(ctx, out, x):
    return (np.multiply(out.grad, ctx["mask"],
                        out=ctx_buffer(ctx, "ga", out.grad.shape)),)


def relu(x: Tensor) -> Tensor:
    return apply_op("relu", (x,), _relu_forward, _relu_backward)


def _leaky_relu_forward(ctx, x, out=None):
    mask = np.greater(x, 0, out=ctx_buffer(ctx, "mask", x.shape, bool))
    scale = ctx_buffer(ctx, "scale", x.shape, x.dtype)
    np.copyto(scale, ctx["negative_slope"])
    np.copyto(scale, 1.0, where=mask)
    return np.multiply(x, scale, out=out)


def _leaky_relu_backward(ctx, out, x):
    return (np.multiply(out.grad, ctx["scale"],
                        out=ctx_buffer(ctx, "ga", out.grad.shape)),)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """LeakyReLU, the encoder-side activation the paper uses (Sec. IV-B)."""
    return apply_op("leaky_relu", (x,), _leaky_relu_forward,
                    _leaky_relu_backward,
                    ctx={"negative_slope": negative_slope})


def stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable piecewise sigmoid on a raw numpy array.

    Shared by the ``sigmoid`` op and the BCE-with-logits gradient.  Each
    branch is evaluated only on the elements it is selected for (an
    ``np.where`` over both full branches would pay two ``exp`` passes per
    element and need clips to silence overflow in the discarded branch);
    on its own branch each formula is overflow-free, and per-element
    results are identical to the two-sided formulation.
    """
    z = np.asarray(z)
    positive = z >= 0
    negative = ~positive
    out = np.empty_like(
        z, dtype=z.dtype if np.issubdtype(z.dtype, np.floating)
        else np.float64)
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[negative])
    out[negative] = exp_z / (1.0 + exp_z)
    return out


def _sigmoid_forward(ctx, x, out=None):
    result = stable_sigmoid(x)
    if out is not None:
        np.copyto(out, result)
        return out
    return result


def _sigmoid_backward(ctx, out, x):
    return (out.grad * out.data * (1.0 - out.data),)


def sigmoid(x: Tensor) -> Tensor:
    return apply_op("sigmoid", (x,), _sigmoid_forward, _sigmoid_backward)


def _tanh_forward(ctx, x, out=None):
    return np.tanh(x, out=out)


def _tanh_backward(ctx, out, x):
    return (out.grad * (1.0 - out.data ** 2),)


def tanh(x: Tensor) -> Tensor:
    return apply_op("tanh", (x,), _tanh_forward, _tanh_backward)


def _elu_forward(ctx, x, out=None):
    alpha = ctx["alpha"]
    mask = np.greater(x, 0, out=ctx_buffer(ctx, "mask", x.shape, bool))
    exp_part = alpha * (np.exp(np.clip(x, None, 50)) - 1.0)
    ctx["exp_part"] = exp_part
    result = np.where(mask, x, exp_part)
    if out is not None:
        np.copyto(out, result)
        return out
    return result


def _elu_backward(ctx, out, x):
    alpha = ctx["alpha"]
    return (out.grad * np.where(ctx["mask"], 1.0, ctx["exp_part"] + alpha),)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    return apply_op("elu", (x,), _elu_forward, _elu_backward,
                    ctx={"alpha": alpha})


def _softmax_forward(ctx, x, out=None):
    axis = ctx["axis"]
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return np.divide(exps, exps.sum(axis=axis, keepdims=True), out=out)


def _softmax_backward(ctx, out, x):
    axis = ctx["axis"]
    dot = (out.grad * out.data).sum(axis=axis, keepdims=True)
    return (out.data * (out.grad - dot),)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply_op("softmax", (x,), _softmax_forward, _softmax_backward,
                    ctx={"axis": axis})


def _log_softmax_forward(ctx, x, out=None):
    axis = ctx["axis"]
    shifted = x - x.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return np.subtract(shifted, log_z, out=out)


def _log_softmax_backward(ctx, out, x):
    axis = ctx["axis"]
    soft = np.exp(out.data)
    return (out.grad - soft * out.grad.sum(axis=axis, keepdims=True),)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply_op("log_softmax", (x,), _log_softmax_forward,
                    _log_softmax_backward, ctx={"axis": axis})


# ---------------------------------------------------------------------------
# Structural ops
# ---------------------------------------------------------------------------

def _concat_forward(ctx, *datas, out=None):
    return np.concatenate(datas, axis=ctx["axis"], out=out)


def _concat_backward(ctx, out, *parents):
    axis = ctx["axis"]
    offsets = ctx["offsets"]
    grads = []
    for parent, start, stop in zip(parents, offsets[:-1], offsets[1:]):
        if parent.requires_grad:
            index = [slice(None)] * out.grad.ndim
            index[axis] = slice(start, stop)
            grads.append(out.grad[tuple(index)])
        else:
            grads.append(None)
    return grads


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)
    return apply_op("concat", tuple(tensors), _concat_forward,
                    _concat_backward, ctx={"axis": axis, "offsets": offsets})


def _gather_rows_forward(ctx, x, out=None):
    return np.take(x, ctx["indices"], axis=0, out=out)


def _gather_rows_backward(ctx, out, x):
    grad = ctx_zeros(ctx, "ga", x.data.shape, x.data.dtype)
    np.add.at(grad, ctx["indices"], out.grad)
    return (grad,)


def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``x[indices]`` with gradient scattered back by ``add.at``."""
    indices = np.asarray(indices, dtype=np.int64)
    return apply_op("gather_rows", (x,), _gather_rows_forward,
                    _gather_rows_backward, ctx={"indices": indices})


def _dropout_forward(ctx, x, out=None):
    mask = (ctx["rng"].random(x.shape) >= ctx["p"]) / (1.0 - ctx["p"])
    ctx["mask"] = mask
    return np.multiply(x, mask, out=out)


def _dropout_backward(ctx, out, x):
    return (np.multiply(out.grad, ctx["mask"],
                        out=ctx_buffer(ctx, "ga", out.grad.shape)),)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``.

    The mask is drawn inside the op's forward function, so a taped dropout
    node resamples a fresh mask from the *same* generator stream on every
    replay — epoch-by-epoch masks match the eager loop's exactly.
    """
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    return apply_op("dropout", (x,), _dropout_forward, _dropout_backward,
                    ctx={"p": p, "rng": rng})


# ---------------------------------------------------------------------------
# Segment ops (sparse attention / message passing kernels)
# ---------------------------------------------------------------------------

def _check_segments(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1:
        raise ValueError("segment_ids must be 1-D")
    if segment_ids.size and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise ValueError("segment id out of range")
    return segment_ids


class SegmentPartition:
    """Precomputed grouping of rows by segment id.

    ``np.add.at`` / ``np.maximum.at`` are unbuffered ufunc loops — correct but
    slow.  When the same ``segment_ids`` array drives many segment ops (every
    encoder layer re-groups the identical incidence list), it pays to sort the
    rows by segment once and reduce contiguous slices with ``ufunc.reduceat``.
    This object caches that sort: the stable permutation ``order`` (``None``
    when the ids are already sorted, so no gather is needed), per-segment
    ``counts``, and the slice ``starts`` of the non-empty segments.

    The stable sort preserves each segment's row order, so the fast path
    reduces the same values in the same logical order as the scatter path;
    results agree to floating-point round-off (``reduceat`` may use numpy's
    pairwise inner loop, so the last bits can differ from ``add.at``).
    """

    __slots__ = ("num_segments", "size", "order", "counts",
                 "nonempty", "reduce_starts")

    def __init__(self, segment_ids: np.ndarray, num_segments: int):
        segment_ids = _check_segments(segment_ids, num_segments)
        self.num_segments = int(num_segments)
        self.size = segment_ids.size
        if segment_ids.size == 0 or np.all(segment_ids[:-1] <= segment_ids[1:]):
            self.order = None
        else:
            self.order = np.argsort(segment_ids, kind="stable")
        self.counts = np.bincount(segment_ids, minlength=num_segments)
        starts = np.zeros(num_segments, dtype=np.int64)
        np.cumsum(self.counts[:-1], out=starts[1:])
        self.nonempty = np.flatnonzero(self.counts)
        self.reduce_starts = starts[self.nonempty]

    def gather(self, values: np.ndarray) -> np.ndarray:
        """Rows of ``values`` reordered so each segment is contiguous."""
        return values if self.order is None else values[self.order]

    def reduce(self, values: np.ndarray, ufunc=np.add,
               out: np.ndarray | None = None) -> np.ndarray:
        """Per-segment ``ufunc`` reduction; empty segments keep ``out``'s fill."""
        if out is None:
            out = np.zeros((self.num_segments,) + values.shape[1:],
                           dtype=values.dtype)
        if self.size != len(values):
            raise ValueError("partition size does not match values")
        if self.reduce_starts.size:
            out[self.nonempty] = ufunc.reduceat(
                self.gather(values), self.reduce_starts, axis=0)
        return out


def _check_partition(partition: SegmentPartition | None,
                     segment_ids: np.ndarray, num_segments: int) -> None:
    if partition is None:
        return
    if (partition.num_segments != num_segments
            or partition.size != segment_ids.size):
        raise ValueError("partition does not match segment_ids/num_segments")


def _segment_sum_forward(ctx, x, out=None):
    partition: SegmentPartition | None = ctx["partition"]
    num_segments = ctx["num_segments"]
    if out is None:
        out = np.zeros((num_segments,) + x.shape[1:], dtype=x.dtype)
    else:
        out.fill(0)
    if partition is not None:
        return partition.reduce(x, out=out)
    np.add.at(out, ctx["segment_ids"], x)
    return out


def _segment_sum_backward(ctx, out, x):
    return (np.take(out.grad, ctx["segment_ids"], axis=0,
                    out=ctx_buffer(ctx, "ga", x.data.shape, x.data.dtype)),)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int,
                partition: SegmentPartition | None = None) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets given per-row ids.

    ``partition``, when given, must be a :class:`SegmentPartition` built from
    the same ``segment_ids``; it replaces the ``np.add.at`` scatter with a
    cached-sort ``reduceat`` — equal to round-off, much faster on large graphs.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    _check_partition(partition, segment_ids, num_segments)
    return apply_op("segment_sum", (x,), _segment_sum_forward,
                    _segment_sum_backward,
                    ctx={"segment_ids": segment_ids,
                         "num_segments": num_segments,
                         "partition": partition})


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int,
                 partition: SegmentPartition | None = None) -> Tensor:
    """Per-segment mean; empty segments produce zeros."""
    segment_ids = _check_segments(segment_ids, num_segments)
    if partition is not None:
        counts = partition.counts.astype(x.data.dtype)
    else:
        counts = np.bincount(segment_ids, minlength=num_segments).astype(x.data.dtype)
    safe = np.maximum(counts, 1.0)
    summed = segment_sum(x, segment_ids, num_segments, partition=partition)
    scale = (1.0 / safe).reshape((num_segments,) + (1,) * (x.ndim - 1))
    return summed * Tensor(scale)


def _segment_softmax_forward(ctx, scores, out=None):
    partition: SegmentPartition | None = ctx["partition"]
    segment_ids = ctx["segment_ids"]
    num_segments = ctx["num_segments"]
    # Per-segment max for numerical stability.
    seg_max = ctx_buffer(ctx, "seg_max", (num_segments,), scores.dtype)
    seg_max.fill(-np.inf)
    if partition is not None:
        partition.reduce(scores, ufunc=np.maximum, out=seg_max)
    else:
        np.maximum.at(seg_max, segment_ids, scores)
    per_entry = ctx_buffer(ctx, "per_entry", scores.shape, scores.dtype)
    np.take(seg_max, segment_ids, out=per_entry)
    shifted = np.subtract(scores, per_entry, out=per_entry)
    exps = np.exp(shifted, out=shifted)
    seg_sum = ctx_zeros(ctx, "seg_sum", (num_segments,), scores.dtype)
    if partition is not None:
        partition.reduce(exps, out=seg_sum)
    else:
        np.add.at(seg_sum, segment_ids, exps)
    return np.divide(exps, seg_sum[segment_ids], out=out)


def _segment_softmax_backward(ctx, out, scores):
    partition: SegmentPartition | None = ctx["partition"]
    segment_ids = ctx["segment_ids"]
    num_segments = ctx["num_segments"]
    weighted = np.multiply(out.grad, out.data,
                           out=ctx_buffer(ctx, "weighted", out.data.shape,
                                          out.data.dtype))
    seg_dot = ctx_zeros(ctx, "seg_dot", (num_segments,), out.data.dtype)
    if partition is not None:
        partition.reduce(weighted, out=seg_dot)
    else:
        np.add.at(seg_dot, segment_ids, weighted)
    return (weighted - out.data * seg_dot[segment_ids],)


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int,
                    partition: SegmentPartition | None = None) -> Tensor:
    """Softmax of ``scores`` normalised independently within each segment.

    ``scores`` is 1-D with one entry per (member, group) incidence; the output
    has the same shape and sums to 1 within every segment.  This is the kernel
    behind the attention coefficients of HyGNN Eqs. (5) and (8) and of GAT.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    _check_partition(partition, segment_ids, num_segments)
    if scores.data.ndim != 1:
        raise ValueError("segment_softmax expects 1-D scores")
    return apply_op("segment_softmax", (scores,), _segment_softmax_forward,
                    _segment_softmax_backward,
                    ctx={"segment_ids": segment_ids,
                         "num_segments": num_segments,
                         "partition": partition})


def _sparse_matmul_forward(ctx, x, out=None):
    return ctx["csr"] @ x


def _sparse_matmul_backward(ctx, out, x):
    return (ctx["csr"].T @ out.grad,)


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Multiply a constant scipy sparse matrix with a dense tensor.

    The sparse structure carries no gradient (it encodes graph topology); the
    gradient w.r.t. ``x`` is ``matrix.T @ grad`` (``.T`` is an O(1) CSC view,
    so it is taken per backward call rather than materialised up front).
    """
    return apply_op("sparse_matmul", (x,), _sparse_matmul_forward,
                    _sparse_matmul_backward, ctx={"csr": matrix.tocsr()})


# ---------------------------------------------------------------------------
# Losses-adjacent helpers
# ---------------------------------------------------------------------------

def _clip_forward(ctx, x, out=None):
    low, high = ctx["low"], ctx["high"]
    mask = np.logical_and(x > low, x < high,
                          out=ctx_buffer(ctx, "mask", x.shape, bool))
    return np.clip(x, low, high, out=out)


def _clip_backward(ctx, out, x):
    return (out.grad * ctx["mask"],)


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values; gradient is passed through only inside the interval."""
    return apply_op("clip", (x,), _clip_forward, _clip_backward,
                    ctx={"low": low, "high": high})
