"""Differentiable functions for :mod:`repro.nn`.

Beyond the usual activations this module provides the *segment* operations
(``segment_sum``, ``segment_softmax``, ``segment_mean``) that make sparse
message passing tractable: hypergraph attention (HyGNN Eqs. 4-9) and graph
attention (GAT) are both softmaxes over variable-sized neighbourhoods, which
we flatten into (entry, segment-id) pairs and normalise per segment.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, unbroadcast


# ---------------------------------------------------------------------------
# Elementwise activations
# ---------------------------------------------------------------------------

def relu(x: Tensor) -> Tensor:
    mask = x.data > 0
    out = Tensor._result(x.data * mask, (x,), "relu")

    def backward() -> None:
        x._accumulate(out.grad * mask)

    out._backward = backward
    return out


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """LeakyReLU, the encoder-side activation the paper uses (Sec. IV-B)."""
    mask = x.data > 0
    scale = np.where(mask, 1.0, negative_slope)
    out = Tensor._result(x.data * scale, (x,), "leaky_relu")

    def backward() -> None:
        x._accumulate(out.grad * scale)

    out._backward = backward
    return out


def sigmoid(x: Tensor) -> Tensor:
    # Numerically stable piecewise form.
    data = x.data
    out_data = np.where(data >= 0, 1.0 / (1.0 + np.exp(-np.clip(data, -500, None))),
                        np.exp(np.clip(data, None, 500))
                        / (1.0 + np.exp(np.clip(data, None, 500))))
    out = Tensor._result(out_data, (x,), "sigmoid")

    def backward() -> None:
        x._accumulate(out.grad * out_data * (1.0 - out_data))

    out._backward = backward
    return out


def tanh(x: Tensor) -> Tensor:
    out_data = np.tanh(x.data)
    out = Tensor._result(out_data, (x,), "tanh")

    def backward() -> None:
        x._accumulate(out.grad * (1.0 - out_data ** 2))

    out._backward = backward
    return out


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    mask = x.data > 0
    exp_part = alpha * (np.exp(np.clip(x.data, None, 50)) - 1.0)
    out_data = np.where(mask, x.data, exp_part)
    out = Tensor._result(out_data, (x,), "elu")

    def backward() -> None:
        x._accumulate(out.grad * np.where(mask, 1.0, exp_part + alpha))

    out._backward = backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)
    out = Tensor._result(out_data, (x,), "softmax")

    def backward() -> None:
        dot = (out.grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (out.grad - dot))

    out._backward = backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    out = Tensor._result(out_data, (x,), "log_softmax")
    soft = np.exp(out_data)

    def backward() -> None:
        x._accumulate(out.grad - soft * out.grad.sum(axis=axis, keepdims=True))

    out._backward = backward
    return out


# ---------------------------------------------------------------------------
# Structural ops
# ---------------------------------------------------------------------------

def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    datas = [t.data for t in tensors]
    out = Tensor._result(np.concatenate(datas, axis=axis), tuple(tensors), "concat")
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward() -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * out.grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(out.grad[tuple(index)])

    out._backward = backward
    return out


def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``x[indices]`` with gradient scattered back by ``add.at``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = Tensor._result(x.data[indices], (x,), "gather_rows")

    def backward() -> None:
        grad = np.zeros_like(x.data)
        np.add.at(grad, indices, out.grad)
        x._accumulate(grad)

    out._backward = backward
    return out


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    out = Tensor._result(x.data * mask, (x,), "dropout")

    def backward() -> None:
        x._accumulate(out.grad * mask)

    out._backward = backward
    return out


# ---------------------------------------------------------------------------
# Segment ops (sparse attention / message passing kernels)
# ---------------------------------------------------------------------------

def _check_segments(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1:
        raise ValueError("segment_ids must be 1-D")
    if segment_ids.size and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise ValueError("segment id out of range")
    return segment_ids


class SegmentPartition:
    """Precomputed grouping of rows by segment id.

    ``np.add.at`` / ``np.maximum.at`` are unbuffered ufunc loops — correct but
    slow.  When the same ``segment_ids`` array drives many segment ops (every
    encoder layer re-groups the identical incidence list), it pays to sort the
    rows by segment once and reduce contiguous slices with ``ufunc.reduceat``.
    This object caches that sort: the stable permutation ``order`` (``None``
    when the ids are already sorted, so no gather is needed), per-segment
    ``counts``, and the slice ``starts`` of the non-empty segments.

    The stable sort preserves each segment's row order, so the fast path
    reduces the same values in the same logical order as the scatter path;
    results agree to floating-point round-off (``reduceat`` may use numpy's
    pairwise inner loop, so the last bits can differ from ``add.at``).
    """

    __slots__ = ("num_segments", "size", "order", "counts",
                 "nonempty", "reduce_starts")

    def __init__(self, segment_ids: np.ndarray, num_segments: int):
        segment_ids = _check_segments(segment_ids, num_segments)
        self.num_segments = int(num_segments)
        self.size = segment_ids.size
        if segment_ids.size == 0 or np.all(segment_ids[:-1] <= segment_ids[1:]):
            self.order = None
        else:
            self.order = np.argsort(segment_ids, kind="stable")
        self.counts = np.bincount(segment_ids, minlength=num_segments)
        starts = np.zeros(num_segments, dtype=np.int64)
        np.cumsum(self.counts[:-1], out=starts[1:])
        self.nonempty = np.flatnonzero(self.counts)
        self.reduce_starts = starts[self.nonempty]

    def gather(self, values: np.ndarray) -> np.ndarray:
        """Rows of ``values`` reordered so each segment is contiguous."""
        return values if self.order is None else values[self.order]

    def reduce(self, values: np.ndarray, ufunc=np.add,
               out: np.ndarray | None = None) -> np.ndarray:
        """Per-segment ``ufunc`` reduction; empty segments keep ``out``'s fill."""
        if out is None:
            out = np.zeros((self.num_segments,) + values.shape[1:],
                           dtype=values.dtype)
        if self.size != len(values):
            raise ValueError("partition size does not match values")
        if self.reduce_starts.size:
            out[self.nonempty] = ufunc.reduceat(
                self.gather(values), self.reduce_starts, axis=0)
        return out


def _check_partition(partition: SegmentPartition | None,
                     segment_ids: np.ndarray, num_segments: int) -> None:
    if partition is None:
        return
    if (partition.num_segments != num_segments
            or partition.size != segment_ids.size):
        raise ValueError("partition does not match segment_ids/num_segments")


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int,
                partition: SegmentPartition | None = None) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets given per-row ids.

    ``partition``, when given, must be a :class:`SegmentPartition` built from
    the same ``segment_ids``; it replaces the ``np.add.at`` scatter with a
    cached-sort ``reduceat`` — equal to round-off, much faster on large graphs.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    _check_partition(partition, segment_ids, num_segments)
    if partition is not None:
        out_data = partition.reduce(x.data)
    else:
        out_shape = (num_segments,) + x.shape[1:]
        out_data = np.zeros(out_shape, dtype=x.data.dtype)
        np.add.at(out_data, segment_ids, x.data)
    out = Tensor._result(out_data, (x,), "segment_sum")

    def backward() -> None:
        x._accumulate(out.grad[segment_ids])

    out._backward = backward
    return out


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int,
                 partition: SegmentPartition | None = None) -> Tensor:
    """Per-segment mean; empty segments produce zeros."""
    segment_ids = _check_segments(segment_ids, num_segments)
    if partition is not None:
        counts = partition.counts.astype(x.data.dtype)
    else:
        counts = np.bincount(segment_ids, minlength=num_segments).astype(x.data.dtype)
    safe = np.maximum(counts, 1.0)
    summed = segment_sum(x, segment_ids, num_segments, partition=partition)
    scale = (1.0 / safe).reshape((num_segments,) + (1,) * (x.ndim - 1))
    return summed * Tensor(scale)


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int,
                    partition: SegmentPartition | None = None) -> Tensor:
    """Softmax of ``scores`` normalised independently within each segment.

    ``scores`` is 1-D with one entry per (member, group) incidence; the output
    has the same shape and sums to 1 within every segment.  This is the kernel
    behind the attention coefficients of HyGNN Eqs. (5) and (8) and of GAT.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    _check_partition(partition, segment_ids, num_segments)
    data = scores.data
    if data.ndim != 1:
        raise ValueError("segment_softmax expects 1-D scores")
    # Per-segment max for numerical stability.
    if partition is not None:
        seg_max = partition.reduce(
            data, ufunc=np.maximum,
            out=np.full(num_segments, -np.inf, dtype=data.dtype))
    else:
        seg_max = np.full(num_segments, -np.inf, dtype=data.dtype)
        np.maximum.at(seg_max, segment_ids, data)
    shifted = data - seg_max[segment_ids]
    exps = np.exp(shifted)
    if partition is not None:
        seg_sum = partition.reduce(exps)
    else:
        seg_sum = np.zeros(num_segments, dtype=data.dtype)
        np.add.at(seg_sum, segment_ids, exps)
    out_data = exps / seg_sum[segment_ids]
    out = Tensor._result(out_data, (scores,), "segment_softmax")

    def backward() -> None:
        weighted = out.grad * out_data
        if partition is not None:
            seg_dot = partition.reduce(weighted)
        else:
            seg_dot = np.zeros(num_segments, dtype=data.dtype)
            np.add.at(seg_dot, segment_ids, weighted)
        scores._accumulate(weighted - out_data * seg_dot[segment_ids])

    out._backward = backward
    return out


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Multiply a constant scipy sparse matrix with a dense tensor.

    The sparse structure carries no gradient (it encodes graph topology); the
    gradient w.r.t. ``x`` is ``matrix.T @ grad``.
    """
    csr = matrix.tocsr()
    out = Tensor._result(csr @ x.data, (x,), "sparse_matmul")

    def backward() -> None:
        x._accumulate(csr.T @ out.grad)

    out._backward = backward
    return out


# ---------------------------------------------------------------------------
# Losses-adjacent helpers
# ---------------------------------------------------------------------------

def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values; gradient is passed through only inside the interval."""
    mask = (x.data > low) & (x.data < high)
    out = Tensor._result(np.clip(x.data, low, high), (x,), "clip")

    def backward() -> None:
        x._accumulate(out.grad * mask)

    out._backward = backward
    return out
