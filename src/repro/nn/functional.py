"""Differentiable functions for :mod:`repro.nn`.

Beyond the usual activations this module provides the *segment* operations
(``segment_sum``, ``segment_softmax``, ``segment_mean``) that make sparse
message passing tractable: hypergraph attention (HyGNN Eqs. 4-9) and graph
attention (GAT) are both softmaxes over variable-sized neighbourhoods, which
we flatten into (entry, segment-id) pairs and normalise per segment.  The
fused kernels ``incidence_scores`` and ``segment_attend`` compute the two
expensive halves of that attention — per-incidence bilinear scores and the
attention-weighted aggregation — blockwise, without the ``(nnz, d)``
intermediates the composed ops materialise, while preserving their
summation order bitwise.

Every op follows the registry contract of :func:`repro.nn.tensor.apply_op`:
a ``forward(ctx, *arrays, out=None)`` / ``backward(ctx, out, *parents)``
pair that reads current values at call time, so recorded nodes can be
replayed by :class:`repro.nn.tape.Tape` with new leaf values and reused
scratch buffers.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import (DEFAULT_DTYPE, Tensor, apply_op, ctx_buffer, ctx_zeros,
                     grads_suspended, tape_shield, topological_order,
                     unbroadcast)


# ---------------------------------------------------------------------------
# Elementwise activations
# ---------------------------------------------------------------------------

def _relu_forward(ctx, x, out=None):
    mask = np.greater(x, 0, out=ctx_buffer(ctx, "mask", x.shape, bool))
    return np.multiply(x, mask, out=out)


def _relu_backward(ctx, out, x):
    return (np.multiply(out.grad, ctx["mask"],
                        out=ctx_buffer(ctx, "ga", out.grad.shape)),)


def relu(x: Tensor) -> Tensor:
    return apply_op("relu", (x,), _relu_forward, _relu_backward)


def _leaky_relu_forward(ctx, x, out=None):
    mask = np.greater(x, 0, out=ctx_buffer(ctx, "mask", x.shape, bool))
    scale = ctx_buffer(ctx, "scale", x.shape, x.dtype)
    np.copyto(scale, ctx["negative_slope"])
    np.copyto(scale, 1.0, where=mask)
    return np.multiply(x, scale, out=out)


def _leaky_relu_backward(ctx, out, x):
    return (np.multiply(out.grad, ctx["scale"],
                        out=ctx_buffer(ctx, "ga", out.grad.shape)),)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """LeakyReLU, the encoder-side activation the paper uses (Sec. IV-B)."""
    return apply_op("leaky_relu", (x,), _leaky_relu_forward,
                    _leaky_relu_backward,
                    ctx={"negative_slope": negative_slope})


def stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable piecewise sigmoid on a raw numpy array.

    Shared by the ``sigmoid`` op and the BCE-with-logits gradient.  Each
    branch is evaluated only on the elements it is selected for (an
    ``np.where`` over both full branches would pay two ``exp`` passes per
    element and need clips to silence overflow in the discarded branch);
    on its own branch each formula is overflow-free, and per-element
    results are identical to the two-sided formulation.
    """
    z = np.asarray(z)
    positive = z >= 0
    negative = ~positive
    out = np.empty_like(
        z, dtype=z.dtype if np.issubdtype(z.dtype, np.floating)
        else np.float64)
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[negative])
    out[negative] = exp_z / (1.0 + exp_z)
    return out


def _sigmoid_forward(ctx, x, out=None):
    result = stable_sigmoid(x)
    if out is not None:
        np.copyto(out, result)
        return out
    return result


def _sigmoid_backward(ctx, out, x):
    return (out.grad * out.data * (1.0 - out.data),)


def sigmoid(x: Tensor) -> Tensor:
    return apply_op("sigmoid", (x,), _sigmoid_forward, _sigmoid_backward)


def _tanh_forward(ctx, x, out=None):
    return np.tanh(x, out=out)


def _tanh_backward(ctx, out, x):
    return (out.grad * (1.0 - out.data ** 2),)


def tanh(x: Tensor) -> Tensor:
    return apply_op("tanh", (x,), _tanh_forward, _tanh_backward)


def _elu_forward(ctx, x, out=None):
    alpha = ctx["alpha"]
    mask = np.greater(x, 0, out=ctx_buffer(ctx, "mask", x.shape, bool))
    exp_part = alpha * (np.exp(np.clip(x, None, 50)) - 1.0)
    ctx["exp_part"] = exp_part
    result = np.where(mask, x, exp_part)
    if out is not None:
        np.copyto(out, result)
        return out
    return result


def _elu_backward(ctx, out, x):
    alpha = ctx["alpha"]
    return (out.grad * np.where(ctx["mask"], 1.0, ctx["exp_part"] + alpha),)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    return apply_op("elu", (x,), _elu_forward, _elu_backward,
                    ctx={"alpha": alpha})


def _softmax_forward(ctx, x, out=None):
    axis = ctx["axis"]
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return np.divide(exps, exps.sum(axis=axis, keepdims=True), out=out)


def _softmax_backward(ctx, out, x):
    axis = ctx["axis"]
    dot = (out.grad * out.data).sum(axis=axis, keepdims=True)
    return (out.data * (out.grad - dot),)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply_op("softmax", (x,), _softmax_forward, _softmax_backward,
                    ctx={"axis": axis})


def _log_softmax_forward(ctx, x, out=None):
    axis = ctx["axis"]
    shifted = x - x.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return np.subtract(shifted, log_z, out=out)


def _log_softmax_backward(ctx, out, x):
    axis = ctx["axis"]
    soft = np.exp(out.data)
    return (out.grad - soft * out.grad.sum(axis=axis, keepdims=True),)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply_op("log_softmax", (x,), _log_softmax_forward,
                    _log_softmax_backward, ctx={"axis": axis})


# ---------------------------------------------------------------------------
# Structural ops
# ---------------------------------------------------------------------------

def _concat_forward(ctx, *datas, out=None):
    return np.concatenate(datas, axis=ctx["axis"], out=out)


def _concat_backward(ctx, out, *parents):
    axis = ctx["axis"]
    offsets = ctx["offsets"]
    grads = []
    for parent, start, stop in zip(parents, offsets[:-1], offsets[1:]):
        if parent.requires_grad:
            index = [slice(None)] * out.grad.ndim
            index[axis] = slice(start, stop)
            grads.append(out.grad[tuple(index)])
        else:
            grads.append(None)
    return grads


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)
    return apply_op("concat", tuple(tensors), _concat_forward,
                    _concat_backward, ctx={"axis": axis, "offsets": offsets})


def _gather_rows_forward(ctx, x, out=None):
    return np.take(x, ctx["indices"], axis=0, out=out)


def _gather_rows_backward(ctx, out, x):
    grad = ctx_zeros(ctx, "ga", x.data.shape, x.data.dtype)
    np.add.at(grad, ctx["indices"], out.grad)
    return (grad,)


def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``x[indices]`` with gradient scattered back by ``add.at``."""
    indices = np.asarray(indices, dtype=np.int64)
    return apply_op("gather_rows", (x,), _gather_rows_forward,
                    _gather_rows_backward, ctx={"indices": indices})


def _dropout_forward(ctx, x, out=None):
    mask = (ctx["rng"].random(x.shape) >= ctx["p"]) / (1.0 - ctx["p"])
    ctx["mask"] = mask
    return np.multiply(x, mask, out=out)


def _dropout_backward(ctx, out, x):
    return (np.multiply(out.grad, ctx["mask"],
                        out=ctx_buffer(ctx, "ga", out.grad.shape)),)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``.

    The mask is drawn inside the op's forward function, so a taped dropout
    node resamples a fresh mask from the *same* generator stream on every
    replay — epoch-by-epoch masks match the eager loop's exactly.
    """
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    return apply_op("dropout", (x,), _dropout_forward, _dropout_backward,
                    ctx={"p": p, "rng": rng})


# ---------------------------------------------------------------------------
# Segment ops (sparse attention / message passing kernels)
# ---------------------------------------------------------------------------

def _check_segments(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1:
        raise ValueError("segment_ids must be 1-D")
    if segment_ids.size and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise ValueError("segment id out of range")
    return segment_ids


class SegmentPartition:
    """Precomputed grouping of rows by segment id.

    ``np.add.at`` / ``np.maximum.at`` are unbuffered ufunc loops — correct but
    slow.  When the same ``segment_ids`` array drives many segment ops (every
    encoder layer re-groups the identical incidence list), it pays to sort the
    rows by segment once and reduce contiguous slices with ``ufunc.reduceat``.
    This object caches that sort: the stable permutation ``order`` (``None``
    when the ids are already sorted, so no gather is needed), per-segment
    ``counts``, and the slice ``starts`` of the non-empty segments.

    The stable sort preserves each segment's row order, so the fast path
    reduces the same values in the same logical order as the scatter path;
    results agree to floating-point round-off (``reduceat`` may use numpy's
    pairwise inner loop, so the last bits can differ from ``add.at``).
    """

    __slots__ = ("num_segments", "size", "order", "counts",
                 "nonempty", "reduce_starts", "_inv_counts", "_plans")

    def __init__(self, segment_ids: np.ndarray, num_segments: int):
        segment_ids = _check_segments(segment_ids, num_segments)
        self.num_segments = int(num_segments)
        self.size = segment_ids.size
        if segment_ids.size == 0 or np.all(segment_ids[:-1] <= segment_ids[1:]):
            self.order = None
        else:
            self.order = np.argsort(segment_ids, kind="stable")
        self.counts = np.bincount(segment_ids, minlength=num_segments)
        starts = np.zeros(num_segments, dtype=np.int64)
        np.cumsum(self.counts[:-1], out=starts[1:])
        self.nonempty = np.flatnonzero(self.counts)
        self.reduce_starts = starts[self.nonempty]
        self._inv_counts: np.ndarray | None = None
        self._plans: dict[int, tuple] = {}

    @property
    def inv_counts(self) -> np.ndarray:
        """Cached ``1 / max(counts, 1)`` — the :func:`segment_mean` scale.

        Computed once per partition instead of on every call (and every tape
        replay): the partition is immutable, so the reciprocal never changes.
        """
        if self._inv_counts is None:
            self._inv_counts = 1.0 / np.maximum(
                self.counts.astype(DEFAULT_DTYPE), 1.0)
        return self._inv_counts

    def gather(self, values: np.ndarray) -> np.ndarray:
        """Rows of ``values`` reordered so each segment is contiguous."""
        return values if self.order is None else values[self.order]

    def reduce_plan(self, block_rows: int) -> tuple:
        """Cached blocking of the sorted rows into whole-segment chunks.

        Returns ``(blocks, max_rows, max_segments)`` where each block is
        ``(seg_lo, seg_hi, row_lo, row_hi, local_starts)``: a run of
        consecutive *non-empty* segments whose rows span
        ``[row_lo, row_hi)`` in partition order, at most ``block_rows`` rows
        unless a single segment alone exceeds the budget.  Because blocks
        never split a segment, a per-block ``add.reduceat`` produces exactly
        the same per-segment sums as one ``reduceat`` over the full sorted
        array — that is what keeps the fused kernels bitwise-identical to
        :meth:`reduce`.
        """
        plan = self._plans.get(block_rows)
        if plan is None:
            starts = self.reduce_starts
            blocks: list[tuple] = []
            max_rows = max_segments = 0
            if starts.size:
                ends = np.append(starts[1:], self.size)
                i, nseg = 0, starts.size
                while i < nseg:
                    row_lo = int(starts[i])
                    j = int(np.searchsorted(ends, row_lo + block_rows,
                                            side="right"))
                    if j <= i:      # one oversized segment gets its own block
                        j = i + 1
                    row_hi = int(ends[j - 1])
                    blocks.append((i, j, row_lo, row_hi, starts[i:j] - row_lo))
                    max_rows = max(max_rows, row_hi - row_lo)
                    max_segments = max(max_segments, j - i)
                    i = j
            plan = (blocks, max_rows, max_segments)
            self._plans[block_rows] = plan
        return plan

    def reduce(self, values: np.ndarray, ufunc=np.add,
               out: np.ndarray | None = None) -> np.ndarray:
        """Per-segment ``ufunc`` reduction; empty segments keep ``out``'s fill."""
        if out is None:
            out = np.zeros((self.num_segments,) + values.shape[1:],
                           dtype=values.dtype)
        if self.size != len(values):
            raise ValueError("partition size does not match values")
        if self.reduce_starts.size:
            out[self.nonempty] = ufunc.reduceat(
                self.gather(values), self.reduce_starts, axis=0)
        return out


def _check_partition(partition: SegmentPartition | None,
                     segment_ids: np.ndarray, num_segments: int) -> None:
    if partition is None:
        return
    if (partition.num_segments != num_segments
            or partition.size != segment_ids.size):
        raise ValueError("partition does not match segment_ids/num_segments")


def _segment_sum_forward(ctx, x, out=None):
    partition: SegmentPartition | None = ctx["partition"]
    num_segments = ctx["num_segments"]
    if out is None:
        out = np.zeros((num_segments,) + x.shape[1:], dtype=x.dtype)
    else:
        out.fill(0)
    if partition is not None:
        return partition.reduce(x, out=out)
    np.add.at(out, ctx["segment_ids"], x)
    return out


def _segment_sum_backward(ctx, out, x):
    return (np.take(out.grad, ctx["segment_ids"], axis=0,
                    out=ctx_buffer(ctx, "ga", x.data.shape, x.data.dtype)),)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int,
                partition: SegmentPartition | None = None) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets given per-row ids.

    ``partition``, when given, must be a :class:`SegmentPartition` built from
    the same ``segment_ids``; it replaces the ``np.add.at`` scatter with a
    cached-sort ``reduceat`` — equal to round-off, much faster on large graphs.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    _check_partition(partition, segment_ids, num_segments)
    return apply_op("segment_sum", (x,), _segment_sum_forward,
                    _segment_sum_backward,
                    ctx={"segment_ids": segment_ids,
                         "num_segments": num_segments,
                         "partition": partition})


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int,
                 partition: SegmentPartition | None = None) -> Tensor:
    """Per-segment mean; empty segments produce zeros."""
    segment_ids = _check_segments(segment_ids, num_segments)
    if partition is not None:
        inv = partition.inv_counts          # cached reciprocal counts
    else:
        counts = np.bincount(segment_ids, minlength=num_segments).astype(x.data.dtype)
        inv = 1.0 / np.maximum(counts, 1.0)
    summed = segment_sum(x, segment_ids, num_segments, partition=partition)
    scale = inv.reshape((num_segments,) + (1,) * (x.ndim - 1))
    return summed * Tensor(scale)


def _segment_softmax_forward(ctx, scores, out=None):
    partition: SegmentPartition | None = ctx["partition"]
    segment_ids = ctx["segment_ids"]
    num_segments = ctx["num_segments"]
    # Per-segment max for numerical stability.
    seg_max = ctx_buffer(ctx, "seg_max", (num_segments,), scores.dtype)
    seg_max.fill(-np.inf)
    if partition is not None:
        partition.reduce(scores, ufunc=np.maximum, out=seg_max)
    else:
        np.maximum.at(seg_max, segment_ids, scores)
    per_entry = ctx_buffer(ctx, "per_entry", scores.shape, scores.dtype)
    np.take(seg_max, segment_ids, out=per_entry)
    shifted = np.subtract(scores, per_entry, out=per_entry)
    exps = np.exp(shifted, out=shifted)
    seg_sum = ctx_zeros(ctx, "seg_sum", (num_segments,), scores.dtype)
    if partition is not None:
        partition.reduce(exps, out=seg_sum)
    else:
        np.add.at(seg_sum, segment_ids, exps)
    return np.divide(exps, seg_sum[segment_ids], out=out)


def _segment_softmax_backward(ctx, out, scores):
    partition: SegmentPartition | None = ctx["partition"]
    segment_ids = ctx["segment_ids"]
    num_segments = ctx["num_segments"]
    weighted = np.multiply(out.grad, out.data,
                           out=ctx_buffer(ctx, "weighted", out.data.shape,
                                          out.data.dtype))
    seg_dot = ctx_zeros(ctx, "seg_dot", (num_segments,), out.data.dtype)
    if partition is not None:
        partition.reduce(weighted, out=seg_dot)
    else:
        np.add.at(seg_dot, segment_ids, weighted)
    return (weighted - out.data * seg_dot[segment_ids],)


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int,
                    partition: SegmentPartition | None = None) -> Tensor:
    """Softmax of ``scores`` normalised independently within each segment.

    ``scores`` is 1-D with one entry per (member, group) incidence; the output
    has the same shape and sums to 1 within every segment.  This is the kernel
    behind the attention coefficients of HyGNN Eqs. (5) and (8) and of GAT.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    _check_partition(partition, segment_ids, num_segments)
    if scores.data.ndim != 1:
        raise ValueError("segment_softmax expects 1-D scores")
    return apply_op("segment_softmax", (scores,), _segment_softmax_forward,
                    _segment_softmax_backward,
                    ctx={"segment_ids": segment_ids,
                         "num_segments": num_segments,
                         "partition": partition})


# ---------------------------------------------------------------------------
# Fused attention kernels (blockwise, no (nnz, d) intermediates)
# ---------------------------------------------------------------------------
#
# The HyGNN attention levels (Eqs. 4-9) are, per level:
#
#   scores[k]  = sum_d keys[key_ids[k], d] * queries[query_ids[k], d]
#   att        = segment_softmax(leaky_relu(scores), segment_ids)
#   out[s]     = sum_{k in seg(s)} att[k] * transformed[value_ids[k]]
#
# Composed from gather_rows / mul / sum / segment_sum, that materialises five
# (nnz, d) intermediates per level.  ``incidence_scores`` and
# ``segment_attend`` compute the same quantities streamed through
# O(block * d) scratch instead.  Both are registry-style op pairs, so tapes
# record and replay them with ctx-cached scratch, and both preserve the
# unfused summation order exactly: row dots reduce each row independently
# (identical to ``(a * b).sum(axis=1)``), and the attention-weighted SpMM
# reduces whole segments per block in the cached ``SegmentPartition`` order
# (identical to ``partition.reduce``), so outputs are bitwise-equal to the
# unfused composition.

# Scratch blocks target ~this many bytes per buffer; at hidden 128 that is
# 512 rows — big enough to amortise the python loop, small enough to stay
# cache-resident and keep peak scratch far below the (nnz, d) buffers.
_FUSED_BLOCK_BYTES = 512 * 1024


def _default_block_rows(dim: int, itemsize: int = 8) -> int:
    return max(128, _FUSED_BLOCK_BYTES // max(1, dim * itemsize))


def _blockwise_row_dot(a_table, a_ids, b_table, b_ids, out, ctx, prefix,
                       block_rows):
    """``out[k] = sum_d a_table[a_ids[k]] * b_table[b_ids[k]]`` blockwise.

    Row reductions are independent, so computing them in (block, d) chunks
    is bitwise-identical to ``(a_table[a_ids] * b_table[b_ids]).sum(axis=1)``
    without ever materialising the two (nnz, d) gathers or their product.
    """
    n = a_ids.size
    if n == 0:
        return out
    dim = a_table.shape[1]
    rows = min(n, block_rows)
    sa = ctx_buffer(ctx, prefix + "a", (rows, dim), a_table.dtype)
    sb = ctx_buffer(ctx, prefix + "b", (rows, dim), b_table.dtype)
    for lo in range(0, n, rows):
        hi = min(lo + rows, n)
        m = hi - lo
        np.take(a_table, a_ids[lo:hi], axis=0, out=sa[:m])
        np.take(b_table, b_ids[lo:hi], axis=0, out=sb[:m])
        np.multiply(sa[:m], sb[:m], out=sa[:m])
        np.sum(sa[:m], axis=1, out=out[lo:hi])
    return out


def _segment_scaled_gather_sum(partition, values, value_ids_sorted,
                               weights_sorted, out, ctx, prefix, block_rows):
    """``out[s] = sum_{k in seg(s)} weights[k] * values[value_ids[k]]``.

    Entries arrive in partition (segment-contiguous) order; each block of
    whole segments is gathered into scratch, scaled in place, and reduced
    with a local ``add.reduceat`` — the same per-segment slices, hence the
    same floating-point sums, as one ``reduceat`` over the full sorted
    (nnz, d) array.  Empty segments keep ``out``'s prior fill.
    """
    blocks, max_rows, max_segments = partition.reduce_plan(block_rows)
    if not blocks:
        return out
    dim = values.shape[1]
    scratch = ctx_buffer(ctx, prefix + "rows", (max_rows, dim), values.dtype)
    seg_out = ctx_buffer(ctx, prefix + "segs", (max_segments, dim),
                         values.dtype)
    nonempty = partition.nonempty
    for seg_lo, seg_hi, row_lo, row_hi, local_starts in blocks:
        m = row_hi - row_lo
        k = seg_hi - seg_lo
        np.take(values, value_ids_sorted[row_lo:row_hi], axis=0,
                out=scratch[:m])
        np.multiply(scratch[:m], weights_sorted[row_lo:row_hi, None],
                    out=scratch[:m])
        np.add.reduceat(scratch[:m], local_starts, axis=0, out=seg_out[:k])
        out[nonempty[seg_lo:seg_hi]] = seg_out[:k]
    return out


def _scatter_scaled_rows(grad, ids, src_table, src_ids, weights, ctx, prefix,
                         block_rows):
    """``grad[ids[k]] += weights[k] * src_table[src_ids[k]]`` blockwise.

    Fallback scatter for backward passes without a cached partition over
    ``ids`` — unbuffered ``np.add.at``, but still O(block * d) scratch.
    """
    n = ids.size
    if n == 0:
        return grad
    dim = src_table.shape[1]
    rows = min(n, block_rows)
    scratch = ctx_buffer(ctx, prefix + "rows", (rows, dim), src_table.dtype)
    for lo in range(0, n, rows):
        hi = min(lo + rows, n)
        m = hi - lo
        np.take(src_table, src_ids[lo:hi], axis=0, out=scratch[:m])
        np.multiply(scratch[:m], weights[lo:hi, None], out=scratch[:m])
        np.add.at(grad, ids[lo:hi], scratch[:m])
    return grad


def _sorted_ids(ctx, key, partition, ids):
    """Cache ``ids`` reordered into ``partition``'s segment-contiguous order."""
    cached = ctx.get(key)
    if cached is None:
        cached = partition.gather(ids)
        ctx[key] = cached
    return cached


def _sorted_weights(ctx, key, partition, weights):
    """``weights`` in partition order, via a reused scratch buffer."""
    if partition.order is None:
        return weights
    return np.take(weights, partition.order,
                   out=ctx_buffer(ctx, key, weights.shape, weights.dtype))


def _partition_grad_scatter(ctx, partition, ids_key, other_ids, src_table,
                            weights, grad, prefix):
    """Partitioned scatter: segment-sort the entries by the gradient's row
    id, then reuse the scaled-gather-reduce kernel (reduceat instead of the
    unbuffered ``add.at``)."""
    block_rows = ctx["block_rows"]
    src_ids_sorted = _sorted_ids(ctx, ids_key, partition, other_ids)
    weights_sorted = _sorted_weights(ctx, prefix + "w", partition, weights)
    return _segment_scaled_gather_sum(partition, src_table, src_ids_sorted,
                                      weights_sorted, grad, ctx, prefix,
                                      block_rows)


def _incidence_scores_forward(ctx, keys, queries, out=None):
    key_ids, query_ids = ctx["key_ids"], ctx["query_ids"]
    if out is None:
        out = np.empty(key_ids.shape, dtype=keys.dtype)
    out = _blockwise_row_dot(keys, key_ids, queries, query_ids, out, ctx,
                             "f_", ctx["block_rows"])
    slope = ctx.get("negative_slope")
    if slope is not None:
        # Fused LeakyReLU: same mask/scale/multiply arithmetic as the
        # standalone op, applied in place on the fresh scores — one fewer
        # O(nnz) read+write pass, bitwise-identical values.
        mask = np.greater(out, 0, out=ctx_buffer(ctx, "lr_mask", out.shape,
                                                 bool))
        scale = ctx_buffer(ctx, "lr_scale", out.shape, out.dtype)
        np.copyto(scale, slope)
        np.copyto(scale, 1.0, where=mask)
        np.multiply(out, scale, out=out)
    return out


def _incidence_scores_backward(ctx, out, keys, queries):
    grad = out.grad
    if ctx.get("negative_slope") is not None:
        # Chain through the fused activation first: d(raw)/d(score) is the
        # cached scale — the same multiply the standalone backward does.
        grad = np.multiply(grad, ctx["lr_scale"],
                           out=ctx_buffer(ctx, "lr_g", grad.shape,
                                          grad.dtype))
    key_ids, query_ids = ctx["key_ids"], ctx["query_ids"]
    block_rows = ctx["block_rows"]
    grad_keys = grad_queries = None
    if keys.requires_grad:
        grad_keys = ctx_zeros(ctx, "gk", keys.data.shape, keys.data.dtype)
        partition = ctx["key_partition"]
        if partition is not None:
            _partition_grad_scatter(ctx, partition, "q_by_k", query_ids,
                                    queries.data, grad, grad_keys, "bk_")
        else:
            _scatter_scaled_rows(grad_keys, key_ids, queries.data, query_ids,
                                 grad, ctx, "bk_", block_rows)
    if queries.requires_grad:
        grad_queries = ctx_zeros(ctx, "gq", queries.data.shape,
                                 queries.data.dtype)
        partition = ctx["query_partition"]
        if partition is not None:
            _partition_grad_scatter(ctx, partition, "k_by_q", key_ids,
                                    keys.data, grad, grad_queries, "bq_")
        else:
            _scatter_scaled_rows(grad_queries, query_ids, keys.data, key_ids,
                                 grad, ctx, "bq_", block_rows)
    return grad_keys, grad_queries


def _check_index_partition(partition: SegmentPartition | None,
                           ids: np.ndarray, num_rows: int, name: str) -> None:
    if partition is None:
        return
    if partition.num_segments != num_rows or partition.size != ids.size:
        raise ValueError(f"{name} does not match the ids/table it groups")


def incidence_scores(keys: Tensor, queries: Tensor, key_ids: np.ndarray,
                     query_ids: np.ndarray, *,
                     key_partition: SegmentPartition | None = None,
                     query_partition: SegmentPartition | None = None,
                     block_rows: int | None = None,
                     negative_slope: float | None = None) -> Tensor:
    """Per-incidence bilinear scores ``sum_d keys[key_ids]·queries[query_ids]``.

    The fused Eq. (6)/(9) kernel: a 1-D score per (node, hyperedge)
    incidence entry, computed blockwise so the two gathered ``(nnz, a)``
    operands and their product are never materialised — bitwise-identical to
    ``(gather_rows(keys, key_ids) * gather_rows(queries, query_ids)).sum(1)``.

    ``negative_slope`` additionally fuses a LeakyReLU onto the scores in
    the same kernel (two fewer O(nnz) passes over the score vector than a
    separate activation op), bitwise-identical — forward values and
    gradients — to ``leaky_relu(incidence_scores(...), negative_slope)``.

    ``key_partition`` / ``query_partition`` are optional
    :class:`SegmentPartition` groupings of the incidence entries by
    ``key_ids`` / ``query_ids``; when given, the backward scatter runs as a
    cached-sort ``reduceat`` instead of an unbuffered ``np.add.at``
    (round-off-level gradient difference, large speedup).
    """
    key_ids = np.asarray(key_ids, dtype=np.int64)
    query_ids = np.asarray(query_ids, dtype=np.int64)
    if key_ids.ndim != 1 or key_ids.shape != query_ids.shape:
        raise ValueError("key_ids and query_ids must be equal-length 1-D")
    if keys.data.ndim != 2 or queries.data.ndim != 2 \
            or keys.data.shape[1] != queries.data.shape[1]:
        raise ValueError("keys and queries must be 2-D with equal width")
    _check_index_partition(key_partition, key_ids, keys.data.shape[0],
                           "key_partition")
    _check_index_partition(query_partition, query_ids, queries.data.shape[0],
                           "query_partition")
    if block_rows is None:
        block_rows = _default_block_rows(keys.data.shape[1])
    return apply_op("incidence_scores", (keys, queries),
                    _incidence_scores_forward, _incidence_scores_backward,
                    ctx={"key_ids": key_ids, "query_ids": query_ids,
                         "key_partition": key_partition,
                         "query_partition": query_partition,
                         "block_rows": block_rows,
                         "negative_slope": negative_slope})


def _segment_attend_forward(ctx, att, values, out=None):
    partition: SegmentPartition = ctx["partition"]
    if out is None:
        out = np.zeros((partition.num_segments,) + values.shape[1:],
                       dtype=values.dtype)
    else:
        out.fill(0)
    value_ids_sorted = _sorted_ids(ctx, "v_by_s", partition, ctx["value_ids"])
    weights_sorted = _sorted_weights(ctx, "fw_w", partition, att)
    return _segment_scaled_gather_sum(partition, values, value_ids_sorted,
                                      weights_sorted, out, ctx, "fw_",
                                      ctx["block_rows"])


def _segment_attend_backward(ctx, out, att, values):
    grad = out.grad
    segment_ids, value_ids = ctx["segment_ids"], ctx["value_ids"]
    block_rows = ctx["block_rows"]
    grad_att = grad_values = None
    if att.requires_grad:
        grad_att = ctx_buffer(ctx, "g_att", att.data.shape, att.data.dtype)
        _blockwise_row_dot(grad, segment_ids, values.data, value_ids,
                           grad_att, ctx, "ba_", block_rows)
    if values.requires_grad:
        grad_values = ctx_zeros(ctx, "g_val", values.data.shape,
                                values.data.dtype)
        partition = ctx["value_partition"]
        if partition is not None:
            _partition_grad_scatter(ctx, partition, "s_by_v", segment_ids,
                                    grad, att.data, grad_values, "bv_")
        else:
            _scatter_scaled_rows(grad_values, value_ids, grad, segment_ids,
                                 att.data, ctx, "bv_", block_rows)
    return grad_att, grad_values


def segment_attend(att: Tensor, values: Tensor, value_ids: np.ndarray,
                   segment_ids: np.ndarray, num_segments: int, *,
                   partition: SegmentPartition | None = None,
                   value_partition: SegmentPartition | None = None,
                   block_rows: int | None = None) -> Tensor:
    """Attention-weighted SpMM ``out[s] = Σ_{k∈seg(s)} att[k]·values[value_ids[k]]``.

    The fused Eq. (4)/(7) aggregation: streams the incidence entries through
    ``partition``'s cached CSR order in O(block · d) scratch, never
    materialising the ``(nnz, d)`` gather or ``messages`` buffer — and keeps
    every segment's summation order identical to the unfused
    ``segment_sum(gather_rows(values, value_ids) * att[:, None], ...)``
    composition with the same partition, so results are bitwise-equal.

    ``partition`` groups entries by ``segment_ids`` (built here when absent);
    ``value_partition`` optionally groups them by ``value_ids`` to turn the
    backward scatter into a cached-sort ``reduceat``.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    value_ids = np.asarray(value_ids, dtype=np.int64)
    if value_ids.ndim != 1 or value_ids.shape != segment_ids.shape:
        raise ValueError("value_ids and segment_ids must be equal-length 1-D")
    if att.data.ndim != 1 or att.data.shape != segment_ids.shape:
        raise ValueError("att must be 1-D with one entry per incidence")
    if values.data.ndim != 2:
        raise ValueError("values must be 2-D")
    _check_partition(partition, segment_ids, num_segments)
    _check_index_partition(value_partition, value_ids, values.data.shape[0],
                           "value_partition")
    if partition is None:
        partition = SegmentPartition(segment_ids, num_segments)
    if block_rows is None:
        block_rows = _default_block_rows(values.data.shape[1])
    return apply_op("segment_attend", (att, values),
                    _segment_attend_forward, _segment_attend_backward,
                    ctx={"segment_ids": segment_ids, "value_ids": value_ids,
                         "partition": partition,
                         "value_partition": value_partition,
                         "block_rows": block_rows})


def _sparse_matmul_forward(ctx, x, out=None):
    return ctx["csr"] @ x


def _sparse_matmul_backward(ctx, out, x):
    return (ctx["csr"].T @ out.grad,)


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Multiply a constant scipy sparse matrix with a dense tensor.

    The sparse structure carries no gradient (it encodes graph topology); the
    gradient w.r.t. ``x`` is ``matrix.T @ grad`` (``.T`` is an O(1) CSC view,
    so it is taken per backward call rather than materialised up front).
    """
    return apply_op("sparse_matmul", (x,), _sparse_matmul_forward,
                    _sparse_matmul_backward, ctx={"csr": matrix.tocsr()})


# ---------------------------------------------------------------------------
# Losses-adjacent helpers
# ---------------------------------------------------------------------------

def _clip_forward(ctx, x, out=None):
    low, high = ctx["low"], ctx["high"]
    mask = np.logical_and(x > low, x < high,
                          out=ctx_buffer(ctx, "mask", x.shape, bool))
    return np.clip(x, low, high, out=out)


def _clip_backward(ctx, out, x):
    return (out.grad * ctx["mask"],)


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values; gradient is passed through only inside the interval."""
    return apply_op("clip", (x,), _clip_forward, _clip_backward,
                    ctx={"low": low, "high": high})


# ---------------------------------------------------------------------------
# Recompute-in-backward checkpointing (memory-lean deep training)
# ---------------------------------------------------------------------------

def _checkpoint_input_freed(ctx, x_data) -> bool:
    return x_data.size == 0 and ctx["input_size"] != 0


def _invertible_checkpoint_forward(ctx, x_data, *param_datas, out=None):
    """Run the wrapped subgraph as a pure value computation, then free x.

    The subgraph is executed with every captured tensor's ``requires_grad``
    suspended and a tape shield in place, so no closure graph is built and
    no inner op reaches an enclosing tape — the checkpoint is one opaque
    node.  When ``free_input`` is set the input activation is replaced with
    a zero-size placeholder; backward reconstructs it via ``fn_inverse``.
    """
    fn = ctx["fn"]
    captured = ctx["captured"]
    with tape_shield(), grads_suspended(captured):
        result = fn(Tensor(x_data))
    if not isinstance(result, Tensor):
        raise TypeError("invertible_checkpoint fn must return a Tensor")
    if ctx["free_input"]:
        holder = ctx["input_ref"]
        holder.data = np.empty(0, dtype=x_data.dtype)
    return result.data


def _release_recompute_graph(root: Tensor, protect: set[int]) -> None:
    """Dismantle a transient eager graph so refcounting frees it promptly.

    Every grad-carrying node holds a ``_backward`` closure that refers back
    to the node — a reference cycle only the garbage collector would break.
    Chained checkpoint backwards would therefore stack every block's
    recompute scratch until a collection ran, defeating the O(1)-in-depth
    memory claim; clearing the closures and parent links here makes each
    block's graph die the moment its backward returns.  Externally owned
    tensors (the captured params, which belong to the outer graph) are
    protected.
    """
    for node in topological_order(root):
        if id(node) in protect:
            continue
        node._backward = None
        node._parents = ()
        node.grad = None


def _invertible_checkpoint_backward(ctx, out, x, *params):
    fn, fn_inverse = ctx["fn"], ctx["fn_inverse"]
    captured = ctx["captured"]
    if _checkpoint_input_freed(ctx, x.data):
        # Reconstruct the freed input from the output (reversible blocks)
        # and restore it so upstream backward functions see valid data.
        with tape_shield(), grads_suspended(captured):
            x_data = fn_inverse(Tensor(out.data)).numpy()
        if x_data.shape != ctx["input_shape"]:
            raise ValueError(
                f"fn_inverse produced shape {x_data.shape}, expected the "
                f"recorded input shape {ctx['input_shape']}")
        x.data = np.ascontiguousarray(x_data, dtype=out.data.dtype)
    # Re-run the subgraph with gradients enabled on an isolated leaf, then
    # backpropagate the output gradient through the transient inner graph.
    # Captured tensors' existing grads are parked so the inner backward's
    # contributions can be collected cleanly and returned to apply_op,
    # which accumulates them into the outer graph exactly once.
    with tape_shield():
        x_leaf = Tensor(x.data, requires_grad=x.requires_grad)
        parked = [(p, p.grad) for p in captured]
        for p in captured:
            p.grad = None
        try:
            y = fn(x_leaf)
            y.backward(out.grad)
            grads = tuple(p.grad for p in params)
        finally:
            for p, saved in parked:
                p.grad = saved
    x_grad = x_leaf.grad if x.requires_grad else None
    _release_recompute_graph(y, {id(t) for t in captured})
    return (x_grad,) + grads


def invertible_checkpoint(fn, fn_inverse, x: Tensor,
                          params: tuple = (), *,
                          free_input: bool = True,
                          op: str = "invertible_checkpoint") -> Tensor:
    """Apply ``fn`` to ``x`` without storing the subgraph's activations.

    The recompute-in-backward op pair (after DGL's ``InvertibleCheckpoint``
    for grouped reversible residual blocks): forward evaluates ``fn`` as a
    plain value computation and — when ``free_input`` is set and ``x`` is an
    intermediate — frees ``x``'s activation, keeping only the inversion
    closure in ``ctx``.  Backward calls ``fn_inverse(output)`` to
    reconstruct the input, restores it for upstream ops, re-runs ``fn`` with
    gradients enabled, and returns the input/parameter gradients.  Chained
    checkpoints therefore hold O(1) activations in chain depth.

    ``params`` must list every tensor ``fn`` reads besides ``x`` (layer
    weights and captured activations such as the attention stem); they
    become parents of the output so their gradients flow, and their
    ``requires_grad`` is suspended during the no-grad passes.  ``fn`` must
    be deterministic given current tensor values (no RNG draws), and the
    checkpoint must be ``x``'s only consumer when ``free_input`` is set.
    Leaf tensors are never freed — their data is user-owned.

    The op follows the registry contract, marks itself ``tape_transient``,
    and is fully replayable: under a :class:`repro.nn.Tape` the output gets
    no pinned buffer and replay frees activation and gradient as soon as
    backward is done with them.
    """
    params = tuple(params)
    for p in params:
        if not isinstance(p, Tensor):
            raise TypeError("params must be Tensors consumed by fn")
    ctx = {
        "fn": fn,
        "fn_inverse": fn_inverse,
        "captured": params,
        "input_ref": x,
        "input_shape": x.data.shape,
        "input_size": x.data.size,
        # Never free a leaf: its array is user/optimizer-owned state.
        "free_input": bool(free_input) and bool(x._parents),
        "tape_transient": True,
    }
    return apply_op(op, (x,) + params, _invertible_checkpoint_forward,
                    _invertible_checkpoint_backward, ctx=ctx)
