"""Compiled, replayable autograd graphs.

HyGNN's hypergraph topology is *fixed* across training: every epoch runs the
identical op sequence over the identical incidence arrays — only the
parameter values change.  The closure-based eager engine nevertheless pays
per epoch for re-tracing (fresh ``Tensor`` objects and closures), a fresh
topological sort, and — dominating on large graphs — re-allocating every
intermediate activation and every gradient buffer from scratch.

:class:`Tape` removes all of that.  ``Tape.record(fn)`` runs ``fn`` once
eagerly while capturing, in execution order, every differentiable node it
creates: output tensor, parent tensors, the op's module-level forward
function, and its mutable ``ctx`` (static metadata such as segment ids plus
saved activations).  Because ops follow the registry contract of
:func:`repro.nn.tensor.apply_op` — forward/backward read *current* values at
call time — the captured graph can then be re-executed at will:

- :meth:`Tape.forward` re-runs the forward functions over the recorded
  nodes, writing results into each node's existing output buffer in place
  (stochastic ops such as dropout resample from their generator exactly as
  the eager loop would);
- :meth:`Tape.backward` seeds the root gradient and runs the recorded
  backward closures in the same topological order :meth:`Tensor.backward`
  uses, accumulating into persistent, pre-zeroed gradient buffers;
- :meth:`Tape.replay` does both.

Replay is arithmetically *identical* to the eager loop — same functions,
same operand values, same accumulation order — so loss trajectories and
final weights match the closure path bitwise.  It is merely faster: no
tracing, no sorting, and no allocation or page-zeroing churn in the hot
loop.  New leaf values flow in either implicitly (optimizers update
parameter tensors in place) or explicitly via ``replay(new_leaf_values)``.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from .tensor import Tensor, _TAPE_STACK, _as_array, topological_order


class TapeNode:
    """One recorded op application: output, parents, forward fn, ctx."""

    __slots__ = ("out", "parents", "forward_fn", "ctx", "buffer")

    def __init__(self, out: Tensor, parents: Sequence[Tensor],
                 forward_fn: Callable, ctx: dict):
        self.out = out
        self.parents = parents
        self.forward_fn = forward_fn
        self.ctx = ctx
        # The node's output array doubles as the replay destination buffer
        # whenever it owns its memory; view-producing ops (reshape,
        # transpose) rebuild their cheap views on every replay instead.
        # Transient ops (the recompute-in-backward checkpoint) opt out: a
        # pinned buffer would defeat the memory they exist to release.
        data = out.data
        if ctx.get("tape_transient"):
            self.buffer = None
        else:
            self.buffer = (data if data.base is None and data.flags.owndata
                           else None)


class Tape:
    """A recorded op graph that replays forward+backward without re-tracing."""

    def __init__(self):
        self.root: Tensor | None = None
        self.nodes: list[TapeNode] = []
        self.leaves: list[Tensor] = []
        self._order: list[Tensor] = []
        self._grad_slots: list[tuple[Tensor, np.ndarray]] | None = None
        self._transient: list[Tensor] = []
        self._transient_ids: set[int] = set()
        self._leaf_consumers: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @classmethod
    def record(cls, fn: Callable[[], Tensor]) -> "Tape":
        """Run ``fn`` once eagerly, capturing its op graph.

        ``fn`` must return the root :class:`Tensor` (typically a scalar
        loss, or an embedding matrix for encoder-only tapes) and must
        require grad — a constant graph has nothing to replay.  Recording
        does not nest.
        """
        if _TAPE_STACK:
            raise RuntimeError("Tape.record calls cannot be nested")
        tape = cls()
        _TAPE_STACK.append(tape)
        try:
            root = fn()
        finally:
            _TAPE_STACK.pop()
        if not isinstance(root, Tensor):
            raise TypeError(f"record() expects fn to return a Tensor, "
                            f"got {type(root).__name__}")
        if not root.requires_grad:
            raise ValueError("record() root does not require grad; "
                             "there is no graph to replay")
        tape._finalize(root)
        return tape

    def _note(self, out: Tensor, parents: Sequence[Tensor],
              forward_fn: Callable, ctx: dict) -> None:
        """Called by ``apply_op`` for every differentiable node created."""
        self.nodes.append(TapeNode(out, parents, forward_fn, ctx))

    def _finalize(self, root: Tensor) -> None:
        self.root = root
        self._order = topological_order(root)
        recorded = {id(node.out) for node in self.nodes}
        for tensor in self._order:
            if tensor._backward is not None and id(tensor) not in recorded:
                raise RuntimeError(
                    f"graph contains an op ({tensor.op or 'custom'}) that "
                    f"was not routed through apply_op; it cannot be replayed")
        self.leaves = [t for t in self._order
                       if not t._parents and t.requires_grad]
        # Transient outputs (recompute-in-backward checkpoints) have no
        # persistent activation or gradient storage: replay frees both as
        # soon as the backward pass is done with them.
        self._transient = [node.out for node in self.nodes
                           if node.ctx.get("tape_transient")]
        self._transient_ids = {id(t) for t in self._transient}
        # Remember which op first consumes each leaf so shape errors on
        # rebinding can name the kernel that would have received the value.
        self._leaf_consumers = {}
        for node in self.nodes:
            for parent in node.parents:
                self._leaf_consumers.setdefault(id(parent), node.out.op)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_ops(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        root = "unset" if self.root is None else (self.root.op or "leaf")
        return (f"Tape(ops={self.num_ops}, leaves={len(self.leaves)}, "
                f"root={root})")

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _bind_leaves(self, leaf_values: Mapping[Tensor, np.ndarray]) -> None:
        known = {id(t) for t in self.leaves}
        for tensor, value in leaf_values.items():
            if id(tensor) not in known:
                raise KeyError(f"{tensor!r} is not a leaf of this tape")
            value = _as_array(value)
            if value.shape != tensor.data.shape:
                consumer = self._leaf_consumers.get(id(tensor), "<root>")
                raise ValueError(
                    f"leaf value shape {value.shape} != recorded shape "
                    f"{tensor.data.shape} for the leaf feeding op "
                    f"{consumer!r}; tape topology is static")
            tensor.data = value

    def forward(self, leaf_values: Mapping[Tensor, np.ndarray] | None = None
                ) -> Tensor:
        """Re-execute the recorded forward pass; returns the root tensor.

        ``leaf_values`` optionally rebinds leaf tensors (shape-checked —
        the recorded topology is static) before re-execution.  Parameter
        updates applied in place by an optimizer are picked up
        automatically, since forward functions read ``parent.data`` at call
        time.
        """
        if leaf_values:
            self._bind_leaves(leaf_values)
        for node in self.nodes:
            datas = [p.data for p in node.parents]
            if node.buffer is not None:
                node.out.data = node.forward_fn(node.ctx, *datas,
                                                out=node.buffer)
            else:
                node.out.data = node.forward_fn(node.ctx, *datas)
        return self.root

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run the recorded backward pass from the root.

        Gradient buffers for every tensor in the graph (parameters
        included) are allocated once on first use, then zero-filled and
        reused — ``tensor.grad`` afterwards holds exactly what the eager
        ``root.backward()`` would have produced, bit for bit.
        """
        root = self.root
        if grad is None:
            if root.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    "scalar root")
            grad = np.ones_like(root.data)
        else:
            grad = _as_array(grad)
            if grad.shape != root.data.shape:
                raise ValueError(f"gradient shape {grad.shape} != root "
                                 f"shape {root.data.shape}")
        if self._grad_slots is None:
            # Transient tensors get no persistent slot: their shapes may be
            # freed placeholders between replays, and pinning a grad buffer
            # would reinstate exactly the O(depth) memory the checkpoint op
            # removes.  ``_accumulate`` allocates for them on demand.
            self._grad_slots = [(t, np.empty_like(t.data))
                                for t in self._order
                                if t.requires_grad
                                and id(t) not in self._transient_ids]
        for tensor, buf in self._grad_slots:
            buf.fill(0)
            tensor.grad = buf
        for tensor in self._transient:
            tensor.grad = None
        root._accumulate(grad)
        transient_ids = self._transient_ids
        for tensor in reversed(self._order):
            if tensor._backward is not None and tensor.grad is not None:
                tensor._backward()
                if id(tensor) in transient_ids:
                    # Nothing upstream reads a transient activation or its
                    # gradient once its backward has run (the checkpoint op
                    # restored its parents' data itself); release both so
                    # peak memory stays O(1) in the chain length.
                    tensor.grad = None
                    tensor.data = np.empty(0, dtype=tensor.data.dtype)

    def replay(self, leaf_values: Mapping[Tensor, np.ndarray] | None = None,
               grad: np.ndarray | None = None) -> Tensor:
        """Forward + backward in one call; returns the root tensor."""
        self.forward(leaf_values)
        self.backward(grad)
        return self.root
