"""Optimizers: SGD and Adam (the paper trains with Adam, Sec. IV-B).

Weight decay is implemented as L2 regularisation added to the gradient,
matching PyTorch's ``torch.optim.Adam(weight_decay=...)`` semantics that the
original HyGNN grid search (Table IV) sweeps over.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


class Optimizer:
    def __init__(self, params, lr: float):
        self.params: list[Tensor] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    def __init__(self, params, lr: float = 1e-3, betas: tuple = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
