"""``repro.graphs`` — DDI graph and substructure-similarity graph builders."""

from .builders import build_ddi_graph, build_ssg_graph
from .graph import Graph
from .normalize import gcn_normalized_adjacency, row_normalized_adjacency

__all__ = ["Graph", "build_ddi_graph", "build_ssg_graph",
           "gcn_normalized_adjacency", "row_normalized_adjacency"]
