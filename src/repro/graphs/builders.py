"""Builders for the two baseline graphs of the paper.

- **DDI graph** (baseline families 1 & 2): drugs are nodes, an edge connects
  two drugs with a *known training* interaction.  Only training positives may
  be used — leaking validation/test edges into the graph would inflate every
  topology-based baseline.
- **SSG** — substructure similarity graph (baseline family 3, following
  Bumgardner et al.): an edge connects two drugs sharing at least a
  threshold number of ESPF substructures.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph


def build_ddi_graph(num_drugs: int, train_positive_pairs: np.ndarray) -> Graph:
    """Drugs as nodes, known (training) interactions as edges."""
    return Graph(num_drugs, train_positive_pairs)


def build_ssg_graph(drug_token_sets: list[set[str]],
                    min_shared: int = 2) -> Graph:
    """Edge between drugs sharing >= ``min_shared`` substructures.

    ``drug_token_sets`` comes from
    :meth:`repro.hypergraph.DrugHypergraphBuilder.drug_token_sets` so SSG and
    HyGNN see the same substructure extraction.
    """
    if min_shared < 1:
        raise ValueError("min_shared must be >= 1")
    n = len(drug_token_sets)
    edges: list[tuple[int, int]] = []
    # Invert: token -> drugs containing it, then count shared tokens per pair.
    token_to_drugs: dict[str, list[int]] = {}
    for drug, tokens in enumerate(drug_token_sets):
        for token in tokens:
            token_to_drugs.setdefault(token, []).append(drug)
    shared_counts: dict[tuple[int, int], int] = {}
    for drugs in token_to_drugs.values():
        for a_pos, a in enumerate(drugs):
            for b in drugs[a_pos + 1:]:
                key = (a, b)
                shared_counts[key] = shared_counts.get(key, 0) + 1
    edges = [pair for pair, count in shared_counts.items()
             if count >= min_shared]
    return Graph(n, np.array(edges, dtype=np.int64).reshape(-1, 2))
