"""Adjacency normalisations used by the GNN baselines."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph


def gcn_normalized_adjacency(graph: Graph) -> sp.csr_matrix:
    """Kipf & Welling normalisation: ``D^-1/2 (A + I) D^-1/2``."""
    adj = graph.adjacency() + sp.identity(graph.num_nodes, format="csr")
    degree = np.asarray(adj.sum(axis=1)).reshape(-1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    d_mat = sp.diags(inv_sqrt)
    return (d_mat @ adj @ d_mat).tocsr()


def row_normalized_adjacency(graph: Graph,
                             add_self_loops: bool = False) -> sp.csr_matrix:
    """``D^-1 A`` — the mean aggregator used by GraphSAGE."""
    adj = graph.adjacency()
    if add_self_loops:
        adj = adj + sp.identity(graph.num_nodes, format="csr")
    degree = np.asarray(adj.sum(axis=1)).reshape(-1)
    inv = np.divide(1.0, degree, out=np.zeros_like(degree), where=degree > 0)
    return (sp.diags(inv) @ adj).tocsr()
