"""Simple undirected graph substrate for the baseline models."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


class Graph:
    """An undirected simple graph stored as a canonical edge list."""

    def __init__(self, num_nodes: int, edges: np.ndarray):
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size:
            if edges.min() < 0 or edges.max() >= num_nodes:
                raise ValueError("edge endpoint out of range")
            edges = edges[edges[:, 0] != edges[:, 1]]  # drop self loops
            edges = np.unique(np.sort(edges, axis=1), axis=0)
        self.num_nodes = int(num_nodes)
        self.edges = edges

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def adjacency(self) -> sp.csr_matrix:
        """Symmetric binary adjacency matrix."""
        if not self.num_edges:
            return sp.csr_matrix((self.num_nodes, self.num_nodes))
        rows = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
        cols = np.concatenate([self.edges[:, 1], self.edges[:, 0]])
        data = np.ones(len(rows))
        adj = sp.csr_matrix((data, (rows, cols)),
                            shape=(self.num_nodes, self.num_nodes))
        adj.data[:] = 1.0  # collapse any duplicates
        return adj

    def degrees(self) -> np.ndarray:
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        if self.num_edges:
            np.add.at(deg, self.edges[:, 0], 1)
            np.add.at(deg, self.edges[:, 1], 1)
        return deg

    def neighbors(self, node: int) -> np.ndarray:
        mask_a = self.edges[:, 0] == node
        mask_b = self.edges[:, 1] == node
        return np.unique(np.concatenate([self.edges[mask_b, 0],
                                         self.edges[mask_a, 1]]))

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        a, b = min(u, v), max(u, v)
        return bool(((self.edges[:, 0] == a) & (self.edges[:, 1] == b)).any())

    def __repr__(self) -> str:
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"
