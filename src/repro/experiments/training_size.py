"""Figure 4 — performance vs training-set size (10%..80%).

The paper takes the best model from each baseline family (node2vec,
GraphSAGE on DDI, GraphSAGE on SSG, CASTER) plus HyGNN k-mer&MLP and shrinks
the training fraction; HyGNN should remain strong with little data while the
graph-topology baselines fall off fastest.
"""

from __future__ import annotations

from ..baselines import run_baseline
from ..core import train_hygnn
from ..data import balanced_pairs_and_labels, load_benchmark, random_split
from . import paper_numbers
from .base import DEFAULT, ExperimentResult, RunProfile

TRAIN_FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8)
FIG4_MODELS = paper_numbers.FIG4_MODELS


def run_fig4(profile: RunProfile = DEFAULT,
             fractions: tuple[float, ...] = TRAIN_FRACTIONS,
             datasets: tuple[str, ...] = ("TWOSIDES",),
             models: tuple[str, ...] = FIG4_MODELS,
             batch_size: int | None = None) -> ExperimentResult:
    """Sweep the training fraction for the best model of each family.

    ``batch_size`` streams HyGNN's pair decoder in mini-batches — the large
    train fractions are exactly where the full-batch decoder pass is at its
    most memory-hungry, so this is the sweep that benefits first.
    """
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    by_name = {"TWOSIDES": benchmark.twosides, "DrugBank": benchmark.drugbank}
    rows: list[dict] = []
    for dataset_name in datasets:
        dataset = by_name[dataset_name]
        pairs, labels = balanced_pairs_and_labels(dataset, seed=profile.seed)
        for fraction in fractions:
            split = random_split(len(pairs), seed=profile.seed,
                                 train_fraction=fraction, val_fraction=0.1)
            for model in models:
                if model.startswith("hygnn"):
                    config = profile.hygnn_config(method="kmer", parameter=6,
                                                  decoder="mlp")
                    if batch_size is not None:
                        config = config.with_updates(batch_size=batch_size)
                    _, _, _, summary = train_hygnn(dataset.smiles, pairs,
                                                   labels, split, config)
                else:
                    summary = run_baseline(model, dataset, pairs, labels,
                                           split, profile.baseline_config(),
                                           universe=benchmark.universe)
                rows.append({"dataset": dataset_name, "model": model,
                             "train_fraction": fraction,
                             **summary.as_row()})
    return ExperimentResult(
        experiment_id="fig4",
        title="Performance vs training size",
        rows=rows,
        paper_rows=[{"claim": "HyGNN stays best at every training size and "
                              "degrades least; SSG-GraphSAGE is hit hardest "
                              "by smaller training sets"}],
        notes="fractions are of the balanced labeled corpus, as in the paper")
