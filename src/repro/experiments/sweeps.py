"""Figures 2 and 3 — metric curves vs the substructure parameter.

Fig. 2 sweeps the ESPF frequency threshold {5..25}; Fig. 3 sweeps the k-mer
size {3..15}; both over the two datasets and both decoders.
"""

from __future__ import annotations

from ..data import balanced_pairs_and_labels, load_benchmark, random_split
from ..core import train_hygnn
from . import paper_numbers
from .base import DEFAULT, ExperimentResult, RunProfile

ESPF_THRESHOLDS = (5, 10, 15, 20, 25)
KMER_SIZES = (3, 6, 9, 12, 15)


def _sweep(method: str, parameters: tuple[int, ...],
           profile: RunProfile, datasets: tuple[str, ...] = ("TWOSIDES",
                                                             "DrugBank"),
           decoders: tuple[str, ...] = ("mlp", "dot"),
           batch_size: int | None = None) -> list[dict]:
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    by_name = {"TWOSIDES": benchmark.twosides, "DrugBank": benchmark.drugbank}
    rows: list[dict] = []
    for dataset_name in datasets:
        dataset = by_name[dataset_name]
        pairs, labels = balanced_pairs_and_labels(dataset, seed=profile.seed)
        split = random_split(len(pairs), seed=profile.seed)
        for decoder in decoders:
            for parameter in parameters:
                config = profile.hygnn_config(method=method,
                                              parameter=parameter,
                                              decoder=decoder)
                if batch_size is not None:
                    config = config.with_updates(batch_size=batch_size)
                _, _, _, summary = train_hygnn(dataset.smiles, pairs, labels,
                                               split, config)
                rows.append({"dataset": dataset_name, "decoder": decoder,
                             "parameter": parameter, **summary.as_row()})
    return rows


def run_fig2(profile: RunProfile = DEFAULT,
             thresholds: tuple[int, ...] = ESPF_THRESHOLDS,
             datasets: tuple[str, ...] = ("TWOSIDES", "DrugBank"),
             decoders: tuple[str, ...] = ("mlp", "dot"),
             batch_size: int | None = None) -> ExperimentResult:
    """Fig. 2 — performance vs ESPF frequency threshold.

    ``batch_size`` switches every training run to the mini-batch pipeline
    (useful at ``full`` profile scale, where train pair sets are large).
    """
    rows = _sweep("espf", thresholds, profile, datasets, decoders,
                  batch_size=batch_size)
    return ExperimentResult(
        experiment_id="fig2",
        title="Performance vs ESPF frequency threshold",
        rows=rows,
        paper_rows=[{"claim": "threshold 5 performs best; large thresholds "
                              "lose substructures and degrade, most visibly "
                              "on TWOSIDES"}],
        notes=f"paper's winning threshold: "
              f"{paper_numbers.FIG2_BEST_THRESHOLD}")


def run_fig3(profile: RunProfile = DEFAULT,
             sizes: tuple[int, ...] = KMER_SIZES,
             datasets: tuple[str, ...] = ("TWOSIDES", "DrugBank"),
             decoders: tuple[str, ...] = ("mlp", "dot"),
             batch_size: int | None = None) -> ExperimentResult:
    """Fig. 3 — performance vs k-mer size."""
    rows = _sweep("kmer", sizes, profile, datasets, decoders,
                  batch_size=batch_size)
    return ExperimentResult(
        experiment_id="fig3",
        title="Performance vs k-mer size",
        rows=rows,
        paper_rows=[{"claim": "performance rises with k then saturates; "
                              "k=9 reported best (TWOSIDES most sensitive)"}],
        notes=f"paper's winning k: {paper_numbers.FIG3_BEST_K}; synthetic "
              "SMILES are shorter than DrugBank molecules, so the curve "
              "bends at smaller k")
