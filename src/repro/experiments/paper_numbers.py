"""Published numbers from the paper, used for side-by-side comparison.

All values transcribed from Saifuddin et al., ICDE 2023 (arXiv:2206.12747v4).
"""

TABLE1 = [
    {"dataset": "TWOSIDES", "num_drugs": 645, "num_ddis": 63_473},
    {"dataset": "DrugBank", "num_drugs": 1706, "num_ddis": 191_402},
]

# Table II — hypergraph node counts, TWOSIDES.
TABLE2 = [
    {"espf_threshold": 5, "espf_nodes": 555, "kmer_k": 3, "kmer_nodes": 822},
    {"espf_threshold": 10, "espf_nodes": 324, "kmer_k": 6, "kmer_nodes": 7025},
    {"espf_threshold": 15, "espf_nodes": 249, "kmer_k": 9, "kmer_nodes": 14002},
    {"espf_threshold": 20, "espf_nodes": 208, "kmer_k": 12, "kmer_nodes": 17351},
    {"espf_threshold": 25, "espf_nodes": 187, "kmer_k": 15, "kmer_nodes": 18155},
]

# Table III — hypergraph node counts, DrugBank.
TABLE3 = [
    {"espf_threshold": 5, "espf_nodes": 1266, "kmer_k": 3, "kmer_nodes": 1296},
    {"espf_threshold": 10, "espf_nodes": 729, "kmer_k": 6, "kmer_nodes": 11849},
    {"espf_threshold": 15, "espf_nodes": 550, "kmer_k": 9, "kmer_nodes": 29443},
    {"espf_threshold": 20, "espf_nodes": 462, "kmer_k": 12, "kmer_nodes": 43634},
    {"espf_threshold": 25, "espf_nodes": 400, "kmer_k": 15, "kmer_nodes": 51315},
]

# Table IV — hyper-parameter grid.
TABLE4 = [
    {"parameter": "Learning rate", "values": "1e-2, 5e-2, 1e-3, 5e-3"},
    {"parameter": "Hidden units", "values": "32, 64, 128"},
    {"parameter": "Dropout", "values": "0.1, 0.5"},
    {"parameter": "Weight decay", "values": "1e-2, 1e-3"},
]

# Table V — TWOSIDES comparison (F1 / ROC-AUC / PR-AUC, %).
TABLE5 = [
    {"model": "deepwalk", "F1": 80.35, "ROC-AUC": 80.36, "PR-AUC": 85.19},
    {"model": "node2vec", "F1": 84.50, "ROC-AUC": 84.52, "PR-AUC": 88.33},
    {"model": "gcn-ddi", "F1": 85.34, "ROC-AUC": 85.38, "PR-AUC": 88.87},
    {"model": "graphsage-ddi", "F1": 85.83, "ROC-AUC": 85.80, "PR-AUC": 89.28},
    {"model": "gat-ddi", "F1": 82.67, "ROC-AUC": 82.68, "PR-AUC": 86.86},
    {"model": "gcn-ssg", "F1": 53.85, "ROC-AUC": 54.04, "PR-AUC": 66.94},
    {"model": "graphsage-ssg", "F1": 60.19, "ROC-AUC": 60.18, "PR-AUC": 70.34},
    {"model": "gat-ssg", "F1": 54.25, "ROC-AUC": 54.37, "PR-AUC": 66.85},
    {"model": "caster", "F1": 82.35, "ROC-AUC": 90.45, "PR-AUC": 90.58},
    {"model": "decagon", "F1": None, "ROC-AUC": 87.20, "PR-AUC": 83.20},
    {"model": "hygnn-espf-mlp", "F1": 88.79, "ROC-AUC": 96.01, "PR-AUC": 96.30},
    {"model": "hygnn-espf-dot", "F1": 76.79, "ROC-AUC": 91.12, "PR-AUC": 93.37},
    {"model": "hygnn-kmer-mlp", "F1": 89.21, "ROC-AUC": 96.25, "PR-AUC": 96.53},
    {"model": "hygnn-kmer-dot", "F1": 78.55, "ROC-AUC": 91.80, "PR-AUC": 93.88},
]

# Table VI — DrugBank comparison.
TABLE6 = [
    {"model": "deepwalk", "F1": 73.34, "ROC-AUC": 73.35, "PR-AUC": 80.05},
    {"model": "node2vec", "F1": 79.52, "ROC-AUC": 79.54, "PR-AUC": 84.56},
    {"model": "gcn-ddi", "F1": 77.05, "ROC-AUC": 77.06, "PR-AUC": 82.78},
    {"model": "graphsage-ddi", "F1": 80.83, "ROC-AUC": 80.88, "PR-AUC": 85.51},
    {"model": "gat-ddi", "F1": 63.84, "ROC-AUC": 69.75, "PR-AUC": 78.52},
    {"model": "gcn-ssg", "F1": 58.00, "ROC-AUC": 58.04, "PR-AUC": 69.11},
    {"model": "graphsage-ssg", "F1": 61.10, "ROC-AUC": 61.15, "PR-AUC": 70.64},
    {"model": "gat-ssg", "F1": 58.20, "ROC-AUC": 58.24, "PR-AUC": 69.25},
    {"model": "caster", "F1": 87.36, "ROC-AUC": 94.27, "PR-AUC": 94.20},
    {"model": "hygnn-espf-mlp", "F1": 92.42, "ROC-AUC": 97.63, "PR-AUC": 97.53},
    {"model": "hygnn-espf-dot", "F1": 83.94, "ROC-AUC": 95.80, "PR-AUC": 96.57},
    {"model": "hygnn-kmer-mlp", "F1": 94.61, "ROC-AUC": 98.69, "PR-AUC": 98.68},
    {"model": "hygnn-kmer-dot", "F1": 87.38, "ROC-AUC": 97.99, "PR-AUC": 98.28},
]

# Table VII — novel DDI predictions on TWOSIDES (validated against DrugBank).
TABLE7 = [
    {"drug1": "Desvenlafaxine", "drug2": "Paroxetine", "twosides_label": 0,
     "predicted": 0.9989, "drugbank_label": 1},
    {"drug1": "Probenecid", "drug2": "Metformin", "twosides_label": 0,
     "predicted": 0.9931, "drugbank_label": 1},
    {"drug1": "Bexarotene", "drug2": "Maprotiline", "twosides_label": 0,
     "predicted": 1e-9, "drugbank_label": 0},
    {"drug1": "Amoxapine", "drug2": "Econazole", "twosides_label": 0,
     "predicted": 6.8e-9, "drugbank_label": 0},
]

# Table VIII — the reverse direction.
TABLE8 = [
    {"drug1": "Hydroxychloroquine", "drug2": "Loratadine",
     "drugbank_label": 0, "predicted": 0.9879, "twosides_label": 1},
    {"drug1": "Midazolam", "drug2": "Warfarin", "drugbank_label": 0,
     "predicted": 0.9884, "twosides_label": 1},
    {"drug1": "Benzthiazide", "drug2": "Fentanyl", "drugbank_label": 0,
     "predicted": 5.7e-14, "twosides_label": 0},
]

# Table IX — cold-start (5% unseen drugs).
TABLE9 = [
    {"dataset": "TWOSIDES", "unseen": "5%", "F1": 72.75, "ROC-AUC": 78.25,
     "PR-AUC": 85.64},
    {"dataset": "DrugBank", "unseen": "5%", "F1": 65.23, "ROC-AUC": 70.84,
     "PR-AUC": 78.04},
]

# Fig. 2/3 — the paper reports these as plots; the reproducible claims are
# the parameter choices that win.
FIG2_BEST_THRESHOLD = 5       # "frequency threshold 5 gives the best performance"
FIG3_BEST_K = 9               # "the best ... are reported with k = 9"

# Fig. 4 — training-size sweep models (best of each family).
FIG4_MODELS = ("node2vec", "graphsage-ddi", "graphsage-ssg", "caster",
               "hygnn-kmer-mlp")
