"""Tables V and VI — HyGNN vs all baselines on both corpora."""

from __future__ import annotations

import numpy as np

from ..baselines import run_baseline
from ..core import train_hygnn
from ..data import balanced_pairs_and_labels, load_benchmark, random_split
from ..data.dataset import DDIDataset
from ..data.synthetic import DrugUniverse
from ..metrics import EvaluationSummary
from . import paper_numbers
from .base import DEFAULT, ExperimentResult, RunProfile

HYGNN_VARIANTS = (
    ("hygnn-espf-mlp", "espf", 5, "mlp"),
    ("hygnn-espf-dot", "espf", 5, "dot"),
    ("hygnn-kmer-mlp", "kmer", 6, "mlp"),
    ("hygnn-kmer-dot", "kmer", 6, "dot"),
)

BASELINE_ROWS_TWOSIDES = ("deepwalk", "node2vec", "gcn-ddi", "graphsage-ddi",
                          "gat-ddi", "gcn-ssg", "graphsage-ssg", "gat-ssg",
                          "caster", "decagon")
BASELINE_ROWS_DRUGBANK = BASELINE_ROWS_TWOSIDES[:-1]  # no Decagon (Sec. IV-C)


def _mean_summary(summaries: list[EvaluationSummary]) -> dict:
    return {"F1": float(np.mean([s.f1 for s in summaries])),
            "ROC-AUC": float(np.mean([s.roc_auc for s in summaries])),
            "PR-AUC": float(np.mean([s.pr_auc for s in summaries]))}


def run_hygnn_variant(dataset: DDIDataset, method: str, parameter: int,
                      decoder: str, profile: RunProfile,
                      repeat_seed: int = 0) -> EvaluationSummary:
    pairs, labels = balanced_pairs_and_labels(dataset,
                                              seed=profile.seed + repeat_seed)
    split = random_split(len(pairs), seed=profile.seed + repeat_seed)
    config = profile.hygnn_config(method=method, parameter=parameter,
                                  decoder=decoder,
                                  seed=profile.seed + repeat_seed)
    _, _, _, summary = train_hygnn(dataset.smiles, pairs, labels, split,
                                   config)
    return summary


def _comparison_rows(dataset: DDIDataset, universe: DrugUniverse,
                     baseline_names: tuple[str, ...],
                     profile: RunProfile) -> list[dict]:
    rows: list[dict] = []
    for name in baseline_names:
        summaries = []
        for repeat in range(profile.repeats):
            pairs, labels = balanced_pairs_and_labels(
                dataset, seed=profile.seed + repeat)
            split = random_split(len(pairs), seed=profile.seed + repeat)
            config = profile.baseline_config(seed=profile.seed + repeat)
            summaries.append(run_baseline(name, dataset, pairs, labels,
                                          split, config, universe=universe))
        rows.append({"model": name, **_mean_summary(summaries)})
    for name, method, parameter, decoder in HYGNN_VARIANTS:
        summaries = [run_hygnn_variant(dataset, method, parameter, decoder,
                                       profile, repeat_seed=r)
                     for r in range(profile.repeats)]
        rows.append({"model": name, **_mean_summary(summaries)})
    return rows


def run_table5(profile: RunProfile = DEFAULT) -> ExperimentResult:
    """Table V — performance comparison on TWOSIDES."""
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    rows = _comparison_rows(benchmark.twosides, benchmark.universe,
                            BASELINE_ROWS_TWOSIDES, profile)
    return ExperimentResult(
        experiment_id="table5",
        title="Performance comparison on TWOSIDES",
        rows=rows, paper_rows=paper_numbers.TABLE5,
        notes="shape targets: HyGNN variants lead; MLP decoder beats dot; "
              "CASTER is the best baseline; SSG-graph GNNs are weakest")


def run_table6(profile: RunProfile = DEFAULT) -> ExperimentResult:
    """Table VI — performance comparison on DrugBank (no Decagon)."""
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    rows = _comparison_rows(benchmark.drugbank, benchmark.universe,
                            BASELINE_ROWS_DRUGBANK, profile)
    return ExperimentResult(
        experiment_id="table6",
        title="Performance comparison on DrugBank",
        rows=rows, paper_rows=paper_numbers.TABLE6,
        notes="Decagon omitted as in the paper (no protein modality for "
              "DrugBank); shape targets as Table V")
