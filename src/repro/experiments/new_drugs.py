"""Table IX — DDI prediction for new (never-trained) drugs.

Protocol (Sec. IV-D4): remove 5% of drugs from the training set entirely;
every pair touching them is test-only.  HyGNN handles this *inductively*:
the substructure vocabulary is fitted on training drugs only, new drugs are
tokenised against it (unknown substructures dropped), and the encoder embeds
their hyperedges from substructure embeddings alone.
"""

from __future__ import annotations

import numpy as np

from ..core import HyGNN, Trainer
from ..data import balanced_pairs_and_labels, cold_start_split, load_benchmark
from ..data.dataset import DDIDataset
from ..hypergraph import DrugHypergraphBuilder
from ..metrics import EvaluationSummary
from . import paper_numbers
from .base import DEFAULT, ExperimentResult, RunProfile


def run_cold_start(dataset: DDIDataset, profile: RunProfile,
                   unseen_fraction: float = 0.05) -> EvaluationSummary:
    """Train with a fraction of drugs fully hidden; evaluate on their pairs."""
    pairs, labels = balanced_pairs_and_labels(dataset, seed=profile.seed)
    split, unseen = cold_start_split(pairs, dataset.num_drugs,
                                     seed=profile.seed,
                                     unseen_fraction=unseen_fraction)
    unseen_set = set(unseen.tolist())
    train_smiles = [drug.smiles for index, drug in enumerate(dataset.drugs)
                    if index not in unseen_set]

    config = profile.hygnn_config()
    builder = DrugHypergraphBuilder(method=config.method,
                                    parameter=config.parameter)
    builder.fit(train_smiles)                       # vocabulary: seen drugs only
    hypergraph = builder.transform(dataset.smiles)  # all drugs, frozen vocab
    model = HyGNN(num_substructures=builder.num_nodes, config=config)
    trainer = Trainer(model, config)
    trainer.fit(hypergraph, pairs, labels, split)
    return trainer.evaluate(hypergraph, pairs[split.test],
                            labels[split.test])


def run_table9(profile: RunProfile = DEFAULT,
               unseen_fraction: float = 0.05) -> ExperimentResult:
    """Table IX — cold-start metrics for both corpora."""
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    rows = []
    for dataset in (benchmark.twosides, benchmark.drugbank):
        summary = run_cold_start(dataset, profile,
                                 unseen_fraction=unseen_fraction)
        rows.append({"dataset": dataset.name,
                     "unseen": f"{unseen_fraction:.0%}",
                     **summary.as_row()})
    return ExperimentResult(
        experiment_id="table9", title="Performance for new drugs",
        rows=rows, paper_rows=paper_numbers.TABLE9,
        notes="shape target: clear drop vs Tables V/VI but still far above "
              "chance — SMILES alone carries signal for unseen drugs")
