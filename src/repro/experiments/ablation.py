"""Ablations of HyGNN design choices (beyond the paper's tables).

DESIGN.md calls out the choices worth isolating:

- **attention vs mean aggregation** — the paper credits the two-level
  attention for HyGNN's edge (Sec. IV-D2); we compare against a mean-pooled
  encoder of identical shape.
- **encoder depth** — the paper uses a single layer; we sweep 1 vs 2.
- **negative-sampling balance** — the paper trains balanced; we also train
  with 2:1 negatives to show metric sensitivity.
- **training pipeline** — mini-batch gradient accumulation
  (``batch_size=256``) vs full batch, confirming the compiled pipeline's
  batching knob does not move metrics.
"""

from __future__ import annotations

import numpy as np

from ..core import HyGNN, HyGNNConfig, Trainer
from ..data import (balanced_pairs_and_labels, load_benchmark, random_split,
                    sample_negative_pairs)
from ..hypergraph import DrugHypergraphBuilder
from ..metrics import EvaluationSummary
from ..nn import Module, Tensor, init
from ..nn import functional as F
from .base import DEFAULT, ExperimentResult, RunProfile


class MeanPoolEncoder(Module):
    """Attention-free control: mean node embeddings + a linear transform."""

    def __init__(self, num_substructures: int, embed_dim: int,
                 hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.node_embedding = init.normal((num_substructures, embed_dim),
                                          rng, std=1.0)
        self.project = init.xavier_uniform((embed_dim, hidden_dim), rng)

    def encode(self, hypergraph) -> Tensor:
        members = F.gather_rows(self.node_embedding, hypergraph.node_ids)
        pooled = F.segment_mean(members, hypergraph.edge_ids,
                                hypergraph.num_edges)
        return F.leaky_relu(pooled @ self.project, 0.2)


def _train_mean_pool(dataset, pairs, labels, split,
                     config: HyGNNConfig) -> EvaluationSummary:
    from ..nn import Adam, bce_with_logits
    from ..core.decoder import make_decoder

    rng = np.random.default_rng(config.seed)
    builder = DrugHypergraphBuilder(method=config.method,
                                    parameter=config.parameter)
    hypergraph = builder.fit_transform(dataset.smiles)
    encoder = MeanPoolEncoder(hypergraph.num_nodes, config.embed_dim,
                              config.hidden_dim, rng)
    decoder = make_decoder(config.decoder, config.hidden_dim,
                           config.hidden_dim, rng)
    params = list(encoder.parameters()) + list(decoder.parameters())
    optimizer = Adam(params, lr=config.learning_rate,
                     weight_decay=config.weight_decay)

    def logits_for(index_set):
        embeddings = encoder.encode(hypergraph)
        subset = pairs[index_set]
        left = F.gather_rows(embeddings, subset[:, 0])
        right = F.gather_rows(embeddings, subset[:, 1])
        return decoder(left, right)

    best_val, best_scores = np.inf, None
    patience_left = config.patience
    for _ in range(config.epochs):
        optimizer.zero_grad()
        loss = bce_with_logits(logits_for(split.train), labels[split.train])
        loss.backward()
        optimizer.step()
        val_loss = bce_with_logits(logits_for(split.val),
                                   labels[split.val]).item()
        if val_loss < best_val - 1e-6:
            best_val = val_loss
            test_logits = logits_for(split.test).numpy()
            best_scores = 1.0 / (1.0 + np.exp(-np.clip(test_logits, -500, 500)))
            patience_left = config.patience
        else:
            patience_left -= 1
            if patience_left <= 0:
                break
    return EvaluationSummary.from_scores(labels[split.test], best_scores)


def run_ablation(profile: RunProfile = DEFAULT) -> ExperimentResult:
    """Attention vs mean pooling, 1 vs 2 layers, balanced vs skewed negatives."""
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    dataset = benchmark.twosides
    pairs, labels = balanced_pairs_and_labels(dataset, seed=profile.seed)
    split = random_split(len(pairs), seed=profile.seed)
    rows: list[dict] = []

    def train_variant(tag: str, config: HyGNNConfig, custom_pairs=None,
                      custom_labels=None, custom_split=None):
        p = pairs if custom_pairs is None else custom_pairs
        y = labels if custom_labels is None else custom_labels
        s = split if custom_split is None else custom_split
        builder = DrugHypergraphBuilder(method=config.method,
                                        parameter=config.parameter)
        hypergraph = builder.fit_transform(dataset.smiles)
        model = HyGNN(num_substructures=hypergraph.num_nodes, config=config)
        trainer = Trainer(model, config)
        trainer.fit(hypergraph, p, y, s)
        summary = trainer.evaluate(hypergraph, p[s.test], y[s.test])
        rows.append({"variant": tag, **summary.as_row()})

    base = profile.hygnn_config(method="kmer", parameter=6, decoder="mlp")
    train_variant("hygnn (1 layer, attention)", base)
    train_variant("hygnn (2 layers)", base.with_updates(num_layers=2))
    # Training-pipeline control: mini-batch gradient accumulation applies
    # the same per-epoch gradient as full batch (up to float summation
    # order), so its row should sit within noise of the full-batch one.
    train_variant("hygnn (mini-batch, B=256)",
                  base.with_updates(batch_size=256))
    rows.append({"variant": "mean-pool encoder (no attention)",
                 **_train_mean_pool(dataset, pairs, labels, split,
                                    base).as_row()})

    # Skewed negatives: 2 negatives per positive.
    positives = dataset.positive_pairs
    negatives = sample_negative_pairs(dataset.num_drugs, positives,
                                      2 * len(positives),
                                      seed=profile.seed + 5)
    skew_pairs = np.concatenate([positives, negatives])
    skew_labels = np.concatenate([np.ones(len(positives)),
                                  np.zeros(len(negatives))])
    order = np.random.default_rng(profile.seed).permutation(len(skew_pairs))
    skew_split = random_split(len(skew_pairs), seed=profile.seed)
    train_variant("hygnn (2:1 negatives)", base,
                  custom_pairs=skew_pairs[order],
                  custom_labels=skew_labels[order], custom_split=skew_split)

    return ExperimentResult(
        experiment_id="ablation", title="HyGNN design ablations",
        rows=rows,
        paper_rows=[{"claim": "two-level attention is the main strength "
                              "(Sec. IV-D2); one layer suffices"}],
        notes="expected: attention beats mean pooling; depth 2 adds little; "
              "skewed negatives depress F1 more than AUC")
