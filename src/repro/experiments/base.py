"""Experiment infrastructure: run profiles and result tables.

Every table and figure of the paper has a module here exposing
``run(profile) -> ExperimentResult``.  Results carry both the measured rows
and the paper's published numbers so the harness can print them side by
side; absolute values differ (synthetic data, CPU-scale training) but the
*shape* — who wins, by roughly what factor, where trends bend — is the
reproduction target and is asserted in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..baselines import (BaselineConfig, CasterConfig, DecagonConfig,
                         UnsupervisedConfig, WalkConfig)
from ..core import HyGNNConfig


@dataclass(frozen=True)
class RunProfile:
    """Controls dataset scale and training budgets.

    - ``fast``: seconds-scale, used by the pytest benchmarks.
    - ``default``: minutes-scale, used to fill EXPERIMENTS.md.
    - ``full``: paper-scale corpora and the paper's 2000-epoch schedule
      (hours on CPU; provided for completeness).
    """

    name: str = "default"
    scale: float = 0.15
    seed: int = 0
    repeats: int = 1               # the paper averages 5 random splits
    hygnn_epochs: int = 500
    hygnn_patience: int = 100
    hygnn_batch_size: int | None = None  # None = full batch; else mini-batch
    baseline_epochs: int = 120
    caster_epochs: int = 200
    walk_num_walks: int = 6
    walk_length: int = 50
    sgns_epochs: int = 2

    def hygnn_config(self, **overrides) -> HyGNNConfig:
        base = HyGNNConfig(epochs=self.hygnn_epochs,
                           patience=self.hygnn_patience,
                           batch_size=self.hygnn_batch_size)
        return base.with_updates(**overrides) if overrides else base

    def baseline_config(self, seed: int | None = None) -> BaselineConfig:
        seed = self.seed if seed is None else seed
        return BaselineConfig(
            walk=WalkConfig(num_walks=self.walk_num_walks,
                            walk_length=self.walk_length,
                            epochs=self.sgns_epochs, learning_rate=0.05,
                            seed=seed),
            unsupervised=UnsupervisedConfig(epochs=self.baseline_epochs,
                                            seed=seed),
            caster=CasterConfig(epochs=self.caster_epochs,
                                patience=max(self.caster_epochs // 5, 10),
                                seed=seed),
            decagon=DecagonConfig(epochs=self.baseline_epochs,
                                  patience=max(self.baseline_epochs // 5, 10),
                                  seed=seed),
            seed=seed,
        )


FAST = RunProfile(name="fast", scale=0.07, hygnn_epochs=250,
                  hygnn_patience=50, baseline_epochs=40, caster_epochs=50,
                  walk_num_walks=3, walk_length=25, sgns_epochs=1)
DEFAULT = RunProfile(name="default")
FULL = RunProfile(name="full", scale=1.0, hygnn_epochs=2000,
                  hygnn_patience=200, baseline_epochs=400, caster_epochs=600,
                  walk_num_walks=10, walk_length=100, sgns_epochs=3)

PROFILES = {"fast": FAST, "default": DEFAULT, "full": FULL}


@dataclass
class ExperimentResult:
    """Measured rows plus the paper's reference rows for one artifact."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    paper_rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def format_table(self, rows: list[dict] | None = None) -> str:
        rows = self.rows if rows is None else rows
        if not rows:
            return "(no rows)"
        columns = list(rows[0])
        widths = {c: max(len(str(c)),
                         *(len(_fmt(r.get(c))) for r in rows))
                  for c in columns}
        header = "  ".join(str(c).ljust(widths[c]) for c in columns)
        rule = "  ".join("-" * widths[c] for c in columns)
        body = "\n".join(
            "  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns)
            for r in rows)
        return f"{header}\n{rule}\n{body}"

    def render(self) -> str:
        parts = [f"=== {self.experiment_id}: {self.title} ===",
                 "-- measured --", self.format_table()]
        if self.paper_rows:
            parts += ["-- paper --", self.format_table(self.paper_rows)]
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)

    def show(self) -> None:
        print(self.render())


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
