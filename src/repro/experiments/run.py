"""Experiment CLI: ``python -m repro.experiments.run --experiment table5``.

Runs one (or all) of the paper's tables/figures and prints measured rows
next to the paper's published rows.
"""

from __future__ import annotations

import argparse

from .ablation import run_ablation
from .base import PROFILES, RunProfile
from .case_study import run_table7, run_table8
from .comparison import run_table5, run_table6
from .new_drugs import run_table9
from .sweeps import run_fig2, run_fig3
from .tables import run_table1, run_table2, run_table3, run_table4
from .training_size import run_fig4

EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "table8": run_table8,
    "table9": run_table9,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "ablation": run_ablation,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate tables/figures of the HyGNN paper")
    parser.add_argument("--experiment", default="all",
                        choices=["all", *EXPERIMENTS])
    parser.add_argument("--profile", default="default",
                        choices=sorted(PROFILES))
    parser.add_argument("--scale", type=float, default=None,
                        help="override the profile's dataset scale")
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    profile = PROFILES[args.profile]
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        from dataclasses import replace
        profile = replace(profile, **overrides)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = EXPERIMENTS[name](profile)
        result.show()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
