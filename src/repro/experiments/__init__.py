"""``repro.experiments`` — harness regenerating every paper table/figure.

Each artifact has a ``run_*`` function returning an
:class:`~repro.experiments.base.ExperimentResult` with measured and
published rows.  See ``python -m repro.experiments.run --help``.
"""

from .ablation import run_ablation
from .base import DEFAULT, FAST, FULL, PROFILES, ExperimentResult, RunProfile
from .case_study import run_table7, run_table8, select_cross_labeled_pairs
from .comparison import run_hygnn_variant, run_table5, run_table6
from .new_drugs import run_cold_start, run_table9
from .run import EXPERIMENTS
from .sweeps import run_fig2, run_fig3
from .tables import run_table1, run_table2, run_table3, run_table4
from .training_size import run_fig4

__all__ = [
    "ExperimentResult", "RunProfile", "PROFILES", "FAST", "DEFAULT", "FULL",
    "EXPERIMENTS",
    "run_table1", "run_table2", "run_table3", "run_table4",
    "run_table5", "run_table6", "run_table7", "run_table8", "run_table9",
    "run_fig2", "run_fig3", "run_fig4", "run_ablation",
    "run_cold_start", "run_hygnn_variant", "select_cross_labeled_pairs",
]
