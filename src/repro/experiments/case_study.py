"""Tables VII and VIII — novel DDI prediction case studies.

Protocol (Sec. IV-D3): pick drug pairs *unlabeled* in the training corpus,
train HyGNN on that corpus, score the pairs, and validate against the other
corpus's labels.  High scores should line up with cross-corpus positives and
near-zero scores with cross-corpus negatives.

Our synthetic corpora share a drug universe, so cross-labeled pairs exist by
construction (each corpus samples its own subset of the true interactions).
"""

from __future__ import annotations

import numpy as np

from ..core import train_hygnn
from ..data import balanced_pairs_and_labels, load_benchmark, random_split
from ..data.dataset import DDIDataset
from . import paper_numbers
from .base import DEFAULT, ExperimentResult, RunProfile


def _local_index_map(dataset: DDIDataset) -> dict[int, int]:
    """universe index -> dataset-local index."""
    return {int(u): i for i, u in enumerate(dataset.universe_indices)}


def select_cross_labeled_pairs(train_ds: DDIDataset, validate_ds: DDIDataset,
                               n_positive: int, n_negative: int,
                               seed: int = 0) -> list[dict]:
    """Pairs unlabeled in ``train_ds``; half positive in ``validate_ds``,
    half negative in both.  Returned in train-local indices."""
    rng = np.random.default_rng(seed)
    train_map = _local_index_map(train_ds)
    validate_map = _local_index_map(validate_ds)

    positives: list[tuple[int, int]] = []
    for i, j in validate_ds.positive_pairs:
        u_i = int(validate_ds.universe_indices[i])
        u_j = int(validate_ds.universe_indices[j])
        if u_i in train_map and u_j in train_map:
            a, b = train_map[u_i], train_map[u_j]
            if not train_ds.is_positive(a, b):
                positives.append((a, b))
    negatives: list[tuple[int, int]] = []
    n_train = train_ds.num_drugs
    attempts = 0
    while len(negatives) < n_negative * 20 and attempts < 20_000:
        attempts += 1
        a, b = int(rng.integers(n_train)), int(rng.integers(n_train))
        if a == b or train_ds.is_positive(a, b):
            continue
        u_a = int(train_ds.universe_indices[a])
        u_b = int(train_ds.universe_indices[b])
        if u_a in validate_map and u_b in validate_map:
            if not validate_ds.is_positive(validate_map[u_a],
                                           validate_map[u_b]):
                negatives.append((min(a, b), max(a, b)))

    rng.shuffle(positives)
    selected = []
    for a, b in positives[:n_positive]:
        selected.append({"pair": (a, b), "validate_label": 1})
    seen = set()
    for a, b in negatives:
        if (a, b) not in seen:
            seen.add((a, b))
            selected.append({"pair": (a, b), "validate_label": 0})
        if len(seen) >= n_negative:
            break
    return selected


def _case_study(train_ds: DDIDataset, validate_ds: DDIDataset,
                profile: RunProfile, experiment_id: str, title: str,
                paper_rows: list[dict],
                n_each: int = 4) -> ExperimentResult:
    cases = select_cross_labeled_pairs(train_ds, validate_ds,
                                       n_positive=n_each, n_negative=n_each,
                                       seed=profile.seed)
    case_pairs = {tuple(sorted(c["pair"])) for c in cases}
    pairs, labels = balanced_pairs_and_labels(train_ds, seed=profile.seed,
                                              exclude=case_pairs)
    split = random_split(len(pairs), seed=profile.seed)
    # The case study reads individual pair scores, which only stabilise on a
    # converged model — enforce a minimum training budget even under the
    # fast profile.
    config = profile.hygnn_config(
        epochs=max(profile.hygnn_epochs, 250),
        patience=max(profile.hygnn_patience, 50))
    model, hypergraph, _, _ = train_hygnn(train_ds.smiles, pairs, labels,
                                          split, config)
    query = np.array([c["pair"] for c in cases])
    scores = model.predict_proba(hypergraph, query)
    rows = []
    for case, score in zip(cases, scores):
        a, b = case["pair"]
        rows.append({"drug1": train_ds.drugs[a].name,
                     "drug2": train_ds.drugs[b].name,
                     f"{train_ds.name.lower()}_label": 0,
                     "predicted": float(score),
                     f"{validate_ds.name.lower()}_label":
                         case["validate_label"]})
    return ExperimentResult(
        experiment_id=experiment_id, title=title, rows=rows,
        paper_rows=paper_rows,
        notes="shape target: cross-corpus positives score high, "
              "cross-corpus negatives score near zero")


def run_table7(profile: RunProfile = DEFAULT) -> ExperimentResult:
    """Table VII — train on TWOSIDES, validate novel pairs against DrugBank."""
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    return _case_study(benchmark.twosides, benchmark.drugbank, profile,
                       "table7", "Novel DDI predictions on TWOSIDES",
                       paper_numbers.TABLE7)


def run_table8(profile: RunProfile = DEFAULT) -> ExperimentResult:
    """Table VIII — train on DrugBank, validate against TWOSIDES."""
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    return _case_study(benchmark.drugbank, benchmark.twosides, profile,
                       "table8", "Novel DDI predictions on DrugBank",
                       paper_numbers.TABLE8)
