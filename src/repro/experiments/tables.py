"""Tables I-IV: dataset statistics, hypergraph node counts, grid search."""

from __future__ import annotations

import numpy as np

from ..chem import ESPF, kmer_vocabulary
from ..core import grid_search
from ..data import balanced_pairs_and_labels, load_benchmark, random_split
from ..hypergraph import DrugHypergraphBuilder
from . import paper_numbers
from .base import DEFAULT, ExperimentResult, RunProfile

ESPF_THRESHOLDS = (5, 10, 15, 20, 25)
KMER_SIZES = (3, 6, 9, 12, 15)


def run_table1(profile: RunProfile = DEFAULT) -> ExperimentResult:
    """Table I — dataset statistics (exact at scale=1.0)."""
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    rows = [benchmark.twosides.statistics(), benchmark.drugbank.statistics()]
    return ExperimentResult(
        experiment_id="table1", title="Statistics of dataset",
        rows=rows, paper_rows=paper_numbers.TABLE1,
        notes=(f"generated at scale={profile.scale}; scale=1.0 reproduces "
               "the paper's counts exactly (densities match at any scale)"))


def _node_counts(smiles: list[str]) -> list[dict]:
    rows = []
    for threshold, k in zip(ESPF_THRESHOLDS, KMER_SIZES):
        espf = ESPF(frequency_threshold=threshold).fit(smiles)
        espf_nodes = len(espf.vocabulary(smiles))
        kmer_nodes = len(kmer_vocabulary(smiles, k))
        rows.append({"espf_threshold": threshold, "espf_nodes": espf_nodes,
                     "kmer_k": k, "kmer_nodes": kmer_nodes})
    return rows


def run_table2(profile: RunProfile = DEFAULT) -> ExperimentResult:
    """Table II — hypergraph node counts vs ESPF/k-mer parameter, TWOSIDES."""
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    rows = _node_counts(benchmark.twosides.smiles)
    return ExperimentResult(
        experiment_id="table2",
        title="# nodes vs substructure parameters (TWOSIDES)",
        rows=rows, paper_rows=paper_numbers.TABLE2,
        notes="shape target: ESPF nodes decrease with threshold, "
              "k-mer nodes increase with k")


def run_table3(profile: RunProfile = DEFAULT) -> ExperimentResult:
    """Table III — same for DrugBank."""
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    rows = _node_counts(benchmark.drugbank.smiles)
    return ExperimentResult(
        experiment_id="table3",
        title="# nodes vs substructure parameters (DrugBank)",
        rows=rows, paper_rows=paper_numbers.TABLE3,
        notes="shape target as Table II, larger corpus -> more nodes")


def run_table4(profile: RunProfile = DEFAULT,
               reduced: bool = True) -> ExperimentResult:
    """Table IV — hyper-parameter grid search on the validation split.

    ``reduced=True`` sweeps a 2x2x1x1 sub-grid (CPU-friendly); pass
    ``reduced=False`` for the paper's full 48-point grid.
    """
    benchmark = load_benchmark(scale=profile.scale, seed=profile.seed)
    dataset = benchmark.twosides
    pairs, labels = balanced_pairs_and_labels(dataset, seed=profile.seed)
    split = random_split(len(pairs), seed=profile.seed)
    base = profile.hygnn_config(
        epochs=max(profile.hygnn_epochs // 4, 20),
        patience=max(profile.hygnn_patience // 4, 10))
    builder = DrugHypergraphBuilder(method=base.method,
                                    parameter=base.parameter)
    hypergraph = builder.fit_transform(dataset.smiles)
    grid = ({"learning_rate": (1e-2, 5e-3), "hidden_dim": (32, 64),
             "dropout": (0.1,), "weight_decay": (1e-3,)} if reduced
            else None)
    best, results = grid_search(hypergraph, pairs, labels, split, base, grid)
    rows = [{"learning_rate": r.config.learning_rate,
             "hidden_dim": r.config.hidden_dim,
             "dropout": r.config.dropout,
             "weight_decay": r.config.weight_decay,
             "val_loss": r.val_loss, "val_roc_auc": 100 * r.val_roc_auc,
             "best": "*" if r is best else ""}
            for r in results]
    return ExperimentResult(
        experiment_id="table4", title="Hyper-parameter grid search",
        rows=rows, paper_rows=paper_numbers.TABLE4,
        notes="paper reports the search space; we additionally report "
              "validation scores per configuration")
