"""k-mer decomposition of SMILES strings — paper Algorithm 3.

A k-mer is a window of ``k`` characters; a SMILES of length *l* yields
``l - k + 1`` overlapping k-mers.  Unlike ESPF, k-mer keeps *every*
substructure and lets HyGNN's attention decide which matter (the paper argues
this is why k-mer variants win, Sec. IV-D2).
"""

from __future__ import annotations


def kmerize(smiles: str, k: int) -> list[str]:
    """All overlapping k-mers of one SMILES string, in order.

    A string shorter than ``k`` yields itself as a single token (the paper
    leaves this case unspecified; keeping the whole string preserves the
    drug's only available substructure instead of dropping the drug).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not smiles:
        raise ValueError("empty SMILES string")
    if len(smiles) < k:
        return [smiles]
    return [smiles[i:i + k] for i in range(len(smiles) - k + 1)]


def kmerize_corpus(smiles_corpus: list[str], k: int
                   ) -> tuple[dict[str, list[str]], list[str]]:
    """Paper Algorithm 3: per-drug k-mer lists plus the global multiset.

    Returns ``(drug_dict, substructure_list)`` exactly as the pseudocode
    does — ``drug_dict`` maps each SMILES to its k-mers, and
    ``substructure_list`` concatenates all k-mers across drugs.
    """
    drug_dict: dict[str, list[str]] = {}
    substructure_list: list[str] = []
    for smiles in smiles_corpus:
        kmers = kmerize(smiles, k)
        drug_dict[smiles] = kmers
        substructure_list.extend(kmers)
    return drug_dict, substructure_list


def kmer_vocabulary(smiles_corpus: list[str], k: int) -> list[str]:
    """Distinct k-mers across the corpus (hypergraph nodes, Tables II/III)."""
    seen: dict[str, None] = {}
    for smiles in smiles_corpus:
        for kmer in kmerize(smiles, k):
            seen.setdefault(kmer)
    return list(seen)
