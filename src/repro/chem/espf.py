"""Explainable Substructure Partition Fingerprint (ESPF) — paper Algorithm 2.

ESPF is byte-pair-encoding applied to SMILES: starting from atom/bond tokens,
it repeatedly merges the most frequent adjacent token pair across the corpus
until the best pair's frequency drops below a threshold (or a vocabulary size
cap is hit).  Encoding a drug replays the learned merges, decomposing the
SMILES into frequent, moderately sized substructures — the hypergraph nodes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .tokenizer import tokenize


def _count_pairs(corpus: list[list[str]]) -> Counter:
    counts: Counter = Counter()
    for tokens in corpus:
        for left, right in zip(tokens, tokens[1:]):
            counts[(left, right)] += 1
    return counts


def _merge_tokens(tokens: list[str], pair: tuple[str, str],
                  merged: str) -> list[str]:
    """Replace non-overlapping occurrences of ``pair`` (left-to-right)."""
    left, right = pair
    out: list[str] = []
    i = 0
    n = len(tokens)
    while i < n:
        if i + 1 < n and tokens[i] == left and tokens[i + 1] == right:
            out.append(merged)
            i += 2
        else:
            out.append(tokens[i])
            i += 1
    return out


@dataclass
class ESPF:
    """Learns and applies frequent-substructure partitions.

    Parameters
    ----------
    frequency_threshold:
        The paper's α: stop merging when the most frequent remaining pair
        occurs fewer than this many times.  Swept over {5, 10, 15, 20, 25}
        in Tables II/III and Fig. 2.
    max_vocab_size:
        The paper's L: a cap on the number of merge operations.
    """

    frequency_threshold: int = 5
    max_vocab_size: int = 2000
    merges: list[tuple[str, str]] = field(default_factory=list, repr=False)
    _fitted: bool = field(default=False, repr=False)

    def fit(self, smiles_corpus: list[str]) -> "ESPF":
        """Learn merge operations from a corpus of SMILES strings."""
        if self.frequency_threshold < 1:
            raise ValueError("frequency_threshold must be >= 1")
        if not smiles_corpus:
            raise ValueError("cannot fit ESPF on an empty corpus")
        corpus = [tokenize(s) for s in smiles_corpus]
        self.merges = []
        for _ in range(self.max_vocab_size):
            counts = _count_pairs(corpus)
            if not counts:
                break
            pair, freq = counts.most_common(1)[0]
            if freq < self.frequency_threshold:
                break
            merged = pair[0] + pair[1]
            corpus = [_merge_tokens(tokens, pair, merged) for tokens in corpus]
            self.merges.append(pair)
        self._fitted = True
        return self

    def encode(self, smiles: str) -> list[str]:
        """Decompose one SMILES string into learned frequent substructures."""
        if not self._fitted:
            raise RuntimeError("ESPF must be fitted before encoding")
        tokens = tokenize(smiles)
        for pair in self.merges:
            if len(tokens) < 2:
                break
            tokens = _merge_tokens(tokens, pair, pair[0] + pair[1])
        return tokens

    def encode_corpus(self, smiles_corpus: list[str]) -> list[list[str]]:
        return [self.encode(s) for s in smiles_corpus]

    def vocabulary(self, smiles_corpus: list[str]) -> list[str]:
        """Distinct substructures appearing in the encoded corpus.

        These become the hypergraph nodes; Tables II/III report their count
        as a function of ``frequency_threshold``.
        """
        seen: dict[str, None] = {}
        for tokens in self.encode_corpus(smiles_corpus):
            for token in tokens:
                seen.setdefault(token)
        return list(seen)

    @property
    def num_merges(self) -> int:
        return len(self.merges)
