"""Synthetic drug-molecule generator.

Substitutes for the DrugBank / TWOSIDES SMILES corpora (unavailable offline).
Each drug is a composition of library fragments (see
:mod:`repro.chem.fragments`), yielding a syntactically valid SMILES whose
functional groups are known by construction.  The pharmacophores embedded in
each drug drive the latent interaction model in :mod:`repro.data.synthetic`,
so chemical-substructure similarity genuinely predicts interactions — the
property the paper's method exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fragments import FRAGMENT_LIBRARY, Fragment, fragment_sets
from .validate import validate_smiles

_NAME_HEADS = ("dex", "lor", "fen", "pra", "zol", "mex", "cly", "tor",
               "ami", "keto", "flu", "car", "val", "nab", "oxa", "ben")
_NAME_MIDDLES = ("tri", "na", "vo", "xi", "do", "ra", "mi", "lu", "pe", "so")
_NAME_TAILS = ("pine", "olol", "statin", "mycin", "azole", "idine", "afil",
               "oxetine", "pril", "sartan", "tinib", "amide")


@dataclass(frozen=True)
class DrugRecord:
    """A generated drug: identity, SMILES, and latent composition."""

    drug_id: str
    name: str
    smiles: str
    fragment_names: tuple[str, ...]
    pharmacophores: frozenset[str]

    def __post_init__(self):
        if not self.smiles:
            raise ValueError("drug must have a SMILES string")


class MoleculeGenerator:
    """Deterministic fragment-composition generator.

    Fragment popularity follows a Zipf distribution (permuted per seed) so
    that some substructures are frequent — exactly the regime ESPF's
    frequency-threshold mining expects.
    """

    def __init__(self, seed: int = 0,
                 library: tuple[Fragment, ...] = FRAGMENT_LIBRARY,
                 min_fragments: int = 3, max_fragments: int = 8,
                 branch_probability: float = 0.25,
                 zipf_exponent: float = 1.05):
        if min_fragments < 2:
            raise ValueError("drugs need at least 2 fragments")
        if max_fragments < min_fragments:
            raise ValueError("max_fragments < min_fragments")
        self.rng = np.random.default_rng(seed)
        self.sets = fragment_sets(library)
        self.min_fragments = min_fragments
        self.max_fragments = max_fragments
        self.branch_probability = branch_probability
        self._chain_weights = self._zipf_weights(len(self.sets.chain), zipf_exponent)
        self._terminal_weights = self._zipf_weights(len(self.sets.terminal),
                                                    zipf_exponent)

    def _zipf_weights(self, n: int, exponent: float) -> np.ndarray:
        ranks = self.rng.permutation(n) + 1
        weights = 1.0 / ranks.astype(np.float64) ** exponent
        return weights / weights.sum()

    def _pick_chain(self) -> Fragment:
        index = self.rng.choice(len(self.sets.chain), p=self._chain_weights)
        return self.sets.chain[index]

    def _pick_terminal(self) -> Fragment:
        index = self.rng.choice(len(self.sets.terminal), p=self._terminal_weights)
        return self.sets.terminal[index]

    def generate_molecule(self) -> tuple[str, tuple[str, ...]]:
        """Compose one molecule; returns ``(smiles, fragment_names)``.

        Terminal fragments (monovalent endings) are placed either at the end
        of the chain or wrapped as a ``(...)`` branch mid-chain, keeping the
        concatenation syntactically valid.
        """
        count = int(self.rng.integers(self.min_fragments, self.max_fragments + 1))
        pieces: list[str] = []
        names: list[str] = []
        first = self._pick_chain()
        pieces.append(first.smiles)
        names.append(first.name)
        for position in range(1, count):
            is_last = position == count - 1
            use_terminal = self.rng.random() < self.branch_probability
            if use_terminal:
                fragment = self._pick_terminal()
                pieces.append(fragment.smiles if is_last
                              else f"({fragment.smiles})")
            else:
                fragment = self._pick_chain()
                pieces.append(fragment.smiles)
            names.append(fragment.name)
        return "".join(pieces), tuple(names)

    def _make_name(self, index: int) -> str:
        head = _NAME_HEADS[int(self.rng.integers(len(_NAME_HEADS)))]
        middle = _NAME_MIDDLES[int(self.rng.integers(len(_NAME_MIDDLES)))]
        tail = _NAME_TAILS[int(self.rng.integers(len(_NAME_TAILS)))]
        return f"{head}{middle}{tail}-{index}".capitalize()

    def generate_corpus(self, n_drugs: int,
                        max_attempts_factor: int = 50) -> list[DrugRecord]:
        """Generate ``n_drugs`` drugs with distinct SMILES strings.

        Every SMILES is run through the validator; duplicates are resampled.
        """
        if n_drugs < 1:
            raise ValueError("n_drugs must be positive")
        records: list[DrugRecord] = []
        seen: set[str] = set()
        attempts = 0
        max_attempts = max_attempts_factor * n_drugs
        pharm_names = {f.name for f in self.sets.pharmacophores}
        while len(records) < n_drugs:
            attempts += 1
            if attempts > max_attempts:
                raise RuntimeError(
                    f"could not generate {n_drugs} unique molecules in "
                    f"{max_attempts} attempts; increase fragment diversity")
            smiles, names = self.generate_molecule()
            if smiles in seen:
                continue
            validate_smiles(smiles)
            seen.add(smiles)
            index = len(records)
            records.append(DrugRecord(
                drug_id=f"SD{index:04d}",
                name=self._make_name(index),
                smiles=smiles,
                fragment_names=names,
                pharmacophores=frozenset(n for n in names if n in pharm_names),
            ))
        return records
