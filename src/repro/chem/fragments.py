"""Chemical fragment library for the synthetic molecule generator.

The real datasets come from DrugBank / TWOSIDES via TDC; offline we compose
drugs from a library of realistic SMILES fragments (functional groups, rings,
linkers).  Every fragment starts with an atom and is self-contained (its ring
digits close internally, its branches balance), so fragments concatenate into
syntactically valid SMILES.

A subset of fragments are *pharmacophores*: latent reactive groups used by
:mod:`repro.data.synthetic` to decide which drug pairs interact.  That design
makes the paper's core hypothesis — drugs sharing functional substructures
have correlated interaction profiles — literally true in the generated data,
so HyGNN's mechanism is exercised the same way the real data exercises it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Fragment:
    """A named SMILES fragment.

    ``terminal`` fragments end in a monovalent atom and may only appear at
    the end of a chain or wrapped as a branch; chain fragments can appear
    anywhere.  ``pharmacophore`` marks latent reactive groups.
    """

    name: str
    smiles: str
    terminal: bool = False
    pharmacophore: bool = False


# The library mixes common medicinal-chemistry motifs.  Pharmacophores are
# chosen to be distinctive substrings so that ESPF / k-mer substructure
# extraction can recover them from the composed SMILES.
FRAGMENT_LIBRARY: tuple[Fragment, ...] = (
    # --- simple chain linkers -------------------------------------------
    Fragment("methylene", "C"),
    Fragment("ethylene", "CC"),
    Fragment("propylene", "CCC"),
    Fragment("methine_branch", "C(C)"),
    Fragment("gem_dimethyl", "C(C)(C)"),
    Fragment("ether", "CO"),
    Fragment("thioether", "CS"),
    Fragment("secondary_amine", "CN"),
    Fragment("alkene", "C=C"),
    Fragment("alcohol_linker", "C(O)"),
    # --- rings -----------------------------------------------------------
    Fragment("benzene", "c1ccccc1"),
    Fragment("toluene_core", "Cc1ccccc1"),
    Fragment("cyclohexane", "C1CCCCC1"),
    Fragment("cyclopentane", "C1CCCC1"),
    Fragment("cyclopropane", "C1CC1"),
    Fragment("pyridine", "c1ccncc1", pharmacophore=True),
    Fragment("pyrrole", "c1cc[nH]c1", terminal=True),
    Fragment("furan", "c1ccoc1", terminal=True),
    Fragment("thiophene", "c1ccsc1", terminal=True),
    Fragment("imidazole", "c1cnc[nH]1", terminal=True, pharmacophore=True),
    Fragment("piperidine", "C1CCNCC1", pharmacophore=True),
    Fragment("piperazine", "C1CNCCN1", pharmacophore=True),
    Fragment("morpholine", "C1COCCN1"),
    Fragment("tetrahydrofuran", "C1CCOC1"),
    Fragment("naphthalene", "c1ccc2ccccc2c1", pharmacophore=True),
    Fragment("dioxolane", "C1OCCO1"),
    # --- functional groups -----------------------------------------------
    Fragment("carboxylic_acid", "C(=O)O", pharmacophore=True),
    Fragment("ester", "C(=O)OC", pharmacophore=True),
    Fragment("amide", "C(=O)N", pharmacophore=True),
    Fragment("ketone", "C(=O)C"),
    Fragment("sulfonamide", "S(=O)(=O)N", pharmacophore=True),
    Fragment("sulfone", "S(=O)(=O)C"),
    Fragment("guanidine", "NC(N)=N", pharmacophore=True),
    Fragment("urea", "NC(=O)N", pharmacophore=True),
    Fragment("carbamate", "OC(=O)N"),
    # --- terminal decorations --------------------------------------------
    Fragment("fluoro", "F", terminal=True),
    Fragment("chloro", "Cl", terminal=True),
    Fragment("bromo", "Br", terminal=True),
    Fragment("trifluoromethyl", "C(F)(F)F", terminal=True, pharmacophore=True),
    Fragment("nitrile", "C#N", terminal=True, pharmacophore=True),
    Fragment("nitro", "[N+](=O)[O-]", terminal=True, pharmacophore=True),
    Fragment("hydroxyl", "O", terminal=True),
    Fragment("primary_amine", "N", terminal=True, pharmacophore=True),
    Fragment("methoxy", "OC", terminal=True),
    Fragment("thiol", "S", terminal=True),
)


@dataclass(frozen=True)
class FragmentSets:
    """Pre-split views of the library used by the generator."""

    all_fragments: tuple[Fragment, ...]
    chain: tuple[Fragment, ...] = field(default=())
    terminal: tuple[Fragment, ...] = field(default=())
    pharmacophores: tuple[Fragment, ...] = field(default=())


def fragment_sets(library: tuple[Fragment, ...] = FRAGMENT_LIBRARY) -> FragmentSets:
    chain = tuple(f for f in library if not f.terminal)
    terminal = tuple(f for f in library if f.terminal)
    pharmacophores = tuple(f for f in library if f.pharmacophore)
    return FragmentSets(all_fragments=library, chain=chain,
                        terminal=terminal, pharmacophores=pharmacophores)


def fragment_by_name(name: str,
                     library: tuple[Fragment, ...] = FRAGMENT_LIBRARY) -> Fragment:
    for fragment in library:
        if fragment.name == name:
            return fragment
    raise KeyError(f"unknown fragment: {name}")
