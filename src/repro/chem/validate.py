"""Syntactic SMILES validation.

The paper's pipeline consumes SMILES as *text* (ESPF and k-mer never touch
3-D structure), so validity here means lexical and structural well-formedness:
balanced branches, closed rings, bonds in legal positions.  This replaces the
RDKit sanity check an online reproduction would use.
"""

from __future__ import annotations

from .tokenizer import SmilesTokenError, is_atom_token, tokenize

_BONDS = {"-", "=", "#", "$", ":", "/", "\\"}


class SmilesValidationError(ValueError):
    """Raised by :func:`validate_smiles` on structurally invalid input."""


def validate_smiles(smiles: str) -> list[str]:
    """Validate ``smiles`` and return its token list.

    Checks performed:

    - lexical validity (via the tokenizer),
    - the string starts with an atom,
    - branch parentheses balance, never close early, and are non-empty,
    - no ``((`` or ``()`` sequences; branches follow an atom or ring closure,
    - every ring-closure digit opened is closed (digits toggle open/close),
    - bond symbols connect two atoms (not dangling at the end or before ')').
    """
    try:
        tokens = tokenize(smiles)
    except SmilesTokenError as exc:
        raise SmilesValidationError(str(exc)) from exc

    if not is_atom_token(tokens[0]):
        raise SmilesValidationError(
            f"SMILES must start with an atom, got {tokens[0]!r}")

    depth = 0
    open_rings: set[str] = set()
    previous = None
    for index, token in enumerate(tokens):
        if token == "(":
            if previous is None or previous in _BONDS or previous == "(":
                raise SmilesValidationError(
                    f"branch at position {index} does not follow an atom")
            depth += 1
        elif token == ")":
            if depth == 0:
                raise SmilesValidationError("unbalanced ')' branch close")
            if previous == "(":
                raise SmilesValidationError("empty branch '()'")
            if previous in _BONDS:
                raise SmilesValidationError("bond dangling before ')'")
            depth -= 1
        elif token in _BONDS:
            if previous is None:
                raise SmilesValidationError("SMILES cannot start with a bond")
        elif token.isdigit() or token.startswith("%"):
            ring_id = token.lstrip("%")
            if previous is None or previous == "(":
                raise SmilesValidationError(
                    f"ring closure {token!r} must follow an atom")
            if ring_id in open_rings:
                open_rings.remove(ring_id)
            else:
                open_rings.add(ring_id)
        previous = token

    if depth != 0:
        raise SmilesValidationError(f"{depth} unclosed branch(es)")
    if open_rings:
        raise SmilesValidationError(f"unclosed ring closure(s): {sorted(open_rings)}")
    if previous in _BONDS:
        raise SmilesValidationError("SMILES ends with a dangling bond")
    return tokens


def is_valid_smiles(smiles: str) -> bool:
    """Boolean convenience wrapper around :func:`validate_smiles`."""
    try:
        validate_smiles(smiles)
    except SmilesValidationError:
        return False
    return True
