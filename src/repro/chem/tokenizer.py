"""SMILES tokenisation.

ESPF (paper Algorithm 2) starts from "initial SMILES tokens as atoms and
bonds"; this module produces that initial token stream.  The tokenizer
recognises the standard SMILES lexicon: bracket atoms ``[...]``, two-letter
organic-subset atoms (Cl, Br), aromatic atoms, bonds, branches, and ring
closures (including ``%nn`` two-digit closures).
"""

from __future__ import annotations

import re

# Order matters: longest alternatives first.
_TOKEN_PATTERN = re.compile(
    r"(\[[^\]]+\]"          # bracket atom, e.g. [N+], [nH], [O-]
    r"|Br|Cl"               # two-letter organic atoms
    r"|%\d{2}"              # two-digit ring closure
    r"|[BCNOPSFI]"          # one-letter organic atoms
    r"|[bcnops]"            # aromatic atoms
    r"|[-=#$:/\\]"          # bonds
    r"|[().]"               # branches / disconnection
    r"|\d)"                 # single-digit ring closure
)

_ATOM_PATTERN = re.compile(r"^(\[[^\]]+\]|Br|Cl|[BCNOPSFI]|[bcnops])$")


class SmilesTokenError(ValueError):
    """Raised when a SMILES string contains characters outside the lexicon."""


def tokenize(smiles: str) -> list[str]:
    """Split a SMILES string into its lexical tokens.

    Raises :class:`SmilesTokenError` if any character cannot be consumed,
    which is the first line of defence against malformed inputs.
    """
    if not smiles:
        raise SmilesTokenError("empty SMILES string")
    tokens: list[str] = []
    position = 0
    while position < len(smiles):
        match = _TOKEN_PATTERN.match(smiles, position)
        if match is None:
            raise SmilesTokenError(
                f"unrecognised SMILES syntax at position {position}: "
                f"{smiles[position:position + 8]!r}")
        tokens.append(match.group(0))
        position = match.end()
    return tokens


def is_atom_token(token: str) -> bool:
    """True if ``token`` denotes an atom (bracketed, organic, or aromatic)."""
    return bool(_ATOM_PATTERN.match(token))


def atom_count(smiles: str) -> int:
    """Number of atom tokens in a SMILES string."""
    return sum(1 for token in tokenize(smiles) if is_atom_token(token))
