"""``repro.chem`` — SMILES toolkit: tokenizer, validator, ESPF, k-mer, generator."""

from .espf import ESPF
from .fragments import FRAGMENT_LIBRARY, Fragment, fragment_by_name, fragment_sets
from .generator import DrugRecord, MoleculeGenerator
from .kmer import kmer_vocabulary, kmerize, kmerize_corpus
from .tokenizer import SmilesTokenError, atom_count, is_atom_token, tokenize
from .validate import SmilesValidationError, is_valid_smiles, validate_smiles

__all__ = [
    "ESPF", "Fragment", "FRAGMENT_LIBRARY", "fragment_by_name", "fragment_sets",
    "DrugRecord", "MoleculeGenerator",
    "kmerize", "kmerize_corpus", "kmer_vocabulary",
    "tokenize", "is_atom_token", "atom_count", "SmilesTokenError",
    "validate_smiles", "is_valid_smiles", "SmilesValidationError",
]
