"""The HyGNN hyperedge encoder (paper Sec. III-C1).

Pipeline per layer: hyperedge-level attention produces node features from
hyperedge features (Eq. 4), node-level attention produces hyperedge (drug)
features from node features (Eq. 7).  The paper employs a single such layer
(Sec. IV-B); ``num_layers`` generalises this for the depth ablation.

Initial features: nodes (substructures) carry a learned embedding table;
initial hyperedge features are the mean of their member nodes' embeddings,
which keeps the encoder *inductive* — a drug never seen in training is
embedded purely from its (known) substructures, enabling the Table IX
cold-start experiment.

Serving split
-------------
A hyperedge's embedding at layer *l* depends only on that layer's node
features (a function of the *corpus* incidence alone) and the hyperedge's own
members.  :meth:`HyGNNEncoder.encode_with_context` therefore records the
per-layer node features as an :class:`EncoderContext`, and
:meth:`HyGNNEncoder.encode_edges_subset` replays just the node-level
aggregation for an arbitrary set of hyperedges against that frozen context —
bitwise-identical to a full encode for corpus edges, and the paper's
cold-start semantics (Table IX) for new drugs.  This is what lets a serving
layer embed a newly registered drug in O(its substructures) instead of
re-encoding the whole catalog hypergraph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hypergraph import Hypergraph
from ..nn import Dropout, Linear, Module, Tape, Tensor, init
from ..nn import functional as F
from ..nn.functional import SegmentPartition
from .attention import HyperedgeLevelAttention, NodeLevelAttention


@dataclass(frozen=True)
class EncoderContext:
    """Frozen per-layer node features from one corpus encode.

    ``layer_node_feats[l]`` is the node-feature tensor consumed by layer
    *l*'s node-level attention; it is a function of the corpus incidence
    structure only, never of the hyperedges being scored against it.
    """

    layer_node_feats: tuple[Tensor, ...]

    @property
    def num_layers(self) -> int:
        return len(self.layer_node_feats)


class HyGNNEncoder(Module):
    """Produces drug (hyperedge) embeddings from incidence structure."""

    def __init__(self, num_substructures: int, embed_dim: int,
                 hidden_dim: int, rng: np.random.Generator,
                 num_layers: int = 1, dropout: float = 0.1,
                 negative_slope: float = 0.2, num_heads: int = 1):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one encoder layer")
        self.num_substructures = num_substructures
        # Standard-normal embedding init (as torch.nn.Embedding).  Xavier
        # fan-based scaling would shrink rows with the vocabulary size and
        # starve the parameter-free dot decoder of signal.
        self.node_embedding = init.normal(
            (num_substructures, embed_dim), rng, std=1.0)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None
        self.layers: list[tuple[HyperedgeLevelAttention, NodeLevelAttention]] = []
        node_dim, edge_dim = embed_dim, embed_dim
        for index in range(num_layers):
            edge_level = HyperedgeLevelAttention(
                node_dim, edge_dim, hidden_dim, rng,
                negative_slope=negative_slope, num_heads=num_heads)
            node_level = NodeLevelAttention(
                hidden_dim, edge_dim, hidden_dim, rng,
                negative_slope=negative_slope, num_heads=num_heads)
            self._modules[f"edge_att{index}"] = edge_level
            self._modules[f"node_att{index}"] = node_level
            self.layers.append((edge_level, node_level))
            node_dim = hidden_dim
            edge_dim = hidden_dim

    # ------------------------------------------------------------------
    def _check_node_ids(self, node_ids: np.ndarray) -> np.ndarray:
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.size and node_ids.max() >= self.num_substructures:
            raise ValueError("node id exceeds the trained vocabulary")
        return node_ids

    def initial_features(self, node_ids: np.ndarray, edge_ids: np.ndarray,
                         num_edges: int,
                         edge_partition: SegmentPartition | None = None
                         ) -> tuple[Tensor, Tensor]:
        """(p0, q0): node embeddings and mean-pooled hyperedge features."""
        p0 = self.node_embedding
        member_feats = F.gather_rows(p0, node_ids)
        q0 = F.segment_mean(member_feats, edge_ids, num_edges,
                            partition=edge_partition)
        return p0, q0

    def forward(self, node_ids: np.ndarray, edge_ids: np.ndarray,
                num_edges: int,
                partitions: tuple[SegmentPartition, SegmentPartition] | None = None
                ) -> Tensor:
        """Drug embeddings of shape (num_edges, hidden_dim)."""
        return self.encode_with_context(node_ids, edge_ids, num_edges,
                                        partitions=partitions)[0]

    def encode_with_context(self, node_ids: np.ndarray, edge_ids: np.ndarray,
                            num_edges: int,
                            partitions: tuple[SegmentPartition,
                                              SegmentPartition] | None = None
                            ) -> tuple[Tensor, EncoderContext]:
        """Full encode that also returns the frozen per-layer node features.

        ``partitions`` is the ``(node_partition, edge_partition)`` pair for
        the incidence arrays; it is computed once here when absent and reused
        by every segment op across all layers (``encode_hypergraph`` passes
        the hypergraph's cached pair instead).
        """
        node_ids = self._check_node_ids(node_ids)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if partitions is None:
            partitions = (SegmentPartition(node_ids, self.num_substructures),
                          SegmentPartition(edge_ids, num_edges))
        edge_feats, context = self._sweep(node_ids, edge_ids, num_edges,
                                          partitions, dropout=self.dropout)
        return edge_feats, EncoderContext(layer_node_feats=tuple(context))

    def _sweep(self, node_ids: np.ndarray, edge_ids: np.ndarray,
               num_edges: int,
               partitions: tuple[SegmentPartition, SegmentPartition],
               dropout: Dropout | None, final_attention: bool = False):
        """The per-layer alternation shared by every full-corpus walk.

        Runs hyperedge-level then node-level attention across all layers
        (Eqs. 2-3), threading both cached partitions into every kernel (the
        grouping partition for the softmax segments, the complementary one
        for the fused backward scatters).  Returns ``(edge_feats,
        layer_node_feats)`` — or, with ``final_attention=True``, the last
        layer's node-level attention coefficients instead of running its
        aggregation (the interpretability output, which therefore cannot
        drift from the encoder it shares this sweep with; that path passes
        ``dropout=None`` to keep its historical always-deterministic
        semantics).
        """
        node_part, edge_part = partitions
        node_feats, edge_feats = self.initial_features(
            node_ids, edge_ids, num_edges, edge_partition=edge_part)
        if dropout is not None:
            node_feats = dropout(node_feats)
        context: list[Tensor] = []
        last = len(self.layers) - 1
        for index, (edge_level, node_level) in enumerate(self.layers):
            # Eq. (2): node representations from incident hyperedges.
            new_nodes = edge_level(node_feats, edge_feats, node_ids, edge_ids,
                                   node_partition=node_part,
                                   edge_partition=edge_part)
            context.append(new_nodes)
            if final_attention and index == last:
                return node_level.attention_weights(
                    new_nodes, edge_feats, node_ids, edge_ids,
                    edge_partition=edge_part, node_partition=node_part)
            # Eq. (3): hyperedge representations from member nodes.
            edge_feats = node_level(new_nodes, edge_feats, node_ids, edge_ids,
                                    edge_partition=edge_part,
                                    node_partition=node_part)
            node_feats = new_nodes
            if dropout is not None:
                edge_feats = dropout(edge_feats)
        return edge_feats, context

    def encode_edges_subset(self, context: EncoderContext,
                            node_ids: np.ndarray, edge_ids: np.ndarray,
                            num_edges: int,
                            edge_partition: SegmentPartition | None = None
                            ) -> Tensor:
        """Embed ``num_edges`` hyperedges against a frozen corpus context.

        Only the node-level aggregation runs per layer — O(incidences of the
        subset) — and re-encoding the *full* corpus incidence through this
        path reproduces :meth:`encode_with_context`'s output bitwise (in eval
        mode).  Per-edge results are mathematically independent; encoding
        edges one at a time matches a batch encode up to BLAS batch-shape
        rounding (ULP-level: gemv vs gemm take different summation orders).
        """
        if context.num_layers != len(self.layers):
            raise ValueError("context layer count does not match the encoder")
        node_ids = self._check_node_ids(node_ids)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if edge_partition is None:
            edge_partition = SegmentPartition(edge_ids, num_edges)
        _, edge_feats = self.initial_features(
            node_ids, edge_ids, num_edges, edge_partition=edge_partition)
        for (_, node_level), layer_nodes in zip(self.layers,
                                                context.layer_node_feats):
            edge_feats = node_level(layer_nodes, edge_feats, node_ids,
                                    edge_ids, edge_partition=edge_partition)
            if self.dropout is not None:
                edge_feats = self.dropout(edge_feats)
        return edge_feats

    def encode_hypergraph(self, hypergraph: Hypergraph) -> Tensor:
        return self.forward(hypergraph.node_ids, hypergraph.edge_ids,
                            hypergraph.num_edges,
                            partitions=(hypergraph.node_partition,
                                        hypergraph.edge_partition))

    def compile_encode(self, hypergraph: Hypergraph) -> Tape:
        """Record the corpus encode as a replayable :class:`Tape`.

        ``tape.root`` is the drug-embedding matrix; ``tape.forward()``
        re-encodes under the current weights and ``tape.backward(grad)``
        back-propagates an externally accumulated embedding gradient (the
        mini-batch trainer's per-epoch encoder step) through all layers.

        The tape freezes the train/eval mode in effect at record time: a
        tape recorded while training keeps (re-sampling) its dropout nodes
        on every replay regardless of a later ``eval()``.  Record in the
        mode you intend to replay in — eval-mode encodes for serving, train
        mode for optimization.
        """
        return Tape.record(lambda: self.encode_hypergraph(hypergraph))

    def substructure_attention(self, hypergraph: Hypergraph) -> np.ndarray:
        """Final-layer node-level attention X_ji per incidence entry.

        High values flag the substructures the model deems responsible for a
        drug's interactions (the paper's interpretability claim, Sec. I).
        Shares :meth:`_sweep` with :meth:`encode_with_context`, so the
        interpretability output runs the exact encoder layer stack.
        """
        return self._sweep(hypergraph.node_ids, hypergraph.edge_ids,
                           hypergraph.num_edges,
                           (hypergraph.node_partition,
                            hypergraph.edge_partition),
                           dropout=None, final_attention=True)


class _CouplingHalf(Module):
    """One residual half (F or G) of a reversible encoder block.

    A full hyperedge-level + node-level attention pass at half the hidden
    width: the edge-state half drives both levels' attention against the
    shared node stem, and the result is an edge-state update of the same
    half width — exactly the shape the additive coupling needs.
    """

    def __init__(self, node_dim: int, half_dim: int, rng: np.random.Generator,
                 negative_slope: float, num_heads: int):
        super().__init__()
        self.edge_level = HyperedgeLevelAttention(
            node_dim, half_dim, half_dim, rng,
            negative_slope=negative_slope, num_heads=num_heads)
        self.node_level = NodeLevelAttention(
            half_dim, half_dim, half_dim, rng,
            negative_slope=negative_slope, num_heads=num_heads)

    def forward(self, stem_nodes: Tensor, edge_half: Tensor,
                node_ids: np.ndarray, edge_ids: np.ndarray,
                node_partition: SegmentPartition | None,
                edge_partition: SegmentPartition | None
                ) -> tuple[Tensor, Tensor]:
        """Returns ``(edge_update, node_feats)``; the node features are the
        frozen-context entry the serving split stores for this half."""
        nodes = self.edge_level(stem_nodes, edge_half, node_ids, edge_ids,
                                node_partition=node_partition,
                                edge_partition=edge_partition)
        edges = self.node_level(nodes, edge_half, node_ids, edge_ids,
                                edge_partition=edge_partition,
                                node_partition=node_partition)
        return edges, nodes


class ReversibleHyGNNEncoder(HyGNNEncoder):
    """Memory-lean deep encoder: coupled reversible residual attention blocks.

    The hidden state is split into halves ``(x1, x2)`` and each block applies
    the additive coupling ``y1 = x1 + F(x2); y2 = x2 + G(y1)`` (RevNet /
    DGL ``GroupRevRes``), where F and G are each a full hyperedge-level +
    node-level attention pass (:class:`_CouplingHalf`) at half width,
    streaming through the same fused ``incidence_scores`` /
    ``segment_attend`` kernels and cached :class:`SegmentPartition` block
    plans as :class:`HyGNNEncoder`.  Because the coupling is invertible
    (``x2 = y2 - G(y1); x1 = y1 - F(x2)``), training wraps each block in
    :func:`repro.nn.functional.invertible_checkpoint`: the forward frees the
    previous block's activations and the backward reconstructs them from the
    block output, so taped epochs hold O(1) activations in depth.

    ``recompute`` toggles the checkpointed forward (default) against a plain
    stored-activation composition of the *same* ops — the two produce
    bitwise-identical outputs and gradients equal to reconstruction
    round-off (``benchmarks/bench_training_memory.py`` gates both).

    Dropout is applied in the stem only (embedding + initial edge state):
    the wrapped block functions must be deterministic so the backward-time
    recompute reproduces the forward values.
    """

    def __init__(self, num_substructures: int, embed_dim: int,
                 hidden_dim: int, rng: np.random.Generator,
                 num_layers: int = 1, dropout: float = 0.1,
                 negative_slope: float = 0.2, num_heads: int = 1):
        # Deliberately skip HyGNNEncoder.__init__ — the reversible encoder
        # builds coupling blocks instead of the plain layer stack but keeps
        # the parent's corpus-walk plumbing (encode_hypergraph,
        # compile_encode, _check_node_ids, initial_features).
        Module.__init__(self)
        if num_layers < 1:
            raise ValueError("need at least one encoder layer")
        if hidden_dim % 2:
            raise ValueError("reversible encoder requires an even "
                             "hidden_dim (coupled residual halves)")
        self.num_substructures = num_substructures
        self.hidden_dim = hidden_dim
        self.node_embedding = init.normal(
            (num_substructures, embed_dim), rng, std=1.0)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None
        self.stem_proj = Linear(embed_dim, hidden_dim, rng, bias=False)
        half = hidden_dim // 2
        self.blocks: list[tuple[_CouplingHalf, _CouplingHalf]] = []
        for index in range(num_layers):
            f_half = _CouplingHalf(embed_dim, half, rng, negative_slope,
                                   num_heads)
            g_half = _CouplingHalf(embed_dim, half, rng, negative_slope,
                                   num_heads)
            self._modules[f"rev{index}_f"] = f_half
            self._modules[f"rev{index}_g"] = g_half
            self.blocks.append((f_half, g_half))
        # Checkpointed (recompute-in-backward) forward by default; the
        # stored-activation path of the same ops is the gradient-parity
        # reference and costs O(depth) activation memory.
        self.recompute = True

    # ------------------------------------------------------------------
    def _stem(self, node_ids: np.ndarray, edge_ids: np.ndarray,
              num_edges: int, edge_partition: SegmentPartition | None,
              dropout: Dropout | None) -> tuple[Tensor, Tensor]:
        """(stem_nodes, x0): dropped node embeddings and the initial
        full-width edge state all blocks couple over."""
        stem_nodes = self.node_embedding
        if dropout is not None:
            stem_nodes = dropout(stem_nodes)
        _, q0 = self.initial_features(node_ids, edge_ids, num_edges,
                                      edge_partition=edge_partition)
        if dropout is not None:
            member = F.gather_rows(stem_nodes, node_ids)
            q0 = F.segment_mean(member, edge_ids, num_edges,
                                partition=edge_partition)
        x = self.stem_proj(q0)
        if dropout is not None:
            x = dropout(x)
        return stem_nodes, x

    def _resolve(self, node_ids: np.ndarray, edge_ids: np.ndarray,
                 num_edges: int,
                 partitions: tuple[SegmentPartition,
                                   SegmentPartition] | None):
        node_ids = self._check_node_ids(node_ids)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if partitions is None:
            partitions = (SegmentPartition(node_ids, self.num_substructures),
                          SegmentPartition(edge_ids, num_edges))
        return node_ids, edge_ids, partitions

    def _coupling_closures(self, f_half: _CouplingHalf, g_half: _CouplingHalf,
                           stem_nodes: Tensor, node_ids: np.ndarray,
                           edge_ids: np.ndarray,
                           node_part: SegmentPartition | None,
                           edge_part: SegmentPartition | None):
        """The (fn, fn_inverse) pair one checkpointed block records."""
        half = self.hidden_dim // 2

        def fn(x: Tensor) -> Tensor:
            x1, x2 = x[:, :half], x[:, half:]
            y1 = x1 + f_half(stem_nodes, x2, node_ids, edge_ids,
                             node_part, edge_part)[0]
            y2 = x2 + g_half(stem_nodes, y1, node_ids, edge_ids,
                             node_part, edge_part)[0]
            return F.concat([y1, y2], axis=1)

        def fn_inverse(y: Tensor) -> Tensor:
            y1, y2 = y[:, :half], y[:, half:]
            x2 = y2 - g_half(stem_nodes, y1, node_ids, edge_ids,
                             node_part, edge_part)[0]
            x1 = y1 - f_half(stem_nodes, x2, node_ids, edge_ids,
                             node_part, edge_part)[0]
            return F.concat([x1, x2], axis=1)

        return fn, fn_inverse

    def block_functions(self, index: int, node_ids: np.ndarray,
                        edge_ids: np.ndarray, num_edges: int,
                        partitions: tuple[SegmentPartition,
                                          SegmentPartition] | None = None):
        """(fn, fn_inverse) of block ``index`` over the given incidence.

        Exposed for the reversibility invariants in the test suite; the
        stem is built deterministically (no dropout).
        """
        node_ids, edge_ids, partitions = self._resolve(
            node_ids, edge_ids, num_edges, partitions)
        node_part, edge_part = partitions
        f_half, g_half = self.blocks[index]
        return self._coupling_closures(f_half, g_half, self.node_embedding,
                                       node_ids, edge_ids, node_part,
                                       edge_part)

    # ------------------------------------------------------------------
    def forward(self, node_ids: np.ndarray, edge_ids: np.ndarray,
                num_edges: int,
                partitions: tuple[SegmentPartition,
                                  SegmentPartition] | None = None) -> Tensor:
        """Drug embeddings of shape (num_edges, hidden_dim).

        Checkpointed (O(1) activations in depth) when ``recompute`` is set,
        stored-activation otherwise — bitwise-identical outputs either way.
        """
        if not self.recompute:
            return self.encode_with_context(node_ids, edge_ids, num_edges,
                                            partitions=partitions)[0]
        node_ids, edge_ids, partitions = self._resolve(
            node_ids, edge_ids, num_edges, partitions)
        node_part, edge_part = partitions
        stem_nodes, x = self._stem(node_ids, edge_ids, num_edges, edge_part,
                                   self.dropout)
        for index, (f_half, g_half) in enumerate(self.blocks):
            fn, fn_inverse = self._coupling_closures(
                f_half, g_half, stem_nodes, node_ids, edge_ids,
                node_part, edge_part)
            captured = ((stem_nodes,) + tuple(f_half.parameters())
                        + tuple(g_half.parameters()))
            # Block 0's input is the stem activation — keep it stored so
            # the stem backward sees pristine data; every later input is a
            # block output the inverse reconstructs.
            x = F.invertible_checkpoint(fn, fn_inverse, x, captured,
                                        free_input=index > 0,
                                        op=f"reversible_block{index}")
        return x

    def encode_with_context(self, node_ids: np.ndarray, edge_ids: np.ndarray,
                            num_edges: int,
                            partitions: tuple[SegmentPartition,
                                              SegmentPartition] | None = None
                            ) -> tuple[Tensor, EncoderContext]:
        """Stored-activation encode that captures the serving context.

        The context holds the F-half and G-half node features of every
        block, flattened in execution order — ``2 * len(blocks)`` entries —
        so the serving cache's index-based save/load round-trips unchanged.
        """
        node_ids, edge_ids, partitions = self._resolve(
            node_ids, edge_ids, num_edges, partitions)
        return self._couple_walk(node_ids, edge_ids, num_edges, partitions,
                                 dropout=self.dropout)

    def _couple_walk(self, node_ids: np.ndarray, edge_ids: np.ndarray,
                     num_edges: int,
                     partitions: tuple[SegmentPartition, SegmentPartition],
                     dropout: Dropout | None, final_attention: bool = False):
        """The stored-activation coupling walk all plain paths share."""
        node_part, edge_part = partitions
        stem_nodes, x = self._stem(node_ids, edge_ids, num_edges, edge_part,
                                   dropout)
        half = self.hidden_dim // 2
        context: list[Tensor] = []
        last = len(self.blocks) - 1
        for index, (f_half, g_half) in enumerate(self.blocks):
            x1, x2 = x[:, :half], x[:, half:]
            f_out, f_nodes = f_half(stem_nodes, x2, node_ids, edge_ids,
                                    node_part, edge_part)
            y1 = x1 + f_out
            if final_attention and index == last:
                g_nodes = g_half.edge_level(
                    stem_nodes, y1, node_ids, edge_ids,
                    node_partition=node_part, edge_partition=edge_part)
                return g_half.node_level.attention_weights(
                    g_nodes, y1, node_ids, edge_ids,
                    edge_partition=edge_part, node_partition=node_part)
            g_out, g_nodes = g_half(stem_nodes, y1, node_ids, edge_ids,
                                    node_part, edge_part)
            y2 = x2 + g_out
            x = F.concat([y1, y2], axis=1)
            context.extend([f_nodes, g_nodes])
        return x, EncoderContext(layer_node_feats=tuple(context))

    def encode_edges_subset(self, context: EncoderContext,
                            node_ids: np.ndarray, edge_ids: np.ndarray,
                            num_edges: int,
                            edge_partition: SegmentPartition | None = None
                            ) -> Tensor:
        """Embed hyperedges against a frozen corpus context.

        Per block only the two node-level aggregations run — against the
        stored F-half and G-half node features — so the cost is O(subset
        incidences), and re-encoding the full corpus incidence reproduces
        :meth:`encode_with_context` bitwise in eval mode (the serving
        contract shared with :class:`HyGNNEncoder`).
        """
        if context.num_layers != 2 * len(self.blocks):
            raise ValueError("context layer count does not match the encoder")
        node_ids = self._check_node_ids(node_ids)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if edge_partition is None:
            edge_partition = SegmentPartition(edge_ids, num_edges)
        _, x = self._stem(node_ids, edge_ids, num_edges, edge_partition,
                          self.dropout)
        half = self.hidden_dim // 2
        feats = context.layer_node_feats
        for index, (f_half, g_half) in enumerate(self.blocks):
            f_nodes, g_nodes = feats[2 * index], feats[2 * index + 1]
            x1, x2 = x[:, :half], x[:, half:]
            y1 = x1 + f_half.node_level(f_nodes, x2, node_ids, edge_ids,
                                        edge_partition=edge_partition)
            y2 = x2 + g_half.node_level(g_nodes, y1, node_ids, edge_ids,
                                        edge_partition=edge_partition)
            x = F.concat([y1, y2], axis=1)
        return x

    def substructure_attention(self, hypergraph: Hypergraph) -> np.ndarray:
        """Final-block G-half node-level attention X_ji per incidence entry.

        The reversible analogue of :meth:`HyGNNEncoder.substructure_attention`
        — shares :meth:`_couple_walk` with the encode paths, with the
        historical deterministic (no-dropout) semantics.
        """
        return self._couple_walk(
            hypergraph.node_ids, hypergraph.edge_ids, hypergraph.num_edges,
            (hypergraph.node_partition, hypergraph.edge_partition),
            dropout=None, final_attention=True)
