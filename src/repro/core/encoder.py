"""The HyGNN hyperedge encoder (paper Sec. III-C1).

Pipeline per layer: hyperedge-level attention produces node features from
hyperedge features (Eq. 4), node-level attention produces hyperedge (drug)
features from node features (Eq. 7).  The paper employs a single such layer
(Sec. IV-B); ``num_layers`` generalises this for the depth ablation.

Initial features: nodes (substructures) carry a learned embedding table;
initial hyperedge features are the mean of their member nodes' embeddings,
which keeps the encoder *inductive* — a drug never seen in training is
embedded purely from its (known) substructures, enabling the Table IX
cold-start experiment.
"""

from __future__ import annotations

import numpy as np

from ..hypergraph import Hypergraph
from ..nn import Dropout, Module, Tensor, init
from ..nn import functional as F
from .attention import HyperedgeLevelAttention, NodeLevelAttention


class HyGNNEncoder(Module):
    """Produces drug (hyperedge) embeddings from incidence structure."""

    def __init__(self, num_substructures: int, embed_dim: int,
                 hidden_dim: int, rng: np.random.Generator,
                 num_layers: int = 1, dropout: float = 0.1,
                 negative_slope: float = 0.2):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one encoder layer")
        self.num_substructures = num_substructures
        # Standard-normal embedding init (as torch.nn.Embedding).  Xavier
        # fan-based scaling would shrink rows with the vocabulary size and
        # starve the parameter-free dot decoder of signal.
        self.node_embedding = init.normal(
            (num_substructures, embed_dim), rng, std=1.0)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None
        self.layers: list[tuple[HyperedgeLevelAttention, NodeLevelAttention]] = []
        node_dim, edge_dim = embed_dim, embed_dim
        for index in range(num_layers):
            edge_level = HyperedgeLevelAttention(
                node_dim, edge_dim, hidden_dim, rng,
                negative_slope=negative_slope)
            node_level = NodeLevelAttention(
                hidden_dim, edge_dim, hidden_dim, rng,
                negative_slope=negative_slope)
            self._modules[f"edge_att{index}"] = edge_level
            self._modules[f"node_att{index}"] = node_level
            self.layers.append((edge_level, node_level))
            node_dim = hidden_dim
            edge_dim = hidden_dim

    def initial_features(self, node_ids: np.ndarray, edge_ids: np.ndarray,
                         num_edges: int) -> tuple[Tensor, Tensor]:
        """(p0, q0): node embeddings and mean-pooled hyperedge features."""
        p0 = self.node_embedding
        member_feats = F.gather_rows(p0, node_ids)
        q0 = F.segment_mean(member_feats, edge_ids, num_edges)
        return p0, q0

    def forward(self, node_ids: np.ndarray, edge_ids: np.ndarray,
                num_edges: int) -> Tensor:
        """Drug embeddings of shape (num_edges, hidden_dim)."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if node_ids.size and node_ids.max() >= self.num_substructures:
            raise ValueError("node id exceeds the trained vocabulary")
        node_feats, edge_feats = self.initial_features(node_ids, edge_ids,
                                                       num_edges)
        if self.dropout is not None:
            node_feats = self.dropout(node_feats)
        for edge_level, node_level in self.layers:
            # Eq. (2): node representations from incident hyperedges.
            new_nodes = edge_level(node_feats, edge_feats, node_ids, edge_ids)
            # Eq. (3): hyperedge representations from member nodes.
            edge_feats = node_level(new_nodes, edge_feats, node_ids, edge_ids)
            node_feats = new_nodes
            if self.dropout is not None:
                edge_feats = self.dropout(edge_feats)
        return edge_feats

    def encode_hypergraph(self, hypergraph: Hypergraph) -> Tensor:
        return self.forward(hypergraph.node_ids, hypergraph.edge_ids,
                            hypergraph.num_edges)

    def substructure_attention(self, hypergraph: Hypergraph) -> np.ndarray:
        """Final-layer node-level attention X_ji per incidence entry.

        High values flag the substructures the model deems responsible for a
        drug's interactions (the paper's interpretability claim, Sec. I).
        """
        node_ids, edge_ids = hypergraph.node_ids, hypergraph.edge_ids
        node_feats, edge_feats = self.initial_features(
            node_ids, edge_ids, hypergraph.num_edges)
        for index, (edge_level, node_level) in enumerate(self.layers):
            new_nodes = edge_level(node_feats, edge_feats, node_ids, edge_ids)
            if index == len(self.layers) - 1:
                return node_level.attention_weights(
                    new_nodes, edge_feats, node_ids, edge_ids)
            edge_feats = node_level(new_nodes, edge_feats, node_ids, edge_ids)
            node_feats = new_nodes
        raise AssertionError("unreachable: encoder has >= 1 layer")
