"""``repro.core`` — the HyGNN model (paper Sec. III): attention encoder,
MLP/dot decoders, end-to-end trainer, and the Table IV grid search."""

from .attention import (HyperedgeLevelAttention, NodeLevelAttention,
                        fused_kernels, fused_kernels_enabled)
from .config import PAPER_GRID, HyGNNConfig
from .decoder import DotDecoder, MLPDecoder, make_decoder
from .encoder import (EncoderContext, HyGNNEncoder,
                      ReversibleHyGNNEncoder)
from .model import HyGNN
from .search import SearchResult, grid_configs, grid_search, paper_grid
from .serialize import load_model, save_model
from .trainer import Trainer, TrainingHistory, train_hygnn

__all__ = [
    "HyperedgeLevelAttention", "NodeLevelAttention",
    "fused_kernels", "fused_kernels_enabled",
    "HyGNNConfig", "PAPER_GRID",
    "MLPDecoder", "DotDecoder", "make_decoder",
    "HyGNNEncoder", "ReversibleHyGNNEncoder", "EncoderContext", "HyGNN",
    "Trainer", "TrainingHistory", "train_hygnn",
    "grid_search", "grid_configs", "paper_grid", "SearchResult",
    "save_model", "load_model",
]
