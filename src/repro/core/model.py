"""The complete HyGNN model: encoder + decoder (paper Sec. III-C)."""

from __future__ import annotations

import numpy as np

from ..hypergraph import DrugHypergraphBuilder, Hypergraph
from ..nn import Module, Tape, Tensor, bce_with_logits
from ..nn import functional as F
from .config import HyGNNConfig
from .decoder import make_decoder
from .encoder import HyGNNEncoder, ReversibleHyGNNEncoder


class HyGNN(Module):
    """Hypergraph neural network for drug-drug interaction prediction."""

    def __init__(self, num_substructures: int, config: HyGNNConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        encoder_cls = (ReversibleHyGNNEncoder if config.reversible
                       else HyGNNEncoder)
        self.encoder = encoder_cls(
            num_substructures=num_substructures,
            embed_dim=config.embed_dim,
            hidden_dim=config.hidden_dim,
            rng=rng,
            num_layers=config.num_layers,
            dropout=config.dropout,
            num_heads=config.num_heads,
        )
        self.decoder = make_decoder(config.decoder, config.hidden_dim,
                                    config.hidden_dim, rng)

    @classmethod
    def for_corpus(cls, smiles_corpus: list[str],
                   config: HyGNNConfig) -> tuple["HyGNN", Hypergraph,
                                                 DrugHypergraphBuilder]:
        """Build the hypergraph for a corpus and a matching model."""
        builder = DrugHypergraphBuilder(method=config.method,
                                        parameter=config.parameter)
        hypergraph = builder.fit_transform(smiles_corpus)
        model = cls(num_substructures=hypergraph.num_nodes, config=config)
        return model, hypergraph, builder

    # ------------------------------------------------------------------
    def embed_drugs(self, hypergraph: Hypergraph) -> Tensor:
        """Encoder output: one embedding per hyperedge (drug)."""
        return self.encoder.encode_hypergraph(hypergraph)

    def score_pairs(self, embeddings: Tensor | np.ndarray,
                    pairs: np.ndarray) -> Tensor:
        """Decoder-only path: raw logits for ``pairs`` of embedding rows.

        This is the hot path of a serving deployment — once drug embeddings
        are cached, scoring a batch of pairs never touches the encoder.
        """
        if not isinstance(embeddings, Tensor):
            embeddings = Tensor(embeddings)
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        left = F.gather_rows(embeddings, pairs[:, 0])
        right = F.gather_rows(embeddings, pairs[:, 1])
        return self.decoder(left, right)

    def forward(self, hypergraph: Hypergraph, pairs: np.ndarray) -> Tensor:
        """Raw interaction logits for ``pairs`` (indices into hyperedges)."""
        return self.score_pairs(self.embed_drugs(hypergraph), pairs)

    def compile_training(self, hypergraph: Hypergraph, pairs: np.ndarray,
                         labels: np.ndarray) -> tuple[Tape, Tensor]:
        """Record the full-batch training graph as a replayable tape.

        One eager pass of encode → pair scoring → BCE (Eq. 13) is captured;
        every subsequent epoch is ``tape.replay()`` — no re-tracing, no
        re-allocation.  Valid because the hypergraph incidence (and with it
        every segment partition) is static across epochs; only parameter
        values change, and the tape's ops read those in place.

        Returns ``(tape, embeddings)``: ``tape.root`` is the scalar loss and
        ``embeddings`` is the encoder-output node *inside* the tape, whose
        ``.data`` each ``tape.forward()`` refreshes — callers (the trainer's
        validation pass, notably) can score extra pairs against it without a
        second encode.

        The tape freezes the train/eval mode in effect at record time
        (dropout nodes recorded while training re-sample on every replay,
        even after a later ``eval()``); record in the mode you will replay.
        """
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        labels = np.asarray(labels, dtype=np.float64)
        handles: dict[str, Tensor] = {}

        def build() -> Tensor:
            embeddings = self.embed_drugs(hypergraph)
            handles["embeddings"] = embeddings
            logits = self.score_pairs(embeddings, pairs)
            return bce_with_logits(logits, labels)

        tape = Tape.record(build)
        return tape, handles["embeddings"]

    def predict_proba(self, hypergraph: Hypergraph,
                      pairs: np.ndarray) -> np.ndarray:
        """Interaction probabilities σ(γ(q_x, q_y)), Eq. (10)."""
        was_training = self.training
        self.eval()
        try:
            logits = self.forward(hypergraph, pairs)
            return F.sigmoid(logits).numpy().copy()
        finally:
            self.train(was_training)

    def predict_proba_from_embeddings(self, embeddings: Tensor | np.ndarray,
                                      pairs: np.ndarray) -> np.ndarray:
        """σ(γ(q_x, q_y)) over precomputed embedding rows (no encoder pass)."""
        was_training = self.training
        self.eval()
        try:
            logits = self.score_pairs(embeddings, pairs)
            return F.sigmoid(logits).numpy().copy()
        finally:
            self.train(was_training)

    # ------------------------------------------------------------------
    # Screening fast path (split-weight decoder kernels, numpy-only)
    # ------------------------------------------------------------------
    def candidate_projections(self, embeddings: Tensor | np.ndarray
                              ) -> dict[str, np.ndarray]:
        """Precompute the candidate-side decoder operands for a catalog.

        One GEMM per (weights, catalog) version; afterwards screening a
        query against the catalog never re-projects candidate embeddings
        (see :meth:`screen_probs` and ``repro.serving``).
        """
        if isinstance(embeddings, Tensor):
            embeddings = embeddings.data
        return self.decoder.candidate_projections(np.asarray(embeddings))

    def screen_probs(self, query_embeddings: np.ndarray,
                     candidate_projections: dict[str, np.ndarray],
                     symmetric: bool = False) -> np.ndarray:
        """``(num_queries, num_candidates)`` interaction probabilities.

        The single-block reference of the blockwise screening engine: the
        engine's exact mode reproduces this bitwise for every block size,
        shard layout, and query batching (the decoder kernels are built
        from blocking-invariant operations only).
        """
        queries = np.atleast_2d(np.asarray(query_embeddings))
        two_sided = symmetric and not self.decoder.is_symmetric
        query_proj = self.decoder.project_queries(
            queries, sides=("as_left", "as_right") if two_sided
            else ("as_left",))
        logits = self.decoder.score_block(query_proj, candidate_projections)
        probs = F.stable_sigmoid(logits)
        if two_sided:
            reverse = self.decoder.score_block(query_proj,
                                               candidate_projections,
                                               reverse=True)
            probs = 0.5 * (probs + F.stable_sigmoid(reverse))
        return probs
