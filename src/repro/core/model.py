"""The complete HyGNN model: encoder + decoder (paper Sec. III-C)."""

from __future__ import annotations

import numpy as np

from ..hypergraph import DrugHypergraphBuilder, Hypergraph
from ..nn import Module, Tensor
from ..nn import functional as F
from .config import HyGNNConfig
from .decoder import make_decoder
from .encoder import HyGNNEncoder


class HyGNN(Module):
    """Hypergraph neural network for drug-drug interaction prediction."""

    def __init__(self, num_substructures: int, config: HyGNNConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.encoder = HyGNNEncoder(
            num_substructures=num_substructures,
            embed_dim=config.embed_dim,
            hidden_dim=config.hidden_dim,
            rng=rng,
            num_layers=config.num_layers,
            dropout=config.dropout,
        )
        self.decoder = make_decoder(config.decoder, config.hidden_dim,
                                    config.hidden_dim, rng)

    @classmethod
    def for_corpus(cls, smiles_corpus: list[str],
                   config: HyGNNConfig) -> tuple["HyGNN", Hypergraph,
                                                 DrugHypergraphBuilder]:
        """Build the hypergraph for a corpus and a matching model."""
        builder = DrugHypergraphBuilder(method=config.method,
                                        parameter=config.parameter)
        hypergraph = builder.fit_transform(smiles_corpus)
        model = cls(num_substructures=hypergraph.num_nodes, config=config)
        return model, hypergraph, builder

    # ------------------------------------------------------------------
    def embed_drugs(self, hypergraph: Hypergraph) -> Tensor:
        """Encoder output: one embedding per hyperedge (drug)."""
        return self.encoder.encode_hypergraph(hypergraph)

    def score_pairs(self, embeddings: Tensor | np.ndarray,
                    pairs: np.ndarray) -> Tensor:
        """Decoder-only path: raw logits for ``pairs`` of embedding rows.

        This is the hot path of a serving deployment — once drug embeddings
        are cached, scoring a batch of pairs never touches the encoder.
        """
        if not isinstance(embeddings, Tensor):
            embeddings = Tensor(embeddings)
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        left = F.gather_rows(embeddings, pairs[:, 0])
        right = F.gather_rows(embeddings, pairs[:, 1])
        return self.decoder(left, right)

    def forward(self, hypergraph: Hypergraph, pairs: np.ndarray) -> Tensor:
        """Raw interaction logits for ``pairs`` (indices into hyperedges)."""
        return self.score_pairs(self.embed_drugs(hypergraph), pairs)

    def predict_proba(self, hypergraph: Hypergraph,
                      pairs: np.ndarray) -> np.ndarray:
        """Interaction probabilities σ(γ(q_x, q_y)), Eq. (10)."""
        was_training = self.training
        self.eval()
        try:
            logits = self.forward(hypergraph, pairs)
            return F.sigmoid(logits).numpy().copy()
        finally:
            self.train(was_training)

    def predict_proba_from_embeddings(self, embeddings: Tensor | np.ndarray,
                                      pairs: np.ndarray) -> np.ndarray:
        """σ(γ(q_x, q_y)) over precomputed embedding rows (no encoder pass)."""
        was_training = self.training
        self.eval()
        try:
            logits = self.score_pairs(embeddings, pairs)
            return F.sigmoid(logits).numpy().copy()
        finally:
            self.train(was_training)
