"""The two attention levels of the HyGNN hyperedge encoder (Eqs. 4-9).

Both levels operate on the hypergraph *incidence list* — parallel arrays
``(node_ids, edge_ids)`` with one entry per (substructure ∈ drug)
membership — which makes each level a segment-softmax followed by a
segment-sum, i.e. O(nnz · d) rather than O(|V| · |E| · d).

Eq. (6)/(9) score the affinity between a node and a hyperedge as
``β(W_a x ∗ W_b y)`` with ``∗`` the element-wise product and β a LeakyReLU;
the element-wise product is reduced to a scalar by summation (a bilinear
dot-product attention), the standard reading of the paper's notation.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor
from ..nn import functional as F
from ..nn.functional import SegmentPartition


class HyperedgeLevelAttention(Module):
    """Eq. (4)-(6): aggregate hyperedge features into node features.

    ``p_i = α( Σ_{e_j ∋ v_i} Y_ij · W1 q_j )`` with attention coefficients
    ``Y_ij = softmax_j( β(W2 q_j ∗ W3 p_i) )`` normalised over the
    hyperedges ``E_i`` incident to node *i*.
    """

    def __init__(self, node_dim: int, edge_dim: int, out_dim: int,
                 rng: np.random.Generator, attention_dim: int | None = None,
                 negative_slope: float = 0.2):
        super().__init__()
        attention_dim = attention_dim or out_dim
        self.w1 = Linear(edge_dim, out_dim, rng, bias=False)
        self.w2 = Linear(edge_dim, attention_dim, rng, bias=False)
        self.w3 = Linear(node_dim, attention_dim, rng, bias=False)
        self.negative_slope = negative_slope

    def forward(self, node_feats: Tensor, edge_feats: Tensor,
                node_ids: np.ndarray, edge_ids: np.ndarray,
                node_partition: SegmentPartition | None = None) -> Tensor:
        num_nodes = node_feats.shape[0]
        transformed = self.w1(edge_feats)                    # (E, out)
        keys = self.w2(edge_feats)                           # (E, a)
        queries = self.w3(node_feats)                        # (V, a)
        # Eq. (6): score per incidence entry, grouped by node.
        scores = F.leaky_relu(
            (F.gather_rows(keys, edge_ids) * F.gather_rows(queries, node_ids)
             ).sum(axis=1),
            self.negative_slope)
        # Eq. (5): softmax over the hyperedges containing each node.
        attention = F.segment_softmax(scores, node_ids, num_nodes,
                                      partition=node_partition)
        # Eq. (4): attention-weighted sum of transformed hyperedge features.
        messages = (F.gather_rows(transformed, edge_ids)
                    * attention.reshape(-1, 1))
        aggregated = F.segment_sum(messages, node_ids, num_nodes,
                                   partition=node_partition)
        return F.leaky_relu(aggregated, self.negative_slope)


class NodeLevelAttention(Module):
    """Eq. (7)-(9): aggregate node features into hyperedge (drug) features.

    ``q_j = α( Σ_{v_i ∈ e_j} X_ji · W4 p_i )`` with coefficients
    ``X_ji = softmax_i( β(W5 p_i ∗ W6 q_j) )`` normalised over the nodes of
    each hyperedge.
    """

    def __init__(self, node_dim: int, edge_dim: int, out_dim: int,
                 rng: np.random.Generator, attention_dim: int | None = None,
                 negative_slope: float = 0.2):
        super().__init__()
        attention_dim = attention_dim or out_dim
        self.w4 = Linear(node_dim, out_dim, rng, bias=False)
        self.w5 = Linear(node_dim, attention_dim, rng, bias=False)
        self.w6 = Linear(edge_dim, attention_dim, rng, bias=False)
        self.negative_slope = negative_slope

    def forward(self, node_feats: Tensor, edge_feats: Tensor,
                node_ids: np.ndarray, edge_ids: np.ndarray,
                edge_partition: SegmentPartition | None = None) -> Tensor:
        num_edges = edge_feats.shape[0]
        transformed = self.w4(node_feats)                    # (V, out)
        keys = self.w5(node_feats)                           # (V, a)
        queries = self.w6(edge_feats)                        # (E, a)
        # Eq. (9): score per incidence entry, grouped by hyperedge.
        scores = F.leaky_relu(
            (F.gather_rows(keys, node_ids) * F.gather_rows(queries, edge_ids)
             ).sum(axis=1),
            self.negative_slope)
        # Eq. (8): softmax over the nodes inside each hyperedge.
        attention = F.segment_softmax(scores, edge_ids, num_edges,
                                      partition=edge_partition)
        # Eq. (7): attention-weighted sum of transformed node features.
        messages = (F.gather_rows(transformed, node_ids)
                    * attention.reshape(-1, 1))
        aggregated = F.segment_sum(messages, edge_ids, num_edges,
                                   partition=edge_partition)
        return F.leaky_relu(aggregated, self.negative_slope)

    def attention_weights(self, node_feats: Tensor, edge_feats: Tensor,
                          node_ids: np.ndarray, edge_ids: np.ndarray,
                          edge_partition: SegmentPartition | None = None
                          ) -> np.ndarray:
        """Expose X_ji per incidence entry (for substructure importance)."""
        keys = self.w5(node_feats)
        queries = self.w6(edge_feats)
        scores = F.leaky_relu(
            (F.gather_rows(keys, node_ids) * F.gather_rows(queries, edge_ids)
             ).sum(axis=1),
            self.negative_slope)
        return F.segment_softmax(scores, edge_ids, edge_feats.shape[0],
                                 partition=edge_partition).numpy()
