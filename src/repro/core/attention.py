"""The two attention levels of the HyGNN hyperedge encoder (Eqs. 4-9).

Both levels operate on the hypergraph *incidence list* — parallel arrays
``(node_ids, edge_ids)`` with one entry per (substructure ∈ drug)
membership — which makes each level a segment-softmax followed by a
segment-sum, i.e. O(nnz · d) rather than O(|V| · |E| · d).

Eq. (6)/(9) score the affinity between a node and a hyperedge as
``β(W_a x ∗ W_b y)`` with ``∗`` the element-wise product and β a LeakyReLU;
the element-wise product is reduced to a scalar by summation (a bilinear
dot-product attention), the standard reading of the paper's notation.

Fused kernels
-------------
By default both levels run on the fused segment-attention kernels
(:func:`repro.nn.functional.incidence_scores` /
:func:`repro.nn.functional.segment_attend`), which stream the incidence
entries through O(block · d) scratch instead of materialising five
``(nnz, d)`` intermediates per level.  The kernels preserve the unfused
summation order, so outputs are bitwise-identical to the reference
composition; :func:`fused_kernels` toggles the reference path back on for
parity tests and benchmarks.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..nn import Linear, Module, Tensor
from ..nn import functional as F
from ..nn.functional import SegmentPartition

_FUSED_ENABLED = True


def fused_kernels_enabled() -> bool:
    """Whether the attention levels run on the fused kernels (default on)."""
    return _FUSED_ENABLED


@contextmanager
def fused_kernels(enabled: bool):
    """Context manager that switches the fused encoder kernels on or off.

    The unfused path composes the same arithmetic from ``gather_rows`` /
    ``mul`` / ``segment_sum`` and exists as the bitwise reference the fused
    kernels are gated against (tests, ``benchmarks/bench_encoder.py``).
    Tapes capture whichever ops were live at record time, so a recorded
    tape keeps its mode regardless of later toggles.
    """
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FUSED_ENABLED = previous


def _incidence_scores(keys: Tensor, queries: Tensor, key_ids: np.ndarray,
                      query_ids: np.ndarray,
                      key_partition: SegmentPartition | None,
                      query_partition: SegmentPartition | None,
                      negative_slope: float) -> Tensor:
    """Eq. (6)/(9) β-activated scores, fused or the reference composition.

    The fused path folds the LeakyReLU β into the score kernel itself
    (two fewer O(nnz) passes over the score vector); the reference path
    composes the same arithmetic from separate ops — outputs and
    gradients are bitwise-identical either way.
    """
    if _FUSED_ENABLED:
        return F.incidence_scores(keys, queries, key_ids, query_ids,
                                  key_partition=key_partition,
                                  query_partition=query_partition,
                                  negative_slope=negative_slope)
    return F.leaky_relu(
        (F.gather_rows(keys, key_ids)
         * F.gather_rows(queries, query_ids)).sum(axis=1),
        negative_slope)


def _attend(attention: Tensor, transformed: Tensor, value_ids: np.ndarray,
            segment_ids: np.ndarray, num_segments: int,
            partition: SegmentPartition | None,
            value_partition: SegmentPartition | None) -> Tensor:
    """Eq. (4)/(7) attention-weighted aggregation, fused or reference."""
    if _FUSED_ENABLED:
        return F.segment_attend(attention, transformed, value_ids,
                                segment_ids, num_segments,
                                partition=partition,
                                value_partition=value_partition)
    messages = (F.gather_rows(transformed, value_ids)
                * attention.reshape(-1, 1))
    return F.segment_sum(messages, segment_ids, num_segments,
                         partition=partition)


def _head_slices(num_heads: int, attention_dim: int, out_dim: int
                 ) -> list[tuple[slice, slice]]:
    """Per-head (attention-column, output-column) slices."""
    a_width = attention_dim // num_heads
    o_width = out_dim // num_heads
    return [(slice(h * a_width, (h + 1) * a_width),
             slice(h * o_width, (h + 1) * o_width))
            for h in range(num_heads)]


def _check_heads(num_heads: int, attention_dim: int, out_dim: int) -> None:
    if num_heads < 1:
        raise ValueError("num_heads must be positive")
    if num_heads > 1 and (out_dim % num_heads or attention_dim % num_heads):
        raise ValueError(
            f"num_heads={num_heads} must divide out_dim={out_dim} and "
            f"attention_dim={attention_dim}")


class HyperedgeLevelAttention(Module):
    """Eq. (4)-(6): aggregate hyperedge features into node features.

    ``p_i = α( Σ_{e_j ∋ v_i} Y_ij · W1 q_j )`` with attention coefficients
    ``Y_ij = softmax_j( β(W2 q_j ∗ W3 p_i) )`` normalised over the
    hyperedges ``E_i`` incident to node *i*.

    With ``num_heads > 1`` the projection columns are split into equal-width
    heads, each scoring and aggregating independently through the same fused
    kernels (GAT-style multi-head), and the concatenated heads pass through
    a shared output projection.  ``num_heads=1`` is exactly the original
    single-head computation — same parameters, same RNG draws, same ops.
    """

    def __init__(self, node_dim: int, edge_dim: int, out_dim: int,
                 rng: np.random.Generator, attention_dim: int | None = None,
                 negative_slope: float = 0.2, num_heads: int = 1):
        super().__init__()
        attention_dim = attention_dim or out_dim
        _check_heads(num_heads, attention_dim, out_dim)
        self.w1 = Linear(edge_dim, out_dim, rng, bias=False)
        self.w2 = Linear(edge_dim, attention_dim, rng, bias=False)
        self.w3 = Linear(node_dim, attention_dim, rng, bias=False)
        self.negative_slope = negative_slope
        self.num_heads = num_heads
        self.attention_dim = attention_dim
        self.out_dim = out_dim
        # Head-concat projection, drawn only for the multi-head variant so
        # single-head construction consumes exactly the historical RNG
        # stream (bitwise weight parity with earlier checkpoints).
        if num_heads > 1:
            self.head_proj = Linear(out_dim, out_dim, rng, bias=False)

    def forward(self, node_feats: Tensor, edge_feats: Tensor,
                node_ids: np.ndarray, edge_ids: np.ndarray,
                node_partition: SegmentPartition | None = None,
                edge_partition: SegmentPartition | None = None) -> Tensor:
        """``node_partition`` groups incidences by node (the softmax
        segments); ``edge_partition`` groups them by hyperedge and only
        speeds up the backward scatter."""
        num_nodes = node_feats.shape[0]
        transformed = self.w1(edge_feats)                    # (E, out)
        keys = self.w2(edge_feats)                           # (E, a)
        queries = self.w3(node_feats)                        # (V, a)
        if self.num_heads == 1:
            # Eq. (6): β-activated score per incidence, grouped by node.
            scores = _incidence_scores(keys, queries, edge_ids, node_ids,
                                       edge_partition, node_partition,
                                       self.negative_slope)
            # Eq. (5): softmax over the hyperedges containing each node.
            attention = F.segment_softmax(scores, node_ids, num_nodes,
                                          partition=node_partition)
            # Eq. (4): attention-weighted sum of transformed edge features.
            aggregated = _attend(attention, transformed, edge_ids, node_ids,
                                 num_nodes, node_partition, edge_partition)
        else:
            heads = []
            for a_cols, o_cols in _head_slices(self.num_heads,
                                               self.attention_dim,
                                               self.out_dim):
                scores = _incidence_scores(
                    keys[:, a_cols], queries[:, a_cols], edge_ids, node_ids,
                    edge_partition, node_partition, self.negative_slope)
                attention = F.segment_softmax(scores, node_ids, num_nodes,
                                              partition=node_partition)
                heads.append(_attend(attention, transformed[:, o_cols],
                                     edge_ids, node_ids, num_nodes,
                                     node_partition, edge_partition))
            aggregated = self.head_proj(F.concat(heads, axis=1))
        return F.leaky_relu(aggregated, self.negative_slope)


class NodeLevelAttention(Module):
    """Eq. (7)-(9): aggregate node features into hyperedge (drug) features.

    ``q_j = α( Σ_{v_i ∈ e_j} X_ji · W4 p_i )`` with coefficients
    ``X_ji = softmax_i( β(W5 p_i ∗ W6 q_j) )`` normalised over the nodes of
    each hyperedge.
    """

    def __init__(self, node_dim: int, edge_dim: int, out_dim: int,
                 rng: np.random.Generator, attention_dim: int | None = None,
                 negative_slope: float = 0.2, num_heads: int = 1):
        super().__init__()
        attention_dim = attention_dim or out_dim
        _check_heads(num_heads, attention_dim, out_dim)
        self.w4 = Linear(node_dim, out_dim, rng, bias=False)
        self.w5 = Linear(node_dim, attention_dim, rng, bias=False)
        self.w6 = Linear(edge_dim, attention_dim, rng, bias=False)
        self.negative_slope = negative_slope
        self.num_heads = num_heads
        self.attention_dim = attention_dim
        self.out_dim = out_dim
        if num_heads > 1:
            self.head_proj = Linear(out_dim, out_dim, rng, bias=False)

    def _scores(self, node_feats: Tensor, edge_feats: Tensor,
                node_ids: np.ndarray, edge_ids: np.ndarray,
                edge_partition: SegmentPartition | None,
                node_partition: SegmentPartition | None,
                a_cols: slice | None = None) -> Tensor:
        keys = self.w5(node_feats)                           # (V, a)
        queries = self.w6(edge_feats)                        # (E, a)
        if a_cols is not None:
            keys, queries = keys[:, a_cols], queries[:, a_cols]
        # Eq. (9): β-activated score per incidence entry, grouped by edge.
        return _incidence_scores(keys, queries, node_ids, edge_ids,
                                 node_partition, edge_partition,
                                 self.negative_slope)

    def forward(self, node_feats: Tensor, edge_feats: Tensor,
                node_ids: np.ndarray, edge_ids: np.ndarray,
                edge_partition: SegmentPartition | None = None,
                node_partition: SegmentPartition | None = None) -> Tensor:
        """``edge_partition`` groups incidences by hyperedge (the softmax
        segments); ``node_partition`` groups them by node and only speeds
        up the backward scatter."""
        num_edges = edge_feats.shape[0]
        transformed = self.w4(node_feats)                    # (V, out)
        if self.num_heads == 1:
            scores = self._scores(node_feats, edge_feats, node_ids, edge_ids,
                                  edge_partition, node_partition)
            # Eq. (8): softmax over the nodes inside each hyperedge.
            attention = F.segment_softmax(scores, edge_ids, num_edges,
                                          partition=edge_partition)
            # Eq. (7): attention-weighted sum of transformed node features.
            aggregated = _attend(attention, transformed, node_ids, edge_ids,
                                 num_edges, edge_partition, node_partition)
        else:
            heads = []
            for a_cols, o_cols in _head_slices(self.num_heads,
                                               self.attention_dim,
                                               self.out_dim):
                scores = self._scores(node_feats, edge_feats, node_ids,
                                      edge_ids, edge_partition,
                                      node_partition, a_cols=a_cols)
                attention = F.segment_softmax(scores, edge_ids, num_edges,
                                              partition=edge_partition)
                heads.append(_attend(attention, transformed[:, o_cols],
                                     node_ids, edge_ids, num_edges,
                                     edge_partition, node_partition))
            aggregated = self.head_proj(F.concat(heads, axis=1))
        return F.leaky_relu(aggregated, self.negative_slope)

    def attention_weights(self, node_feats: Tensor, edge_feats: Tensor,
                          node_ids: np.ndarray, edge_ids: np.ndarray,
                          edge_partition: SegmentPartition | None = None,
                          node_partition: SegmentPartition | None = None
                          ) -> np.ndarray:
        """Expose X_ji per incidence entry (for substructure importance).

        Multi-head layers report the mean coefficient across heads — one
        importance weight per incidence entry either way.
        """
        num_edges = edge_feats.shape[0]
        if self.num_heads == 1:
            scores = self._scores(node_feats, edge_feats, node_ids, edge_ids,
                                  edge_partition, node_partition)
            return F.segment_softmax(scores, edge_ids, num_edges,
                                     partition=edge_partition).numpy()
        per_head = []
        for a_cols, _ in _head_slices(self.num_heads, self.attention_dim,
                                      self.out_dim):
            scores = self._scores(node_feats, edge_feats, node_ids, edge_ids,
                                  edge_partition, node_partition,
                                  a_cols=a_cols)
            per_head.append(F.segment_softmax(
                scores, edge_ids, num_edges,
                partition=edge_partition).numpy())
        return np.mean(per_head, axis=0)
