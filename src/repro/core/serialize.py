"""Model persistence: save/load a trained HyGNN with its vocabulary.

A deployed DDI screener needs three things to reproduce predictions: the
trained weights, the model configuration, and the substructure vocabulary
the hypergraph builder was fitted with.  This module bundles all three into
a single ``.npz`` archive (numpy-only, no pickle of code objects).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..hypergraph import DrugHypergraphBuilder
from .config import HyGNNConfig
from .model import HyGNN

_FORMAT_VERSION = 1


def save_model(path, model: HyGNN,
               builder: DrugHypergraphBuilder) -> None:
    """Serialise ``model`` + ``builder`` vocabulary to ``path`` (.npz).

    ``path`` may also be an open binary file object (``np.savez``
    supports both), which lets callers embed the archive inside another
    container — the serving context bundle does.
    """
    if isinstance(path, (str, Path)):
        path = Path(path)
    vocab = builder.vocabulary
    tokens = list(vocab)
    indices = np.array([vocab[t] for t in tokens], dtype=np.int64)
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(model.config),
        "builder": {"method": builder.method, "parameter": builder.parameter},
        "num_substructures": model.encoder.num_substructures,
    }
    espf_merges = []
    if builder.method == "espf":
        espf_merges = ["\x00".join(pair) for pair in builder._espf.merges]
    arrays = {f"param:{name}": value
              for name, value in model.state_dict().items()}
    np.savez(path, __meta__=np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        vocab_tokens=np.array(tokens, dtype=object),
        vocab_indices=indices,
        espf_merges=np.array(espf_merges, dtype=object),
        **arrays)


def load_model(path) -> tuple[HyGNN, DrugHypergraphBuilder]:
    """Restore a (model, builder) pair saved by :func:`save_model`.

    ``path`` may be a filesystem path or an open binary file object.
    """
    if isinstance(path, (str, Path)):
        path = Path(path)
    with np.load(path, allow_pickle=True) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta["format_version"] != _FORMAT_VERSION:
            raise ValueError(f"unsupported model format "
                             f"{meta['format_version']}")
        config = HyGNNConfig(**meta["config"])
        model = HyGNN(num_substructures=meta["num_substructures"],
                      config=config)
        state = {name[len("param:"):]: archive[name]
                 for name in archive.files if name.startswith("param:")}
        model.load_state_dict(state)
        model.eval()

        builder = DrugHypergraphBuilder(
            method=meta["builder"]["method"],
            parameter=meta["builder"]["parameter"])
        tokens = archive["vocab_tokens"].tolist()
        indices = archive["vocab_indices"].tolist()
        builder._vocab = {token: int(index)
                          for token, index in zip(tokens, indices)}
        if builder.method == "espf":
            from ..chem.espf import ESPF
            espf = ESPF(frequency_threshold=builder.parameter)
            espf.merges = [tuple(entry.split("\x00"))
                           for entry in archive["espf_merges"].tolist()]
            espf._fitted = True
            builder._espf = espf
        builder._fitted = True
    return model, builder
