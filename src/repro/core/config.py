"""Configuration for HyGNN experiments.

Defaults follow the paper: single encoder layer (Sec. IV-B), k-mer with
k = 9 and the MLP decoder (the best variant, Tables V/VI), Adam training
with BCE loss, early stopping on validation loss.  The paper trains for
2 000 epochs with patience 200; the defaults here are scaled down so the
bundled experiments run on CPU in minutes — pass ``epochs=2000,
patience=200`` to reproduce the paper's schedule exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class HyGNNConfig:
    """Hyper-parameters for the full encoder-decoder model."""

    method: str = "kmer"            # substructure extractor: "espf" | "kmer"
    parameter: int = 9              # ESPF threshold α or k-mer k
    decoder: str = "mlp"            # "mlp" | "dot"
    embed_dim: int = 64             # substructure embedding size
    hidden_dim: int = 64            # drug embedding size d'
    num_layers: int = 1             # encoder layers (paper: 1)
    num_heads: int = 1              # attention heads per level (1 = paper)
    # ``reversible`` swaps the encoder for ReversibleHyGNNEncoder: coupled
    # residual attention halves trained with recompute-in-backward
    # checkpointing, so activation memory stays O(1) in num_layers.
    reversible: bool = False
    dropout: float = 0.1
    learning_rate: float = 5e-3
    weight_decay: float = 1e-3
    epochs: int = 200
    patience: int = 30
    seed: int = 0
    # Training-pipeline knobs (see core.trainer).  ``compiled`` records the
    # epoch's op graph once as a replayable tape; ``batch_size`` streams the
    # pair decoder in shuffled mini-batches against a once-per-epoch corpus
    # encode (gradient accumulation — one optimizer step per epoch), which
    # bounds decoder memory at O(batch) instead of O(all train pairs).
    batch_size: int | None = None
    compiled: bool = True
    # Per-batch optimizer stepping (requires ``batch_size``): the decoder
    # steps on every mini-batch against a snapshot of the encoder's
    # embeddings, and the encoder catches up (one tape backward + step +
    # snapshot refresh) every ``snapshot_staleness`` batches instead of
    # once per epoch.
    step_per_batch: bool = False
    snapshot_staleness: int = 8

    def __post_init__(self):
        if self.method not in ("espf", "kmer"):
            raise ValueError(f"bad method {self.method!r}")
        if self.decoder not in ("mlp", "dot"):
            raise ValueError(f"bad decoder {self.decoder!r}")
        if self.embed_dim < 1 or self.hidden_dim < 1:
            raise ValueError("dims must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.epochs < 1:
            raise ValueError("epochs must be positive")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be positive (or None for "
                             "full-batch training)")
        if self.num_heads < 1:
            raise ValueError("num_heads must be positive")
        head_width = self.hidden_dim // 2 if self.reversible else self.hidden_dim
        if self.num_heads > 1 and head_width % self.num_heads:
            raise ValueError(
                f"num_heads={self.num_heads} must divide the attention "
                f"width {head_width}")
        if self.reversible and self.hidden_dim % 2:
            raise ValueError("reversible=True requires an even hidden_dim "
                             "(coupled residual halves)")
        if self.step_per_batch and self.batch_size is None:
            raise ValueError("step_per_batch requires batch_size")
        if self.snapshot_staleness < 1:
            raise ValueError("snapshot_staleness must be positive")

    def with_updates(self, **kwargs) -> "HyGNNConfig":
        return replace(self, **kwargs)


# Table IV — the grid the paper searches.
PAPER_GRID = {
    "learning_rate": (1e-2, 5e-2, 1e-3, 5e-3),
    "hidden_dim": (32, 64, 128),
    "dropout": (0.1, 0.5),
    "weight_decay": (1e-2, 1e-3),
}
