"""Hyper-parameter grid search (paper Table IV).

The paper selects hyper-parameters "by grid search based on the validation
set" over learning rate, hidden units, dropout and weight decay.  This
module reproduces that procedure; ``paper_grid()`` yields the exact Table IV
space (48 combinations), while experiments default to a pruned grid to stay
CPU-friendly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..data.splits import Split
from ..hypergraph import Hypergraph
from .config import PAPER_GRID, HyGNNConfig
from .model import HyGNN
from .trainer import Trainer


@dataclass(frozen=True)
class SearchResult:
    config: HyGNNConfig
    val_loss: float
    val_roc_auc: float


def grid_configs(base: HyGNNConfig,
                 grid: dict[str, tuple] | None = None) -> list[HyGNNConfig]:
    """Expand a hyper-parameter grid into concrete configs."""
    grid = grid or PAPER_GRID
    keys = sorted(grid)
    configs = []
    for values in itertools.product(*(grid[k] for k in keys)):
        configs.append(base.with_updates(**dict(zip(keys, values))))
    return configs


def paper_grid() -> dict[str, tuple]:
    """The Table IV search space."""
    return dict(PAPER_GRID)


def grid_search(hypergraph: Hypergraph, pairs: np.ndarray,
                labels: np.ndarray, split: Split, base: HyGNNConfig,
                grid: dict[str, tuple] | None = None,
                verbose: bool = False) -> tuple[SearchResult,
                                                list[SearchResult]]:
    """Train each config, rank by validation loss; returns (best, all)."""
    from ..metrics import roc_auc_score

    results: list[SearchResult] = []
    for config in grid_configs(base, grid):
        model = HyGNN(num_substructures=hypergraph.num_nodes, config=config)
        trainer = Trainer(model, config)
        trainer.fit(hypergraph, pairs, labels, split)
        val_pairs = pairs[split.val]
        val_labels = labels[split.val]
        scores = model.predict_proba(hypergraph, val_pairs)
        eps = 1e-12
        clipped = np.clip(scores, eps, 1 - eps)
        val_loss = float(-np.mean(val_labels * np.log(clipped)
                                  + (1 - val_labels) * np.log(1 - clipped)))
        val_auc = float(roc_auc_score(val_labels, scores))
        result = SearchResult(config=config, val_loss=val_loss,
                              val_roc_auc=val_auc)
        results.append(result)
        if verbose:
            print(f"lr={config.learning_rate:g} hidden={config.hidden_dim} "
                  f"dropout={config.dropout} wd={config.weight_decay:g} "
                  f"-> val_loss={val_loss:.4f} val_auc={val_auc:.4f}")
    best = min(results, key=lambda r: r.val_loss)
    return best, results
