"""End-to-end training of HyGNN (paper Sec. III-C3).

The encoder and decoder are optimised jointly with Adam on the binary
cross-entropy loss of Eq. (13).  Early stopping monitors validation loss
(paper: stop after 200 epochs without improvement); the best-validation
weights are restored before returning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.splits import Split
from ..hypergraph import Hypergraph
from ..metrics import EvaluationSummary
from ..nn import Adam, bce_with_logits
from .config import HyGNNConfig
from .model import HyGNN


@dataclass
class TrainingHistory:
    """Per-epoch losses plus the early-stopping outcome."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


class Trainer:
    """Full-batch trainer for HyGNN models."""

    def __init__(self, model: HyGNN, config: HyGNNConfig | None = None):
        self.model = model
        self.config = config or model.config
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate,
                              weight_decay=self.config.weight_decay)

    def _loss(self, hypergraph: Hypergraph, pairs: np.ndarray,
              labels: np.ndarray) -> float:
        was_training = self.model.training
        self.model.eval()
        try:
            logits = self.model(hypergraph, pairs)
            return bce_with_logits(logits, labels).item()
        finally:
            self.model.train(was_training)

    def fit(self, hypergraph: Hypergraph, pairs: np.ndarray,
            labels: np.ndarray, split: Split,
            verbose: bool = False) -> TrainingHistory:
        """Train on ``split.train``, early-stop on ``split.val``."""
        pairs = np.asarray(pairs, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.float64)
        train_pairs, train_labels = pairs[split.train], labels[split.train]
        val_pairs, val_labels = pairs[split.val], labels[split.val]

        history = TrainingHistory()
        best_val = np.inf
        best_state: dict | None = None
        patience_left = self.config.patience

        self.model.train()
        for epoch in range(self.config.epochs):
            self.optimizer.zero_grad()
            logits = self.model(hypergraph, train_pairs)
            loss = bce_with_logits(logits, train_labels)
            loss.backward()
            self.optimizer.step()
            history.train_loss.append(loss.item())

            val_loss = self._loss(hypergraph, val_pairs, val_labels)
            history.val_loss.append(val_loss)
            if val_loss < best_val - 1e-6:
                best_val = val_loss
                best_state = self.model.state_dict()
                history.best_epoch = epoch
                patience_left = self.config.patience
            else:
                patience_left -= 1
                if patience_left <= 0:
                    history.stopped_early = True
                    break
            if verbose and epoch % 20 == 0:
                print(f"epoch {epoch:4d}  train {loss.item():.4f}  "
                      f"val {val_loss:.4f}")

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return history

    def evaluate(self, hypergraph: Hypergraph, pairs: np.ndarray,
                 labels: np.ndarray) -> EvaluationSummary:
        scores = self.model.predict_proba(hypergraph, pairs)
        return EvaluationSummary.from_scores(labels, scores)


def train_hygnn(smiles_corpus: list[str], pairs: np.ndarray,
                labels: np.ndarray, split: Split,
                config: HyGNNConfig | None = None
                ) -> tuple[HyGNN, Hypergraph, TrainingHistory,
                           EvaluationSummary]:
    """Convenience one-call pipeline: hypergraph → train → test metrics."""
    config = config or HyGNNConfig()
    model, hypergraph, _ = HyGNN.for_corpus(smiles_corpus, config)
    trainer = Trainer(model, config)
    history = trainer.fit(hypergraph, pairs, labels, split)
    summary = trainer.evaluate(hypergraph, pairs[split.test],
                               labels[split.test])
    return model, hypergraph, history, summary
