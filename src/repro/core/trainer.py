"""End-to-end training of HyGNN (paper Sec. III-C3).

The encoder and decoder are optimised jointly with Adam on the binary
cross-entropy loss of Eq. (13).  Early stopping monitors validation loss
(paper: stop after 200 epochs without improvement); the best-validation
weights are restored before returning.

Three training pipelines share that loop:

- **compiled full-batch** (default): the epoch graph — encode, pair scoring,
  BCE — is recorded *once* as a :class:`repro.nn.Tape` and every epoch is a
  tape replay plus an Adam step.  The hypergraph incidence is static across
  epochs, so nothing about the graph ever changes except parameter values.
  The validation loss is scored from the epoch's already-computed embedding
  matrix through a second, decoder-only tape instead of re-encoding the
  whole corpus; with ``dropout=0`` the loss trajectories and final weights
  are *bitwise identical* to the eager path (with dropout the train
  trajectory still matches bitwise, while validation becomes a cached,
  training-mode estimate — the paper's eval-mode number is available via
  :meth:`Trainer._loss`).
- **compiled mini-batch** (``config.batch_size``): the corpus is encoded
  once per epoch (encoder tape), then shuffled pair batches stream through
  ``score_pairs`` against a detached embedding leaf.  Per-batch gradients
  are scaled by batch weight and accumulated — into the decoder directly
  and into the embedding leaf, which the encoder tape then back-propagates
  in one pass — so the single Adam step per epoch applies exactly the
  full-batch mean-BCE gradient (up to float summation order) while decoder
  memory stays O(batch) instead of O(all train pairs).
- **per-batch stepping** (``config.step_per_batch``, requires
  ``batch_size``): the decoder takes a full Adam step on every mini-batch
  against a *snapshot* of the embeddings, while encoder gradients accumulate
  in the embedding leaf; every ``config.snapshot_staleness`` batches the
  encoder catches up with one tape backward + Adam step + snapshot refresh.
  Pairs with the reversible encoder (``config.reversible``), whose taped
  backward recomputes activations block by block — deep-encoder epochs then
  run at O(1) activation memory in depth
  (``benchmarks/bench_training_memory.py``).
- **eager** (``compiled=False``): the original closure-graph loop, kept as
  the reference implementation and the benchmark baseline
  (``benchmarks/bench_training.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.splits import Split
from ..hypergraph import Hypergraph
from ..metrics import EvaluationSummary
from ..nn import Adam, Tape, Tensor, bce_with_logits
from .config import HyGNNConfig
from .model import HyGNN


@dataclass
class TrainingHistory:
    """Per-epoch losses plus the early-stopping outcome."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


class _EarlyStopping:
    """Shared best-val tracking so the compiled and eager loops cannot
    diverge on selection semantics (the benchmark gates on their parity)."""

    def __init__(self, model: HyGNN, patience: int):
        self.model = model
        self.patience = patience
        self.patience_left = patience
        self.best_val = np.inf
        self.best_state: dict | None = None

    def update(self, epoch: int, val_loss: float,
               history: TrainingHistory) -> bool:
        """Record ``val_loss``; returns True when training should stop."""
        history.val_loss.append(val_loss)
        if val_loss < self.best_val - 1e-6:
            self.best_val = val_loss
            self.best_state = self.model.state_dict()
            history.best_epoch = epoch
            self.patience_left = self.patience
            return False
        self.patience_left -= 1
        if self.patience_left <= 0:
            history.stopped_early = True
            return True
        return False

    def restore_best(self) -> None:
        if self.best_state is not None:
            self.model.load_state_dict(self.best_state)


class Trainer:
    """Compiled (tape-replay) trainer for HyGNN models.

    ``compiled=False`` falls back to the eager closure-graph loop; the two
    produce bitwise-identical training trajectories (see module docstring).
    """

    def __init__(self, model: HyGNN, config: HyGNNConfig | None = None,
                 compiled: bool | None = None):
        self.model = model
        self.config = config or model.config
        self.compiled = self.config.compiled if compiled is None else compiled
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate,
                              weight_decay=self.config.weight_decay)

    def _loss(self, hypergraph: Hypergraph, pairs: np.ndarray,
              labels: np.ndarray) -> float:
        """Standalone eval-mode loss (full encode); used by external callers.

        ``fit`` no longer calls this per epoch — the compiled pipeline scores
        validation pairs from the epoch's cached embeddings instead of paying
        a second corpus encode.
        """
        was_training = self.model.training
        self.model.eval()
        try:
            logits = self.model(hypergraph, pairs)
            return bce_with_logits(logits, labels).item()
        finally:
            self.model.train(was_training)

    def fit(self, hypergraph: Hypergraph, pairs: np.ndarray,
            labels: np.ndarray, split: Split,
            verbose: bool = False) -> TrainingHistory:
        """Train on ``split.train``, early-stop on ``split.val``."""
        pairs = np.asarray(pairs, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.float64)
        train_pairs, train_labels = pairs[split.train], labels[split.train]
        val_pairs, val_labels = pairs[split.val], labels[split.val]
        if self.compiled:
            return self._fit_compiled(hypergraph, train_pairs, train_labels,
                                      val_pairs, val_labels, verbose)
        if self.config.batch_size is not None:
            raise ValueError(
                "batch_size requires the compiled pipeline; the eager "
                "reference loop is full-batch only")
        return self._fit_eager(hypergraph, train_pairs, train_labels,
                               val_pairs, val_labels, verbose)

    # ------------------------------------------------------------------
    # Compiled pipeline: tape replay + cached-embedding validation
    # ------------------------------------------------------------------
    def _fit_compiled(self, hypergraph: Hypergraph, train_pairs: np.ndarray,
                      train_labels: np.ndarray, val_pairs: np.ndarray,
                      val_labels: np.ndarray, verbose: bool
                      ) -> TrainingHistory:
        config = self.config
        history = TrainingHistory()
        stopper = _EarlyStopping(self.model, config.patience)

        self.model.train()
        batch_size = config.batch_size
        step_per_batch = config.step_per_batch
        dec_opt = enc_opt = None
        if batch_size is None:
            # Record the whole epoch graph (this is also epoch 0's forward).
            tape, embeddings = self.model.compile_training(
                hypergraph, train_pairs, train_labels)
            batch_rng = emb_leaf = None
        else:
            tape = self.model.encoder.compile_encode(hypergraph)
            embeddings = tape.root
            emb_leaf = Tensor(embeddings.data, requires_grad=True)
            batch_rng = np.random.default_rng(config.seed + 1)
            if step_per_batch:
                # Split optimizers: the decoder steps on every batch, the
                # encoder catches up at the staleness bound.
                dec_opt = Adam(self.model.decoder.parameters(),
                               lr=config.learning_rate,
                               weight_decay=config.weight_decay)
                enc_opt = Adam(self.model.encoder.parameters(),
                               lr=config.learning_rate,
                               weight_decay=config.weight_decay)

        # Validation scores pairs from the epoch's cached embeddings via a
        # decoder-only tape — `val_leaf` is rebound to the fresh embedding
        # matrix each epoch; no second corpus encode ever runs.
        val_leaf = Tensor(embeddings.data, requires_grad=True)
        val_tape = Tape.record(
            lambda: bce_with_logits(
                self.model.score_pairs(val_leaf, val_pairs), val_labels))

        for epoch in range(config.epochs):
            if step_per_batch:
                # Per-batch stepping refreshes the snapshot itself at each
                # staleness sync (the last one covers validation below).
                train_loss = self._perbatch_epoch(
                    tape, emb_leaf, train_pairs, train_labels,
                    batch_rng, batch_size, dec_opt, enc_opt,
                    config.snapshot_staleness)
            else:
                self.optimizer.zero_grad()
                if batch_size is None:
                    train_loss = tape.root.item()
                    tape.backward()
                else:
                    train_loss = self._minibatch_epoch(
                        tape, emb_leaf, train_pairs, train_labels,
                        batch_rng, batch_size)
                self.optimizer.step()
                # The next epoch's forward doubles as the post-step
                # embedding refresh the validation loss needs: one encode
                # per epoch total (the eager loop pays two).
                tape.forward()
            history.train_loss.append(train_loss)
            val_loss = val_tape.forward({val_leaf: embeddings.data}).item()
            if stopper.update(epoch, val_loss, history):
                break
            if verbose and epoch % 20 == 0:
                print(f"epoch {epoch:4d}  train {train_loss:.4f}  "
                      f"val {val_loss:.4f}")

        stopper.restore_best()
        self.model.eval()
        return history

    def _minibatch_epoch(self, encoder_tape: Tape, emb_leaf: Tensor,
                         train_pairs: np.ndarray, train_labels: np.ndarray,
                         batch_rng: np.random.Generator,
                         batch_size: int) -> float:
        """One gradient-accumulation epoch over shuffled pair batches.

        Decoder batches score against a detached embedding leaf; each batch
        loss back-propagates with weight ``len(batch)/n`` so the accumulated
        gradients (decoder directly, encoder through one tape backward over
        the summed embedding gradient) equal the full-batch mean-BCE
        gradient exactly, up to float summation order.
        """
        emb_leaf.data = encoder_tape.root.data
        emb_leaf.grad = None
        n = len(train_pairs)
        order = batch_rng.permutation(n)
        total = 0.0
        for start in range(0, n, batch_size):
            chunk = order[start:start + batch_size]
            logits = self.model.score_pairs(emb_leaf, train_pairs[chunk])
            batch_loss = bce_with_logits(logits, train_labels[chunk])
            batch_loss.backward(np.asarray(len(chunk) / n))
            total += batch_loss.item() * len(chunk)
        if emb_leaf.grad is not None:
            encoder_tape.backward(grad=emb_leaf.grad)
        return total / max(n, 1)

    def _perbatch_epoch(self, encoder_tape: Tape, emb_leaf: Tensor,
                        train_pairs: np.ndarray, train_labels: np.ndarray,
                        batch_rng: np.random.Generator, batch_size: int,
                        dec_opt: Adam, enc_opt: Adam,
                        staleness: int) -> float:
        """One epoch of per-batch stepping against a bounded-staleness snapshot.

        Every shuffled mini-batch takes a full decoder Adam step against the
        current embedding snapshot (``emb_leaf``), while the encoder-side
        gradients accumulate in the leaf.  Every ``staleness`` batches the
        encoder catches up: one tape backward over the accumulated embedding
        gradient, one encoder Adam step, and a snapshot refresh (a fresh
        corpus encode).  The decoder therefore sees at most
        ``staleness``-batch-old embeddings, and with the reversible encoder
        the tape backward runs at O(1) activation memory in depth.
        """
        emb_leaf.data = encoder_tape.root.data
        emb_leaf.grad = None
        n = len(train_pairs)
        order = batch_rng.permutation(n)
        total = 0.0
        since_sync = 0
        for start in range(0, n, batch_size):
            chunk = order[start:start + batch_size]
            dec_opt.zero_grad()
            logits = self.model.score_pairs(emb_leaf, train_pairs[chunk])
            batch_loss = bce_with_logits(logits, train_labels[chunk])
            batch_loss.backward()
            dec_opt.step()
            total += batch_loss.item() * len(chunk)
            since_sync += 1
            if since_sync >= staleness:
                self._sync_encoder(encoder_tape, emb_leaf, enc_opt)
                since_sync = 0
        if since_sync:
            self._sync_encoder(encoder_tape, emb_leaf, enc_opt)
        return total / max(n, 1)

    def _sync_encoder(self, encoder_tape: Tape, emb_leaf: Tensor,
                      enc_opt: Adam) -> None:
        """Flush accumulated embedding gradients into one encoder step and
        refresh the snapshot the decoder batches score against."""
        if emb_leaf.grad is None:
            return
        encoder_tape.backward(grad=emb_leaf.grad)
        enc_opt.step()
        encoder_tape.forward()
        emb_leaf.data = encoder_tape.root.data
        emb_leaf.grad = None

    # ------------------------------------------------------------------
    # Eager reference pipeline (the original closure-graph loop)
    # ------------------------------------------------------------------
    def _fit_eager(self, hypergraph: Hypergraph, train_pairs: np.ndarray,
                   train_labels: np.ndarray, val_pairs: np.ndarray,
                   val_labels: np.ndarray, verbose: bool) -> TrainingHistory:
        history = TrainingHistory()
        stopper = _EarlyStopping(self.model, self.config.patience)

        self.model.train()
        for epoch in range(self.config.epochs):
            self.optimizer.zero_grad()
            logits = self.model(hypergraph, train_pairs)
            loss = bce_with_logits(logits, train_labels)
            loss.backward()
            self.optimizer.step()
            history.train_loss.append(loss.item())

            val_loss = self._loss(hypergraph, val_pairs, val_labels)
            if stopper.update(epoch, val_loss, history):
                break
            if verbose and epoch % 20 == 0:
                print(f"epoch {epoch:4d}  train {loss.item():.4f}  "
                      f"val {val_loss:.4f}")

        stopper.restore_best()
        self.model.eval()
        return history

    def evaluate(self, hypergraph: Hypergraph, pairs: np.ndarray,
                 labels: np.ndarray) -> EvaluationSummary:
        scores = self.model.predict_proba(hypergraph, pairs)
        return EvaluationSummary.from_scores(labels, scores)


def train_hygnn(smiles_corpus: list[str], pairs: np.ndarray,
                labels: np.ndarray, split: Split,
                config: HyGNNConfig | None = None
                ) -> tuple[HyGNN, Hypergraph, TrainingHistory,
                           EvaluationSummary]:
    """Convenience one-call pipeline: hypergraph → train → test metrics."""
    config = config or HyGNNConfig()
    model, hypergraph, _ = HyGNN.for_corpus(smiles_corpus, config)
    trainer = Trainer(model, config)
    history = trainer.fit(hypergraph, pairs, labels, split)
    summary = trainer.evaluate(hypergraph, pairs[split.test],
                               labels[split.test])
    return model, hypergraph, history, summary
