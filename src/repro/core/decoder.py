"""HyGNN decoders (paper Sec. III-C2, Eqs. 10-12).

Both decoders map a pair of drug embeddings to a raw interaction score
(logit); the sigmoid lives in the loss / prediction step, matching the
paper's ``σ(γ(q_x, q_y))`` formulation.

Besides the autograd ``forward`` used in training, each decoder exposes a
numpy-only *screening kernel* for the serving engine, built around a weight
split of the first MLP layer:

    f1(x ∥ y) = x @ W_q + y @ W_c + b

so the candidate-side projection ``E @ W_c`` (and, for symmetric screening,
``E @ W_q``) can be computed **once** per (weights, catalog) version and
reused by every query.  The second layer is folded into the precompute as
well, via two exact identities (multiplication by a constant is monotone,
so it commutes with max/min even after rounding):

    γ(q, c) = Σ_j w_j·relu(qˡ_j + C_j) + b₂
            = (qˡ·w + b₂) + Σ_j w_j·max(C_j, -qˡ_j)
            = const(q)    + Σ_j [ max(D_j, g_j)  if w_j >= 0
                                  min(D_j, g_j)  otherwise ]

with ``D = C·w`` precomputed per catalog (columns reordered so the
``w_j >= 0`` block is contiguous) and ``g = -(qˡ·w)`` per query.  Per
candidate block that is **one** elementwise max/min pass plus one row-sum
— down from GEMM + bias + ReLU + weighted sum in the naive path.

The kernel is deliberately composed only of *blocking-invariant* numpy
operations (elementwise broadcast add / ReLU / multiply, and per-row
pairwise-sum reductions): every output element depends solely on its own
row's inputs, computed identically for any block size, shard layout, or
query-batch size.  That is what lets the engine guarantee bitwise-identical
exact-mode scores across all execution plans.  (A ``(B, h) @ (h, 1)`` GEMV
is *not* row-blocking-invariant under this BLAS, so ``f2`` is applied as
``(hidden * w2).sum(-1)`` instead of a matmul; query projections are
likewise computed one row at a time so batched and single-query screening
agree bitwise.)

Block-sized scratch buffers are cached per decoder and reused across
blocks (half-MB allocations are mmap-backed and page-fault on every reuse
otherwise), which makes ``score_block`` non-reentrant: one screening call
at a time per decoder instance, like every other module here.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor
from ..nn import functional as F

_SCRATCH_CACHE_LIMIT = 8
# Scoring kernels tile candidate rows so per-tile scratch stays ~256 KB
# (L2-resident); the tile size adapts to query-batch width.
_KERNEL_TILE_ELEMENTS = 32768
# The float32 BLAS-reduction path amortises its GEMV dispatch over much
# larger tiles (~4 MB of float32 scratch) — the ones-vector product streams
# rather than re-reads, so L2 residency matters less than loop overhead.
_KERNEL_TILE_ELEMENTS_BLAS = 1048576


class _ScratchMixin:
    """Reusable per-(shape, dtype) numpy scratch buffers for the kernels."""

    def _scratch(self, shape: tuple[int, ...],
                 dtype: np.dtype = np.float64) -> np.ndarray:
        cache = self.__dict__.setdefault("_scratch_bufs", {})
        key = (shape, np.dtype(dtype))
        buffer = cache.get(key)
        if buffer is None:
            if len(cache) >= _SCRATCH_CACHE_LIMIT:
                cache.clear()
            buffer = np.empty(shape, dtype=dtype)
            cache[key] = buffer
        return buffer


def _serving_dtype(array: np.ndarray) -> np.dtype:
    """The screening dtype an operand implies: its own if floating, else f64."""
    if np.issubdtype(array.dtype, np.floating):
        return array.dtype
    return np.dtype(np.float64)


class MLPDecoder(_ScratchMixin, Module):
    """Eq. (11): ``γ(q_x, q_y) = f2(f1(q_x ∥ q_y))``.

    Two affine layers with a ReLU between them (the paper uses ReLU on the
    decoder side, Sec. IV-B); output is a scalar logit per pair.
    """

    # Screening-engine traits: γ(x, y) != γ(y, x).  No *exact* inner-product
    # form exists for the MLP scorer, but a low-rank sketch of the candidate
    # projections (see sketch_factors) gives an approximate prefilter whose
    # shortlist the engine exact-reranks; the sketch must be materialised
    # per (weights, catalog) version before approx screening works.
    is_symmetric = False
    supports_prefilter = True
    needs_sketch = True

    def __init__(self, embed_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.f1 = Linear(2 * embed_dim, hidden_dim, rng)
        self.f2 = Linear(hidden_dim, 1, rng)

    def forward(self, left: Tensor, right: Tensor) -> Tensor:
        pair = F.concat([left, right], axis=1)
        hidden = F.relu(self.f1(pair))
        return self.f2(hidden).reshape(len(left))

    # ------------------------------------------------------------------
    # Serving fast path (numpy-only, no autograd)
    # ------------------------------------------------------------------
    def split_f1(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(W_q, W_c, b)`` such that ``f1(x ∥ y) = x@W_q + y@W_c + b``."""
        weight = self.f1.weight.data
        embed_dim = self.f1.in_features // 2
        return weight[:embed_dim], weight[embed_dim:], self.f1.bias.data

    def _column_order(self) -> tuple[np.ndarray, int]:
        """Column permutation putting ``w2_j >= 0`` first, and the split point.

        Derived from the live weights on every call so it can never go
        stale; the candidate projections and query projections both apply
        it, keeping max/min branch membership consistent.
        """
        w2 = self.f2.weight.data[:, 0]
        nonneg = w2 >= 0
        order = np.argsort(~nonneg, kind="stable")
        return order, int(nonneg.sum())

    def candidate_projections(self, embeddings: np.ndarray
                              ) -> dict[str, np.ndarray]:
        """Per-catalog precompute: ``D = (E @ W)·w2``, split by sign of w2.

        The ``w2_j >= 0`` columns (scored with ``max``) and ``w2_j < 0``
        columns (scored with ``min``) are stored as two *contiguous*
        matrices — numpy's elementwise loops are ~2x faster on contiguous
        blocks than on column-sliced views.  ``as_right`` serves the usual
        query-left orientation γ(query, cand); ``as_left`` serves the
        reversed orientation γ(cand, query) that symmetric screening
        averages in.
        """
        embeddings = np.asarray(embeddings)
        dtype = _serving_dtype(embeddings)
        w_query, w_cand, _ = self.split_f1()
        # Weights are cast to the embeddings' dtype (a no-op for float64)
        # so a float32 catalog yields float32 projections instead of the
        # GEMM silently promoting to float64.
        w2 = self.f2.weight.data[:, 0].astype(dtype, copy=False)
        order, split = self._column_order()

        def sides(weight):
            scaled = embeddings @ weight.astype(dtype, copy=False) * w2
            return (np.ascontiguousarray(scaled[:, order[:split]]),
                    np.ascontiguousarray(scaled[:, order[split:]]))

        left_max, left_min = sides(w_query)
        right_max, right_min = sides(w_cand)
        return {"as_left_max": left_max, "as_left_min": left_min,
                "as_right_max": right_max, "as_right_min": right_min}

    def project_queries(self, queries: np.ndarray,
                        sides: tuple[str, ...] = ("as_left", "as_right")
                        ) -> dict[str, dict[str, np.ndarray]]:
        """Query-side operands per orientation: ``g = -(qˡ·w2)`` + ``const``.

        Rows are projected individually so a query scored inside a batch
        gets bitwise the same projection as the same query screened alone
        (this BLAS dispatches 1-row and n-row GEMMs differently).
        ``sides`` limits the work to the orientations a caller will score
        (forward-only screens never need ``as_right``).
        """
        queries = np.atleast_2d(np.asarray(queries))
        dtype = _serving_dtype(queries)
        w_query, w_cand, bias = self.split_f1()
        w2 = self.f2.weight.data[:, 0].astype(dtype, copy=False)
        bias = bias.astype(dtype, copy=False)
        bias2 = dtype.type(self.f2.bias.data[0])
        order, split = self._column_order()
        weights = {"as_left": w_query.astype(dtype, copy=False),
                   "as_right": w_cand.astype(dtype, copy=False)}

        def side(weight):
            if len(queries) == 1:
                hidden = queries @ weight + bias
            else:
                hidden = np.concatenate([row[None, :] @ weight
                                         for row in queries], axis=0) + bias
            scaled = hidden * w2
            flipped = -scaled
            return {"const": scaled.sum(axis=1) + bias2,
                    "g_max": np.ascontiguousarray(flipped[:, order[:split]]),
                    "g_min": np.ascontiguousarray(flipped[:, order[split:]])}

        return {name: side(weights[name]) for name in sides}

    def score_block(self, query_proj: dict[str, dict[str, np.ndarray]],
                    cand_proj: dict[str, np.ndarray],
                    reverse: bool = False) -> np.ndarray:
        """``(num_queries, block)`` logits from precomputed projections.

        One max/min pass + one row-sum per block (see the module docstring
        for the exact w2-folding identity).  ``reverse=True`` scores
        γ(candidate, query) — the other argument order — for symmetric
        screening.
        """
        orient = "as_right" if reverse else "as_left"
        cand_orient = "as_left" if reverse else "as_right"
        query = query_proj[orient]
        cand_max = cand_proj[f"{cand_orient}_max"]
        cand_min = cand_proj[f"{cand_orient}_min"]
        g_max, g_min, const = query["g_max"], query["g_min"], query["const"]
        num_queries, num_cands = len(const), len(cand_max)
        dtype = np.result_type(_serving_dtype(const), _serving_dtype(cand_max))
        out = np.empty((num_queries, num_cands), dtype=dtype)
        out[:] = const[:, None]
        # Row-tile so the folded scratch stays cache-resident, then fold
        # each sign block with one contiguous max/min pass and reduce it
        # immediately.  Tiling is invisible to the result — every op is
        # per-element / per-row.
        #
        # The reduction is dtype-gated: float64 keeps numpy's pairwise
        # ``sum`` (bitwise-stable with the training path and every prior
        # release), while float32 — the low-precision serving tier, which
        # only promises rank agreement, not bit equality with float64 —
        # reduces via a BLAS ones-GEMV over much larger tiles.  sgemv runs
        # ~2x faster than the pairwise reduce at these widths, which is
        # where most of the float32 tier's speedup comes from.
        blas_reduce = dtype == np.dtype(np.float32)
        budget = (_KERNEL_TILE_ELEMENTS_BLAS if blas_reduce
                  else _KERNEL_TILE_ELEMENTS)
        for cand_part, g_part, ufunc in ((cand_max, g_max, np.maximum),
                                         (cand_min, g_min, np.minimum)):
            width = cand_part.shape[1]
            if not width:
                continue
            ones = np.ones(width, dtype=dtype) if blas_reduce else None
            tile = max(16, budget // max(num_queries * width, 1))
            rows = min(tile, num_cands) or 1
            if num_queries == 1:
                # 2D tiles: numpy's elementwise loops are markedly faster
                # on 2D arrays than on broadcast 3D ones; bitwise equal.
                g_row = g_part[0]
                scratch = self._scratch((rows, width), dtype)
                for start in range(0, num_cands, tile):
                    block = cand_part[start:start + tile]
                    folded = scratch[:len(block)]
                    ufunc(block, g_row, out=folded)
                    if blas_reduce:
                        out[0, start:start + len(block)] += folded @ ones
                    else:
                        out[0, start:start + len(block)] += \
                            folded.sum(axis=-1)
            else:
                scratch = self._scratch((num_queries, rows, width), dtype)
                for start in range(0, num_cands, tile):
                    block = cand_part[start:start + tile]
                    folded = scratch[:, :len(block)]
                    ufunc(block[None, :, :], g_part[:, None, :], out=folded)
                    if blas_reduce:
                        out[:, start:start + len(block)] += folded @ ones
                    else:
                        out[:, start:start + len(block)] += \
                            folded.sum(axis=-1)
        return out

    def score_rows(self, query_proj: dict[str, dict[str, np.ndarray]],
                   cand_rows: dict[str, np.ndarray],
                   reverse: bool = False) -> np.ndarray:
        """``(Q, K)`` logits where query ``qi`` scores its own ``K`` rows.

        The gather-rerank kernel for approximate screening: ``cand_rows``
        holds per-query candidate operands of shape ``(Q, K, width)``
        gathered from the per-query shortlists, so one vectorised pass
        replaces ``Q`` single-query :meth:`score_block` calls.  The fold
        and the reduction mirror ``score_block`` exactly — same
        accumulation order, pairwise ``sum`` for float64, ones-GEMV for
        float32 — so reranked probabilities are bitwise what exact mode
        reports for the same pairs.
        """
        orient = "as_right" if reverse else "as_left"
        cand_orient = "as_left" if reverse else "as_right"
        query = query_proj[orient]
        cand_max = cand_rows[f"{cand_orient}_max"]
        cand_min = cand_rows[f"{cand_orient}_min"]
        g_max, g_min, const = query["g_max"], query["g_min"], query["const"]
        dtype = np.result_type(_serving_dtype(const),
                               _serving_dtype(cand_max))
        num_queries, num_rows = cand_max.shape[:2]
        out = np.empty((num_queries, num_rows), dtype=dtype)
        out[:] = const[:, None]
        blas_reduce = dtype == np.dtype(np.float32)
        for cand_part, g_part, ufunc in ((cand_max, g_max, np.maximum),
                                         (cand_min, g_min, np.minimum)):
            width = cand_part.shape[2]
            if not width:
                continue
            folded = ufunc(cand_part, g_part[:, None, :])
            if blas_reduce:
                out += folded @ np.ones(width, dtype=dtype)
            else:
                out += folded.sum(axis=-1)
        return out

    # ------------------------------------------------------------------
    # Approximate prefilter: low-rank sketch of the candidate projections
    # ------------------------------------------------------------------
    #
    # The exact kernel's candidate-dependent term is
    #     Σ_j max(D_j, g_j)  +  Σ_j min(D_j, g_j)
    # over the sign-split columns of D = (E @ W_c)·w2.  Linearising each
    # max/min in D around the catalog column statistics gives the surrogate
    #     Σ_j s_j(q)·(D_j − μ_j) + terms independent of the candidate,
    # where s_j(q) ∈ [0, 1] is the smoothed probability that the
    # candidate-dependent branch is live — the max branch (D_j > g_j) for
    # max columns, the min branch (D_j < g_j) for min columns — estimated
    # from the column mean μ_j and spread σ_j via a logistic CDF.  (A hard
    # 0/1 indicator at μ loses several recall points at the shortlist
    # boundary; the soft slope costs the same single GEMM.)  Ranking
    # candidates per query only needs the candidate-dependent part, and
    # projecting (D − μ) onto the top principal components V turns it
    # into one rank-r GEMM:
    #     scorẽ(q, c) = (Vᵀ s(q)) · sketch(c),   sketch(c) = (D_c − μ) @ V.
    # The sketch is a *ranking* surrogate only — approx mode always
    # exact-reranks the oversampled shortlist with score_block.

    def sketch_factors(self, projections: dict[str, np.ndarray],
                       rank: int | None = None) -> dict[str, np.ndarray]:
        """``{"mean", "std", "components"}`` from catalog candidate projections.

        Computed once per (weights, catalog) version via an eigendecomposition
        of the h×h covariance of ``D = [as_right_max ∥ as_right_min]`` —
        O(N·h²) BLAS + O(h³), independent of catalog size beyond the GEMM.
        """
        cand = np.concatenate([projections["as_right_max"],
                               projections["as_right_min"]], axis=1)
        width = cand.shape[1]
        if rank is None:
            # Half the operand width keeps ~all of the skewed real-catalog
            # spectrum (raising it further adds noisy directions and costs
            # recall); the prefilter GEMM stays 2x slimmer than exact.
            rank = max(8, width // 2)
        rank = max(1, min(int(rank), width))
        mean = cand.mean(axis=0)
        centered = cand - mean
        std = centered.std(axis=0)
        std[std == 0.0] = 1.0  # constant columns: any slope scale works
        cov = (centered.T @ centered).astype(np.float64, copy=False)
        _, eigvecs = np.linalg.eigh(cov)
        components = np.ascontiguousarray(eigvecs[:, ::-1][:, :rank])
        return {"mean": mean, "std": std,
                "components": components.astype(cand.dtype, copy=False)}

    def sketch_candidates(self, projections: dict[str, np.ndarray],
                          factors: dict[str, np.ndarray]) -> np.ndarray:
        """``(N, rank)`` sketch rows: ``(D − μ) @ V``, one GEMM."""
        cand = np.concatenate([projections["as_right_max"],
                               projections["as_right_min"]], axis=1)
        return (cand - factors["mean"]) @ factors["components"]

    def sketch_queries(self, query_proj: dict[str, dict[str, np.ndarray]],
                       factors: dict[str, np.ndarray]) -> np.ndarray:
        """``(num_queries, rank)`` query operands ``Vᵀ s(q)`` for the sketch GEMM.

        ``s`` follows the same contiguous [max block ∥ min block] column
        layout as the candidate sketch; each entry is the smoothed
        live-branch probability ``Φ((±(μ_j − g_j)) / σ_j)`` from the
        catalog statistics carried in ``factors`` (logistic approximation
        of the normal CDF, computed via the numerically safe ``tanh``).
        Factors from an older snapshot without ``"std"`` fall back to the
        hard 0/1 indicator at μ.
        """
        side = query_proj["as_left"]
        g_max, g_min = side["g_max"], side["g_min"]
        mean, components = factors["mean"], factors["components"]
        std = factors.get("std")
        split = g_max.shape[1]
        live = np.empty((len(g_max), mean.shape[0]), dtype=components.dtype)
        if std is None:
            live[:, :split] = mean[:split] > g_max
            live[:, split:] = mean[split:] < g_min
        else:
            live[:, :split] = (mean[:split] - g_max) / std[:split]
            live[:, split:] = (g_min - mean[split:]) / std[split:]
            # logistic(1.702·z) ≈ Φ(z), written as tanh so extreme z are
            # exact 0/1 instead of overflowing an exp.
            np.multiply(live, 0.851, out=live)
            np.tanh(live, out=live)
            np.add(live, 1.0, out=live)
            np.multiply(live, 0.5, out=live)
        return live @ components

    def prefilter_block(self, query_proj: dict[str, dict[str, np.ndarray]],
                        cand_proj: dict[str, np.ndarray]) -> np.ndarray:
        """Approximate-mode scores: one ``(B, r) @ (r, nq)`` GEMM per block.

        Requires the ``"sketch"`` candidate rows (ride the projections
        dict) and the query-side operand stashed by the service under
        ``query_proj["sketch"]`` via :meth:`sketch_queries`.
        """
        return (cand_proj["sketch"] @ query_proj["sketch"].T).T


class DotDecoder(_ScratchMixin, Module):
    """Eq. (12): element-wise dot product ``q_x · q_y`` (no parameters)."""

    is_symmetric = True
    supports_prefilter = True
    needs_sketch = False

    def __init__(self):
        super().__init__()

    def forward(self, left: Tensor, right: Tensor) -> Tensor:
        return (left * right).sum(axis=1)

    # ------------------------------------------------------------------
    # Serving fast path
    # ------------------------------------------------------------------
    def candidate_projections(self, embeddings: np.ndarray
                              ) -> dict[str, np.ndarray]:
        """The raw embedding matrix is already the candidate-side operand."""
        return {"emb": np.asarray(embeddings)}

    def project_queries(self, queries: np.ndarray,
                        sides: tuple[str, ...] = ()) -> dict[str, np.ndarray]:
        return {"emb": np.atleast_2d(np.asarray(queries))}

    def score_block(self, query_proj: dict[str, np.ndarray],
                    cand_proj: dict[str, np.ndarray],
                    reverse: bool = False) -> np.ndarray:
        """Exact per-row products + pairwise row sums (blocking-invariant).

        Bitwise-identical to the training path's ``(left * right).sum(1)``
        — a GEMV would reorder the reduction.  ``reverse`` is accepted for
        interface parity; the dot product is symmetric.
        """
        queries = query_proj["emb"]
        cand = cand_proj["emb"]
        num_cands, width = cand.shape
        dtype = np.result_type(_serving_dtype(queries), _serving_dtype(cand))
        out = np.empty((len(queries), num_cands), dtype=dtype)
        # Same cache-tiling rationale as the MLP kernel: multiply into an
        # L2-resident scratch tile and reduce it immediately.
        tile = max(16, _KERNEL_TILE_ELEMENTS // max(width, 1))
        scratch = self._scratch((min(tile, num_cands) or 1, width), dtype)
        for qi, row in enumerate(queries):
            for start in range(0, num_cands, tile):
                block = cand[start:start + tile]
                np.multiply(block, row, out=scratch[:len(block)])
                out[qi, start:start + len(block)] = \
                    scratch[:len(block)].sum(axis=1)
        return out

    def prefilter_block(self, query_proj: dict[str, np.ndarray],
                        cand_proj: dict[str, np.ndarray]) -> np.ndarray:
        """Approximate-mode scores: one ``(B, d) @ (d, nq)`` GEMM per block.

        Mathematically the same inner products as :meth:`score_block`, but
        BLAS-reduced — ULP-level differences can reorder near-ties, which is
        why approximate mode exact-reranks its survivors.
        """
        return (cand_proj["emb"] @ query_proj["emb"].T).T


class _PicklableKernel(_ScratchMixin):
    """Weight-free screening kernel, safe to ship to worker processes.

    ``score_block`` / ``prefilter_block`` read **only** the precomputed
    query- and candidate-side projections handed to them — never live
    decoder weights — so a kernel owns no state beyond reusable scratch
    buffers.  Pickling drops the scratch (workers rebuild it lazily),
    which keeps the payload sent per screening task a few bytes.

    The ``score_block`` implementations are the *same function objects*
    as the decoders' (assigned, not reimplemented), so a worker scoring a
    memory-mapped shard is bitwise-identical to the in-process engine.
    """

    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class MLPScreenKernel(_PicklableKernel):
    is_symmetric = MLPDecoder.is_symmetric
    supports_prefilter = MLPDecoder.supports_prefilter
    needs_sketch = MLPDecoder.needs_sketch
    score_block = MLPDecoder.score_block
    score_rows = MLPDecoder.score_rows
    sketch_queries = MLPDecoder.sketch_queries
    prefilter_block = MLPDecoder.prefilter_block


class DotScreenKernel(_PicklableKernel):
    is_symmetric = DotDecoder.is_symmetric
    supports_prefilter = DotDecoder.supports_prefilter
    needs_sketch = DotDecoder.needs_sketch
    score_block = DotDecoder.score_block
    prefilter_block = DotDecoder.prefilter_block


def make_screen_kernel(decoder: Module) -> _PicklableKernel:
    """The picklable screening kernel matching ``decoder``'s scoring math."""
    if isinstance(decoder, MLPDecoder):
        return MLPScreenKernel()
    if isinstance(decoder, DotDecoder):
        return DotScreenKernel()
    raise TypeError(f"no screening kernel for {type(decoder).__name__}")


# Wire-level kernel registry: the remote screening transport ships a *kind
# string*, never a pickled object — a worker reconstructs the weight-free
# kernel from the name, so no code object crosses a host boundary.
KERNEL_KINDS: dict[str, type[_PicklableKernel]] = {
    "mlp": MLPScreenKernel,
    "dot": DotScreenKernel,
}


def kernel_kind(kernel: _PicklableKernel) -> str:
    """The registry name of a screening kernel instance."""
    for name, cls in KERNEL_KINDS.items():
        if type(kernel) is cls:
            return name
    raise TypeError(f"{type(kernel).__name__} is not a registered "
                    f"screening kernel")


def make_kernel(kind: str) -> _PicklableKernel:
    """Instantiate a screening kernel from its registry name."""
    try:
        return KERNEL_KINDS[kind]()
    except KeyError:
        raise ValueError(f"unknown screening kernel kind {kind!r}; "
                         f"expected one of {sorted(KERNEL_KINDS)}") from None


def make_decoder(kind: str, embed_dim: int, hidden_dim: int,
                 rng: np.random.Generator) -> Module:
    """Factory for the two decoder types compared throughout Sec. IV."""
    kind = kind.lower()
    if kind == "mlp":
        return MLPDecoder(embed_dim, hidden_dim, rng)
    if kind == "dot":
        return DotDecoder()
    raise ValueError(f"unknown decoder {kind!r}; expected 'mlp' or 'dot'")
