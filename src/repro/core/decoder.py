"""HyGNN decoders (paper Sec. III-C2, Eqs. 10-12).

Both decoders map a pair of drug embeddings to a raw interaction score
(logit); the sigmoid lives in the loss / prediction step, matching the
paper's ``σ(γ(q_x, q_y))`` formulation.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor
from ..nn import functional as F


class MLPDecoder(Module):
    """Eq. (11): ``γ(q_x, q_y) = f2(f1(q_x ∥ q_y))``.

    Two affine layers with a ReLU between them (the paper uses ReLU on the
    decoder side, Sec. IV-B); output is a scalar logit per pair.
    """

    def __init__(self, embed_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.f1 = Linear(2 * embed_dim, hidden_dim, rng)
        self.f2 = Linear(hidden_dim, 1, rng)

    def forward(self, left: Tensor, right: Tensor) -> Tensor:
        pair = F.concat([left, right], axis=1)
        hidden = F.relu(self.f1(pair))
        return self.f2(hidden).reshape(len(left))


class DotDecoder(Module):
    """Eq. (12): element-wise dot product ``q_x · q_y`` (no parameters)."""

    def __init__(self):
        super().__init__()

    def forward(self, left: Tensor, right: Tensor) -> Tensor:
        return (left * right).sum(axis=1)


def make_decoder(kind: str, embed_dim: int, hidden_dim: int,
                 rng: np.random.Generator) -> Module:
    """Factory for the two decoder types compared throughout Sec. IV."""
    kind = kind.lower()
    if kind == "mlp":
        return MLPDecoder(embed_dim, hidden_dim, rng)
    if kind == "dot":
        return DotDecoder()
    raise ValueError(f"unknown decoder {kind!r}; expected 'mlp' or 'dot'")
