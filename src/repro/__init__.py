"""repro — a full reproduction of "HyGNN: Drug-Drug Interaction Prediction
via Hypergraph Neural Network" (Saifuddin et al., ICDE 2023).

Subpackages
-----------
- ``repro.nn``          numpy autograd + layers/optimizers (PyTorch substitute)
- ``repro.chem``        SMILES tokenizer, ESPF, k-mer, synthetic molecule generator
- ``repro.data``        TWOSIDES/DrugBank-like datasets, splits, negative sampling
- ``repro.hypergraph``  drug hypergraph (Algorithm 1)
- ``repro.graphs``      DDI graph and substructure-similarity graph (SSG)
- ``repro.core``        the HyGNN model: attention encoder, decoders, trainer
- ``repro.serving``     DDI screening service over cached drug embeddings
- ``repro.baselines``   DeepWalk, node2vec, GCN/GAT/GraphSAGE, CASTER, Decagon
- ``repro.metrics``     F1 / ROC-AUC / PR-AUC
- ``repro.experiments`` harness regenerating every table and figure
"""

__version__ = "1.0.0"
