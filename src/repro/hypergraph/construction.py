"""Drug hypergraph construction — paper Algorithm 1.

Drugs are hyperedges; the chemical substructures extracted from their SMILES
(by ESPF or k-mer) are nodes.  ``H[i, j] = 1`` iff substructure *i* occurs in
drug *j*.  Each drug contributes its *set* of unique substructures
(Sec. III-B: "each drug, consisting of a set of unique substructures, is
represented as a hyperedge").

The builder is fit/transform-style so the Table IX cold-start experiment can
tokenise *new* drugs against the training vocabulary: substructures never
seen in training are dropped, exactly what an inductive deployment would do.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chem.espf import ESPF
from ..chem.kmer import kmerize
from .hypergraph import Hypergraph

SUBSTRUCTURE_METHODS = ("espf", "kmer")


@dataclass
class DrugHypergraphBuilder:
    """Builds drug hypergraphs from SMILES corpora.

    Parameters
    ----------
    method:
        ``"espf"`` (frequency-threshold substructures, Algorithm 2) or
        ``"kmer"`` (all k-character windows, Algorithm 3).
    parameter:
        ESPF frequency threshold α, or the k of k-mer.  The paper sweeps
        α ∈ {5..25} (Fig. 2) and k ∈ {3..15} (Fig. 3).
    """

    method: str = "kmer"
    parameter: int = 9

    def __post_init__(self):
        if self.method not in SUBSTRUCTURE_METHODS:
            raise ValueError(f"method must be one of {SUBSTRUCTURE_METHODS}, "
                             f"got {self.method!r}")
        if self.parameter < 1:
            raise ValueError("parameter must be >= 1")
        self._espf: ESPF | None = None
        self._vocab: dict[str, int] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    def _decompose(self, smiles: str) -> list[str]:
        if self.method == "espf":
            return self._espf.encode(smiles)
        return kmerize(smiles, self.parameter)

    def fit(self, smiles_corpus: list[str]) -> "DrugHypergraphBuilder":
        """Learn the substructure vocabulary from a training corpus."""
        if not smiles_corpus:
            raise ValueError("empty SMILES corpus")
        if self.method == "espf":
            self._espf = ESPF(frequency_threshold=self.parameter).fit(smiles_corpus)
        self._vocab = {}
        for smiles in smiles_corpus:
            for token in self._decompose(smiles):
                if token not in self._vocab:
                    self._vocab[token] = len(self._vocab)
        self._fitted = True
        return self

    @property
    def vocabulary(self) -> dict[str, int]:
        if not self._fitted:
            raise RuntimeError("builder must be fitted first")
        return dict(self._vocab)

    @property
    def num_nodes(self) -> int:
        if not self._fitted:
            raise RuntimeError("builder must be fitted first")
        return len(self._vocab)

    def drug_token_sets(self, smiles_list: list[str]) -> list[set[str]]:
        """Unique known substructures per drug (unseen tokens dropped)."""
        if not self._fitted:
            raise RuntimeError("builder must be fitted first")
        return [{t for t in self._decompose(s) if t in self._vocab}
                for s in smiles_list]

    def transform(self, smiles_list: list[str]) -> Hypergraph:
        """Algorithm 1: build the incidence structure for ``smiles_list``.

        Node set is the fitted vocabulary; hyperedge *j* is drug *j* of the
        input list.  Drugs whose substructures are all unknown yield empty
        hyperedges (possible only for out-of-corpus drugs).
        """
        token_sets = self.drug_token_sets(smiles_list)
        node_ids: list[int] = []
        edge_ids: list[int] = []
        for drug_index, tokens in enumerate(token_sets):
            for token in tokens:
                node_ids.append(self._vocab[token])
                edge_ids.append(drug_index)
        labels = [""] * len(self._vocab)
        for token, index in self._vocab.items():
            labels[index] = token
        return Hypergraph(num_nodes=len(self._vocab),
                          num_edges=len(smiles_list),
                          node_ids=node_ids, edge_ids=edge_ids,
                          node_labels=labels)

    def fit_transform(self, smiles_corpus: list[str]) -> Hypergraph:
        return self.fit(smiles_corpus).transform(smiles_corpus)


def build_drug_hypergraph(smiles_corpus: list[str], method: str = "kmer",
                          parameter: int = 9
                          ) -> tuple[Hypergraph, DrugHypergraphBuilder]:
    """One-shot convenience: fit on the corpus and build its hypergraph."""
    builder = DrugHypergraphBuilder(method=method, parameter=parameter)
    hypergraph = builder.fit_transform(smiles_corpus)
    return hypergraph, builder
