"""Hypergraph data structure.

A hypergraph ``G = (V, E)`` with degree-free hyperedges (paper Sec. III-A),
stored as an incidence list — parallel arrays ``(node_ids, edge_ids)`` with
one entry per (node ∈ hyperedge) membership — plus a CSR incidence matrix
view.  The incidence list is what the HyGNN attention layers consume: both
attention levels are segment-softmaxes over these entries.

Incidences are stored edge-major (sorted by ``(edge_id, node_id)``), which
makes every hyperedge a contiguous slice.  The complementary node-major view
and the :class:`~repro.nn.functional.SegmentPartition` groupings the encoder
layers reuse are built once on first use and cached — ``nodes_of_edge`` /
``edges_of_node`` are O(degree) slices, not O(num_incidences) scans.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..nn.functional import SegmentPartition


class Hypergraph:
    """An immutable hypergraph over ``num_nodes`` nodes and ``num_edges`` edges."""

    def __init__(self, num_nodes: int, num_edges: int,
                 node_ids: np.ndarray, edge_ids: np.ndarray,
                 node_labels: list[str] | None = None,
                 edge_labels: list[str] | None = None):
        node_ids = np.asarray(node_ids, dtype=np.int64)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if node_ids.shape != edge_ids.shape or node_ids.ndim != 1:
            raise ValueError("node_ids and edge_ids must be equal-length 1-D")
        if node_ids.size:
            if node_ids.min() < 0 or node_ids.max() >= num_nodes:
                raise ValueError("node id out of range")
            if edge_ids.min() < 0 or edge_ids.max() >= num_edges:
                raise ValueError("edge id out of range")
        if node_labels is not None and len(node_labels) != num_nodes:
            raise ValueError("node_labels length mismatch")
        if edge_labels is not None and len(edge_labels) != num_edges:
            raise ValueError("edge_labels length mismatch")

        # Deduplicate and sort incidences edge-major: lexsort puts duplicates
        # adjacent, so dedup is a diff against the previous entry.
        order = np.lexsort((node_ids, edge_ids))
        sorted_nodes = node_ids[order]
        sorted_edges = edge_ids[order]
        keep = np.ones(sorted_nodes.size, dtype=bool)
        if sorted_nodes.size:
            keep[1:] = ((sorted_nodes[1:] != sorted_nodes[:-1])
                        | (sorted_edges[1:] != sorted_edges[:-1]))
        self.num_nodes = int(num_nodes)
        self.num_edges = int(num_edges)
        self.node_ids = sorted_nodes[keep]
        self.edge_ids = sorted_edges[keep]
        self.node_labels = node_labels
        self.edge_labels = edge_labels
        # Lazily built CSR views / segment partitions (the structure is
        # immutable, so these never need invalidation).
        self._edge_ptr: np.ndarray | None = None
        self._node_ptr: np.ndarray | None = None
        self._edges_by_node: np.ndarray | None = None
        self._node_partition: SegmentPartition | None = None
        self._edge_partition: SegmentPartition | None = None

    # ------------------------------------------------------------------
    @property
    def num_incidences(self) -> int:
        return len(self.node_ids)

    @property
    def edge_partition(self) -> SegmentPartition:
        """Incidence entries grouped by hyperedge (identity order: edge-major)."""
        if self._edge_partition is None:
            self._edge_partition = SegmentPartition(self.edge_ids,
                                                    self.num_edges)
        return self._edge_partition

    @property
    def node_partition(self) -> SegmentPartition:
        """Incidence entries grouped by node (cached stable sort)."""
        if self._node_partition is None:
            self._node_partition = SegmentPartition(self.node_ids,
                                                    self.num_nodes)
        return self._node_partition

    def _edge_pointers(self) -> np.ndarray:
        if self._edge_ptr is None:
            counts = np.bincount(self.edge_ids, minlength=self.num_edges)
            self._edge_ptr = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts)])
        return self._edge_ptr

    def _node_pointers(self) -> tuple[np.ndarray, np.ndarray]:
        if self._node_ptr is None:
            part = self.node_partition
            self._edges_by_node = part.gather(self.edge_ids)
            self._node_ptr = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(part.counts)])
        return self._node_ptr, self._edges_by_node

    def incidence_matrix(self) -> sp.csr_matrix:
        """H with ``H[i, j] = 1`` iff node *i* belongs to hyperedge *j*."""
        data = np.ones(self.num_incidences)
        return sp.csr_matrix((data, (self.node_ids, self.edge_ids)),
                             shape=(self.num_nodes, self.num_edges))

    def node_degrees(self) -> np.ndarray:
        """Number of hyperedges containing each node."""
        return np.bincount(self.node_ids, minlength=self.num_nodes)

    def edge_degrees(self) -> np.ndarray:
        """Number of nodes in each hyperedge (degree-free, Sec. III-A)."""
        return np.bincount(self.edge_ids, minlength=self.num_edges)

    def nodes_of_edge(self, edge_id: int) -> np.ndarray:
        """Sorted member nodes of one hyperedge — an O(degree) CSR slice."""
        if not 0 <= edge_id < self.num_edges:
            raise IndexError(f"edge id {edge_id} out of range")
        ptr = self._edge_pointers()
        return self.node_ids[ptr[edge_id]:ptr[edge_id + 1]]

    def edges_of_node(self, node_id: int) -> np.ndarray:
        """Sorted hyperedges containing one node — an O(degree) CSR slice."""
        if not 0 <= node_id < self.num_nodes:
            raise IndexError(f"node id {node_id} out of range")
        ptr, edges_by_node = self._node_pointers()
        return edges_by_node[ptr[node_id]:ptr[node_id + 1]]

    def edge_membership_rows(self) -> sp.csr_matrix:
        """``H.T`` — one row per hyperedge (drug), used as initial features."""
        return self.incidence_matrix().T.tocsr()

    def statistics(self) -> dict:
        edge_deg = self.edge_degrees()
        node_deg = self.node_degrees()
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_incidences": self.num_incidences,
            "mean_edge_degree": float(edge_deg.mean()) if self.num_edges else 0.0,
            "mean_node_degree": float(node_deg.mean()) if self.num_nodes else 0.0,
            "max_edge_degree": int(edge_deg.max()) if self.num_edges else 0,
        }

    def __repr__(self) -> str:
        return (f"Hypergraph(nodes={self.num_nodes}, edges={self.num_edges}, "
                f"incidences={self.num_incidences})")
