"""Hypergraph data structure.

A hypergraph ``G = (V, E)`` with degree-free hyperedges (paper Sec. III-A),
stored as an incidence list — parallel arrays ``(node_ids, edge_ids)`` with
one entry per (node ∈ hyperedge) membership — plus a CSR incidence matrix
view.  The incidence list is what the HyGNN attention layers consume: both
attention levels are segment-softmaxes over these entries.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


class Hypergraph:
    """An immutable hypergraph over ``num_nodes`` nodes and ``num_edges`` edges."""

    def __init__(self, num_nodes: int, num_edges: int,
                 node_ids: np.ndarray, edge_ids: np.ndarray,
                 node_labels: list[str] | None = None,
                 edge_labels: list[str] | None = None):
        node_ids = np.asarray(node_ids, dtype=np.int64)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if node_ids.shape != edge_ids.shape or node_ids.ndim != 1:
            raise ValueError("node_ids and edge_ids must be equal-length 1-D")
        if node_ids.size:
            if node_ids.min() < 0 or node_ids.max() >= num_nodes:
                raise ValueError("node id out of range")
            if edge_ids.min() < 0 or edge_ids.max() >= num_edges:
                raise ValueError("edge id out of range")
        if node_labels is not None and len(node_labels) != num_nodes:
            raise ValueError("node_labels length mismatch")
        if edge_labels is not None and len(edge_labels) != num_edges:
            raise ValueError("edge_labels length mismatch")

        # Deduplicate and sort incidences by (edge, node) for determinism.
        order = np.lexsort((node_ids, edge_ids))
        pairs = np.stack([node_ids[order], edge_ids[order]], axis=1)
        pairs = np.unique(pairs, axis=0)
        self.num_nodes = int(num_nodes)
        self.num_edges = int(num_edges)
        self.node_ids = pairs[:, 0]
        self.edge_ids = pairs[:, 1]
        self.node_labels = node_labels
        self.edge_labels = edge_labels

    # ------------------------------------------------------------------
    @property
    def num_incidences(self) -> int:
        return len(self.node_ids)

    def incidence_matrix(self) -> sp.csr_matrix:
        """H with ``H[i, j] = 1`` iff node *i* belongs to hyperedge *j*."""
        data = np.ones(self.num_incidences)
        return sp.csr_matrix((data, (self.node_ids, self.edge_ids)),
                             shape=(self.num_nodes, self.num_edges))

    def node_degrees(self) -> np.ndarray:
        """Number of hyperedges containing each node."""
        return np.bincount(self.node_ids, minlength=self.num_nodes)

    def edge_degrees(self) -> np.ndarray:
        """Number of nodes in each hyperedge (degree-free, Sec. III-A)."""
        return np.bincount(self.edge_ids, minlength=self.num_edges)

    def nodes_of_edge(self, edge_id: int) -> np.ndarray:
        return self.node_ids[self.edge_ids == edge_id]

    def edges_of_node(self, node_id: int) -> np.ndarray:
        return self.edge_ids[self.node_ids == node_id]

    def edge_membership_rows(self) -> sp.csr_matrix:
        """``H.T`` — one row per hyperedge (drug), used as initial features."""
        return self.incidence_matrix().T.tocsr()

    def statistics(self) -> dict:
        edge_deg = self.edge_degrees()
        node_deg = self.node_degrees()
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_incidences": self.num_incidences,
            "mean_edge_degree": float(edge_deg.mean()) if self.num_edges else 0.0,
            "mean_node_degree": float(node_deg.mean()) if self.num_nodes else 0.0,
            "max_edge_degree": int(edge_deg.max()) if self.num_edges else 0,
        }

    def __repr__(self) -> str:
        return (f"Hypergraph(nodes={self.num_nodes}, edges={self.num_edges}, "
                f"incidences={self.num_incidences})")
