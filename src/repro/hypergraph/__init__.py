"""``repro.hypergraph`` — drug hypergraph construction (paper Algorithm 1)."""

from .construction import (SUBSTRUCTURE_METHODS, DrugHypergraphBuilder,
                           build_drug_hypergraph)
from .hypergraph import Hypergraph

__all__ = ["Hypergraph", "DrugHypergraphBuilder", "build_drug_hypergraph",
           "SUBSTRUCTURE_METHODS"]
