"""Classification metrics (F1, ROC-AUC, PR-AUC) — see Sec. IV of the paper."""

from .classification import (EvaluationSummary, accuracy_score,
                             confusion_counts, f1_from_scores, f1_score,
                             pr_auc_score, precision_score, recall_score,
                             roc_auc_score, roc_curve)

__all__ = [
    "EvaluationSummary", "accuracy_score", "confusion_counts",
    "f1_score", "f1_from_scores", "precision_score", "recall_score",
    "roc_auc_score", "pr_auc_score", "roc_curve",
]
