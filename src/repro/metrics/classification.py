"""Binary-classification metrics used throughout the paper's evaluation.

The paper reports F1, ROC-AUC, and PR-AUC (Sec. IV).  All three are
implemented from first principles on numpy:

- ROC-AUC via the rank statistic (equivalent to the Mann-Whitney U), with
  proper tie handling through midranks.
- PR-AUC as *average precision* (the step-function integral sklearn uses),
  again tie-aware by grouping equal scores.
- F1 and friends from confusion counts at a 0.5 threshold by default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _validate(y_true, y_score) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_score = np.asarray(y_score, dtype=np.float64).reshape(-1)
    if y_true.shape != y_score.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_score.shape}")
    if y_true.size == 0:
        raise ValueError("empty inputs")
    labels = np.unique(y_true)
    if not np.all(np.isin(labels, (0.0, 1.0))):
        raise ValueError("y_true must contain only 0/1 labels")
    return y_true, y_score


def confusion_counts(y_true, y_pred) -> tuple[int, int, int, int]:
    """Return (tp, fp, tn, fn) for binary predictions."""
    y_true, y_pred = _validate(y_true, y_pred)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return tp, fp, tn, fn


def precision_score(y_true, y_pred) -> float:
    tp, fp, _, _ = confusion_counts(y_true, y_pred)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred) -> float:
    tp, _, _, fn = confusion_counts(y_true, y_pred)
    return tp / (tp + fn) if tp + fn else 0.0


def accuracy_score(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall; 0 when both are undefined."""
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def f1_from_scores(y_true, y_score, threshold: float = 0.5) -> float:
    y_true, y_score = _validate(y_true, y_score)
    return f1_score(y_true, (y_score >= threshold).astype(np.float64))


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve via midrank statistics (tie-aware)."""
    y_true, y_score = _validate(y_true, y_score)
    n_pos = float(np.sum(y_true == 1))
    n_neg = float(np.sum(y_true == 0))
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC-AUC undefined with a single class")
    order = np.argsort(y_score, kind="mergesort")
    sorted_scores = y_score[order]
    ranks = np.empty_like(sorted_scores)
    i = 0
    n = len(sorted_scores)
    while i < n:
        j = i
        while j + 1 < n and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[i:j + 1] = 0.5 * (i + j) + 1.0  # midrank, 1-based
        i = j + 1
    rank_of = np.empty(n)
    rank_of[order] = ranks
    rank_sum_pos = rank_of[y_true == 1].sum()
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def pr_auc_score(y_true, y_score) -> float:
    """Average precision (area under the precision-recall curve).

    AP = sum_k (R_k - R_{k-1}) * P_k over descending unique score thresholds.
    """
    y_true, y_score = _validate(y_true, y_score)
    n_pos = float(np.sum(y_true == 1))
    if n_pos == 0:
        raise ValueError("PR-AUC undefined without positive samples")
    order = np.argsort(-y_score, kind="mergesort")
    y_sorted = y_true[order]
    scores_sorted = y_score[order]
    tp_cum = np.cumsum(y_sorted)
    fp_cum = np.cumsum(1.0 - y_sorted)
    # Only evaluate at the last index of each tied score block.
    distinct = np.where(np.diff(scores_sorted))[0]
    idx = np.r_[distinct, len(y_sorted) - 1]
    precision = tp_cum[idx] / (tp_cum[idx] + fp_cum[idx])
    recall = tp_cum[idx] / n_pos
    recall_prev = np.r_[0.0, recall[:-1]]
    return float(np.sum((recall - recall_prev) * precision))


def roc_curve(y_true, y_score) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds) at each distinct score, descending."""
    y_true, y_score = _validate(y_true, y_score)
    order = np.argsort(-y_score, kind="mergesort")
    y_sorted = y_true[order]
    scores_sorted = y_score[order]
    tp_cum = np.cumsum(y_sorted)
    fp_cum = np.cumsum(1.0 - y_sorted)
    distinct = np.where(np.diff(scores_sorted))[0]
    idx = np.r_[distinct, len(y_sorted) - 1]
    n_pos = max(tp_cum[-1], 1.0)
    n_neg = max(fp_cum[-1], 1.0)
    tpr = np.r_[0.0, tp_cum[idx] / n_pos]
    fpr = np.r_[0.0, fp_cum[idx] / n_neg]
    thresholds = np.r_[np.inf, scores_sorted[idx]]
    return fpr, tpr, thresholds


@dataclass(frozen=True)
class EvaluationSummary:
    """The metric triple the paper reports, as percentages."""

    f1: float
    roc_auc: float
    pr_auc: float

    @classmethod
    def from_scores(cls, y_true, y_score,
                    threshold: float = 0.5) -> "EvaluationSummary":
        return cls(
            f1=100.0 * f1_from_scores(y_true, y_score, threshold=threshold),
            roc_auc=100.0 * roc_auc_score(y_true, y_score),
            pr_auc=100.0 * pr_auc_score(y_true, y_score),
        )

    def as_row(self) -> dict[str, float]:
        return {"F1": self.f1, "ROC-AUC": self.roc_auc, "PR-AUC": self.pr_auc}

    def __str__(self) -> str:
        return (f"F1={self.f1:.2f} ROC-AUC={self.roc_auc:.2f} "
                f"PR-AUC={self.pr_auc:.2f}")
