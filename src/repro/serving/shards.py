"""Sharded, blockwise catalog layout for million-drug screening.

:class:`ShardedEmbeddingCatalog` partitions a catalog's embedding matrix —
and the precomputed candidate-side decoder projections that ride with it —
into ``S`` shards, each scored in fixed-size blocks.  A screening query runs
per-shard streaming top-k (:class:`~repro.serving.topk.TopKAccumulator`)
and a deterministic cross-shard merge (:func:`~repro.serving.topk.merge_top_k`),
so results are bitwise-identical for every ``(num_shards, block_size,
layout)`` choice: peak scoring memory is O(block + k) per shard, never
O(catalog).

The default layout splits rows into contiguous ranges, which keeps every
shard a zero-copy view of the parent arrays.  An explicit ``layout`` (any
partition of the row indices, e.g. hash-assignment) is supported for
distribution experiments; those shards gather their rows once at build
time — the same copy a per-worker deployment would hold locally.

The per-shard accumulate (:func:`screen_shard`) and the cross-shard reduce
(:func:`finalize_screen`) are module-level functions, deliberately: the
out-of-core tier (:mod:`repro.serving.store`) and the process-pool executor
(:mod:`repro.serving.executor`) run the *same* code over memory-mapped shard
files in worker processes, which is what makes their results bitwise-
identical to this in-memory catalog by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from .topk import (TopKAccumulator, as_float_scores, batch_top_k_sets,
                   merge_top_k)

# score_block(embeddings_block, projections_block) -> (num_queries, block) scores
ScoreBlockFn = Callable[[np.ndarray, dict[str, np.ndarray]], np.ndarray]


def normalize_top_k(top_k, num_queries: int) -> list[int]:
    """Per-query top-k budgets from a scalar or per-query sequence.

    Booleans are rejected explicitly: ``True`` would silently mean
    ``top_k=1`` under the ``int`` check.
    """
    def as_k(value):
        if isinstance(value, (bool, np.bool_)):
            raise TypeError(f"top_k must be an integer, got {value!r}")
        if not isinstance(value, (int, np.integer)):
            raise TypeError(f"top_k must be an integer, got {value!r}")
        return int(value)

    if isinstance(top_k, (int, np.integer, bool, np.bool_)):
        return [as_k(top_k)] * num_queries
    top_ks = [as_k(k) for k in top_k]
    if len(top_ks) != num_queries:
        raise ValueError(f"per-query top_k has {len(top_ks)} entries for "
                         f"{num_queries} queries")
    return top_ks


def normalize_exclude(exclude, num_queries: int) -> list[np.ndarray]:
    """Per-query exclusion arrays from the polymorphic ``exclude`` argument."""
    empty = np.zeros(0, dtype=np.int64)
    if exclude is None:
        return [empty] * num_queries
    # A flat collection of integers is one shared exclusion set; only a
    # collection of *array-likes* is per-query.  Deciding by element
    # type (not length) keeps `exclude=[3, 5]` meaning "rows 3 and 5,
    # every query" even when the list length equals num_queries.
    if isinstance(exclude, (list, tuple)) and any(
            not isinstance(e, (int, np.integer)) for e in exclude):
        if len(exclude) != num_queries:
            raise ValueError(
                f"per-query exclude has {len(exclude)} entries for "
                f"{num_queries} queries")
        return [np.asarray(e, dtype=np.int64).reshape(-1)
                for e in exclude]
    shared = np.asarray(exclude, dtype=np.int64).reshape(-1)
    return [shared] * num_queries


def iter_shard_blocks(shard: "CatalogShard", block_size: int) -> Iterator[
        tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]]:
    """Yield ``(global_indices, embeddings, projections)`` scoring blocks."""
    for start in range(0, shard.num_drugs, block_size):
        stop = start + block_size
        yield (shard.indices[start:stop],
               shard.embeddings[start:stop],
               {k: v[start:stop] for k, v in shard.projections.items()})


def screen_shard(shard: "CatalogShard", block_size: int,
                 score_block: ScoreBlockFn, num_queries: int,
                 padded: Sequence[int]
                 ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Blockwise streaming top-``padded[qi]`` over one shard, per query.

    This is the unit of work a pool worker executes against a memory-mapped
    shard; the in-memory catalog runs the identical function over its array
    views, so both paths produce bitwise-equal per-shard results.

    Contiguous shard layouts (ascending global indices — the default, and
    every layout the service builds) take a batched path: one vectorised
    top-k selection per block for the whole query batch instead of
    ``num_queries`` python-level accumulator updates.  Both paths realise
    the same (score desc, index asc) total order, so their results are
    bitwise-identical; permuted layouts keep the per-query accumulators,
    whose update step re-sorts each block by global index.
    """
    if len(shard.indices) > 1 and not np.all(
            shard.indices[1:] > shard.indices[:-1]):
        accumulators = [TopKAccumulator(k) for k in padded]
        for indices, emb_block, proj_block in iter_shard_blocks(shard,
                                                                block_size):
            scores = np.atleast_2d(as_float_scores(
                score_block(emb_block, proj_block)))
            if scores.shape != (num_queries, len(indices)):
                raise ValueError(
                    f"score_block returned shape {scores.shape}; "
                    f"expected ({num_queries}, {len(indices)})")
            for qi in range(num_queries):
                accumulators[qi].update(scores[qi], indices)
        return [acc.result() for acc in accumulators]
    return _screen_shard_batched(shard, block_size, score_block,
                                 num_queries, padded)


def _screen_shard_batched(shard: "CatalogShard", block_size: int,
                          score_block: ScoreBlockFn, num_queries: int,
                          padded: Sequence[int]
                          ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Vectorised ``screen_shard`` for ascending-index shards.

    Streams a single ``(num_queries, running)`` candidate pool: each block
    contributes its per-row top-``kmax`` columns (one ``argpartition`` for
    the whole batch), the pool is re-sorted by global index so boundary
    ties keep the total order, and re-selected.  Selecting ``kmax =
    max(padded)`` rows for every query and truncating per query at the end
    is exact — the top ``padded[qi]`` of the total order is a prefix of
    the top ``kmax``.
    """
    kmax = max(padded, default=0)
    run_idx = run_sc = None
    for indices, emb_block, proj_block in iter_shard_blocks(shard,
                                                            block_size):
        scores = np.atleast_2d(as_float_scores(
            score_block(emb_block, proj_block)))
        if scores.shape != (num_queries, len(indices)):
            raise ValueError(
                f"score_block returned shape {scores.shape}; "
                f"expected ({num_queries}, {len(indices)})")
        if kmax <= 0:
            continue
        cols = batch_top_k_sets(scores, kmax)
        blk_idx = indices[cols]
        blk_sc = np.take_along_axis(scores, cols, axis=1)
        if run_idx is None:
            run_idx, run_sc = blk_idx, blk_sc
            continue
        pool_idx = np.concatenate([run_idx, blk_idx], axis=1)
        pool_sc = np.concatenate([run_sc, blk_sc], axis=1)
        if pool_idx.shape[1] > kmax:
            # Arrange the pool index-ascending per row so positional ties
            # in the re-selection coincide with the (score desc, index
            # asc) total order, exactly like TopKAccumulator.update.
            order = np.argsort(pool_idx, axis=1)
            pool_idx = np.take_along_axis(pool_idx, order, axis=1)
            pool_sc = np.take_along_axis(pool_sc, order, axis=1)
            cols = batch_top_k_sets(pool_sc, kmax)
            run_idx = np.take_along_axis(pool_idx, cols, axis=1)
            run_sc = np.take_along_axis(pool_sc, cols, axis=1)
        else:
            run_idx, run_sc = pool_idx, pool_sc
    empty = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64))
    if run_idx is None:
        return [empty] * num_queries
    # Final ordering: index-ascending rows + a stable sort on descending
    # score == the (score desc, index asc) order result() produces.
    order = np.argsort(run_idx, axis=1)
    run_idx = np.take_along_axis(run_idx, order, axis=1)
    run_sc = np.take_along_axis(run_sc, order, axis=1)
    order = np.argsort(-run_sc, axis=1, kind="stable")
    run_idx = np.take_along_axis(run_idx, order, axis=1)
    run_sc = np.take_along_axis(run_sc, order, axis=1)
    return [(run_idx[qi, :k], run_sc[qi, :k]) if k > 0 else empty
            for qi, k in enumerate(padded)]


def validate_shard_results(results: list[tuple[np.ndarray, np.ndarray]],
                           num_queries: int, padded: Sequence[int],
                           num_drugs: int | None = None
                           ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Sanity-check one shard's per-query top-k before it enters the merge.

    Remote workers return results over a network transport; a frame that
    passes the checksum can still be structurally wrong (a buggy or
    mismatched worker).  :func:`finalize_screen` assumes well-formed
    inputs, so the client validates here — shape, dtype family, paired
    lengths, budget ceiling, and (when ``num_drugs`` is known) index
    range — and raises ``ValueError`` on any violation, which the caller
    treats like any other failed request (retry / failover).
    """
    if len(results) != num_queries:
        raise ValueError(f"shard returned {len(results)} per-query results "
                         f"for {num_queries} queries")
    checked = []
    for qi, (indices, scores) in enumerate(results):
        indices = np.asarray(indices)
        scores = np.asarray(scores)
        if indices.ndim != 1 or scores.ndim != 1 \
                or len(indices) != len(scores):
            raise ValueError(f"query {qi}: indices/scores are not paired "
                             f"1-D arrays")
        if not np.issubdtype(indices.dtype, np.integer):
            raise ValueError(f"query {qi}: indices dtype {indices.dtype} "
                             f"is not integral")
        if not np.issubdtype(scores.dtype, np.floating):
            raise ValueError(f"query {qi}: scores dtype {scores.dtype} "
                             f"is not floating")
        if len(indices) > max(padded[qi], 0):
            raise ValueError(f"query {qi}: {len(indices)} rows exceed the "
                             f"padded budget {padded[qi]}")
        if len(indices) and (indices.min() < 0 or (
                num_drugs is not None and indices.max() >= num_drugs)):
            raise ValueError(f"query {qi}: candidate index out of catalog "
                             f"range")
        checked.append((indices.astype(np.int64, copy=False), scores))
    return checked


def finalize_screen(per_shard: list[list[tuple[np.ndarray, np.ndarray]]],
                    padded: Sequence[int], excludes: Sequence[np.ndarray],
                    top_k: int | Sequence[int]
                    ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Deterministic cross-shard reduce: merge, filter exclusions, truncate.

    ``top_k`` may be one shared budget or a per-query sequence — queries
    are reduced independently either way, so a heterogeneous batch is
    bitwise-identical to running each query alone with its own budget.
    """
    top_ks = normalize_top_k(top_k, len(padded))
    results = []
    for qi in range(len(padded)):
        if len(per_shard) == 1:
            indices, scores = per_shard[0][qi]
        else:
            indices, scores = merge_top_k([res[qi] for res in per_shard],
                                          padded[qi])
        if excludes[qi].size:
            # Tiny membership test ((padded, E) broadcast) — np.isin's
            # dispatch overhead dwarfs the actual work at these sizes.
            keep = ~(indices[:, None] == excludes[qi][None, :]).any(axis=1)
            indices, scores = indices[keep], scores[keep]
        results.append((indices[:max(top_ks[qi], 0)],
                        scores[:max(top_ks[qi], 0)]))
    return results


@dataclass(frozen=True)
class CatalogShard:
    """One shard: global row ids + its slice of embeddings and projections."""

    indices: np.ndarray                  # (m,) global catalog row ids
    embeddings: np.ndarray               # (m, d) embedding rows
    projections: dict[str, np.ndarray]   # per-key (m, ...) projection rows

    @property
    def num_drugs(self) -> int:
        return len(self.indices)


def _as_partition(layout: Sequence[np.ndarray], num_rows: int) -> list[np.ndarray]:
    parts = [np.asarray(part, dtype=np.int64).reshape(-1) for part in layout]
    if not parts:
        raise ValueError("layout must contain at least one shard")
    flat = (np.concatenate(parts) if parts else
            np.zeros(0, dtype=np.int64))
    if len(flat) != num_rows or not np.array_equal(np.sort(flat),
                                                   np.arange(num_rows)):
        raise ValueError(
            f"layout must partition the {num_rows} catalog rows exactly once")
    return parts


class ShardedEmbeddingCatalog:
    """Embeddings + candidate projections partitioned for blockwise top-k."""

    def __init__(self, embeddings: np.ndarray,
                 projections: dict[str, np.ndarray] | None = None,
                 num_shards: int = 1, block_size: int = 1024,
                 layout: Sequence[np.ndarray] | None = None):
        embeddings = np.asarray(embeddings)
        if embeddings.ndim != 2:
            raise ValueError("embeddings must be a (num_drugs, dim) matrix")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        projections = dict(projections or {})
        for name, matrix in projections.items():
            if len(matrix) != len(embeddings):
                raise ValueError(
                    f"projection {name!r} has {len(matrix)} rows for "
                    f"{len(embeddings)} catalog drugs")
        num_rows = len(embeddings)
        if layout is None:
            if num_shards < 1:
                raise ValueError("num_shards must be >= 1")
            chunks = np.array_split(np.arange(num_rows, dtype=np.int64),
                                    num_shards)
            # Contiguous ranges -> every shard is a zero-copy view.
            shards = []
            for chunk in chunks:
                if not len(chunk):
                    continue
                lo, hi = int(chunk[0]), int(chunk[-1]) + 1
                shards.append(CatalogShard(
                    indices=chunk,
                    embeddings=embeddings[lo:hi],
                    projections={k: v[lo:hi]
                                 for k, v in projections.items()}))
        else:
            shards = [CatalogShard(indices=part,
                                   embeddings=embeddings[part],
                                   projections={k: v[part]
                                                for k, v in projections.items()})
                      for part in _as_partition(layout, num_rows)
                      if len(part)]
        self._embeddings = embeddings
        self._projections = projections
        self._shards = shards
        self.block_size = block_size

    # ------------------------------------------------------------------
    @property
    def num_drugs(self) -> int:
        return len(self._embeddings)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[CatalogShard]:
        return list(self._shards)

    @property
    def projections(self) -> dict[str, np.ndarray]:
        return dict(self._projections)

    def rows(self, indices: np.ndarray) -> tuple[np.ndarray,
                                                 dict[str, np.ndarray]]:
        """Gather ``(embeddings, projections)`` rows by global catalog index."""
        indices = np.asarray(indices, dtype=np.int64)
        return (self._embeddings[indices],
                {k: v[indices] for k, v in self._projections.items()})

    def iter_blocks(self, shard: CatalogShard) -> Iterator[
            tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]]:
        """Yield ``(global_indices, embeddings, projections)`` scoring blocks."""
        return iter_shard_blocks(shard, self.block_size)

    # ------------------------------------------------------------------
    def screen(self, score_block: ScoreBlockFn, num_queries: int,
               top_k: int | Sequence[int],
               exclude: Sequence[np.ndarray] | np.ndarray | None = None,
               ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Blockwise per-shard top-k + deterministic merge, per query.

        ``score_block`` maps one ``(embeddings, projections)`` block to a
        ``(num_queries, block)`` score matrix; it is invoked once per block
        for the whole query batch.  ``exclude`` is either one global-index
        array applied to every query or a per-query sequence of arrays;
        ``top_k`` is one shared budget or a per-query sequence (queries
        keep independent accumulators, so a heterogeneous batch returns
        bitwise what each query alone would).  Returns one
        ``(indices, scores)`` pair per query, sorted by (score desc,
        index asc), excluded rows removed; fewer than ``top_k`` entries
        come back when the catalog has fewer eligible candidates.

        Exclusions are applied *after* selection: each accumulator keeps
        ``top_k + len(exclude)`` candidates, so the excluded rows — at most
        that many — can never displace an eligible one.  That keeps the
        per-block work free of membership tests, and is exactly equivalent
        to masking candidates up front.
        """
        top_ks = normalize_top_k(top_k, num_queries)
        excludes = normalize_exclude(exclude, num_queries)
        padded = [k + e.size if k > 0 else 0
                  for k, e in zip(top_ks, excludes)]
        per_shard = [screen_shard(shard, self.block_size, score_block,
                                  num_queries, padded)
                     for shard in self._shards]
        return finalize_screen(per_shard, padded, excludes, top_ks)
