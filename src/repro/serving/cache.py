"""Versioned drug-embedding cache for the DDI screening service.

The cache binds three things together: the catalog's embedding matrix, the
frozen :class:`~repro.core.encoder.EncoderContext` new drugs are encoded
against, and a *fingerprint* of the model weights that produced both.  Any
weight update (an optimizer step, ``load_state_dict``, a manual edit) changes
the fingerprint, which the service detects on the next query and rebuilds the
cache — stale embeddings are never served.

Two fingerprint modes are available:

- ``"fast"`` (default): per-parameter shape + sum + strided sample sums.
  O(params) numpy reductions, ~100x cheaper than hashing the raw bytes, and
  any realistic training update (dense optimizers touch every entry) flips
  it.  It is a checksum, not a cryptographic digest.
- ``"full"``: BLAKE2b over every parameter's bytes — exact, for deployments
  that would rather pay milliseconds per query than trust a checksum.

``DDIScreeningService.invalidate()`` remains the explicit, guaranteed path.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.encoder import EncoderContext
from ..nn import Module, Tensor

FINGERPRINT_MODES = ("fast", "full")


def _fingerprint_to_json(fingerprint: tuple) -> str:
    """Serialise a fingerprint tuple losslessly (floats survive via repr)."""
    def convert(value):
        if isinstance(value, tuple):
            return {"t": [convert(v) for v in value]}
        return value

    return json.dumps(convert(fingerprint))


def _fingerprint_from_json(payload: str) -> tuple:
    def restore(value):
        if isinstance(value, dict):
            return tuple(restore(v) for v in value["t"])
        return value

    return restore(json.loads(payload))


def weights_fingerprint(model: Module, mode: str = "fast",
                        params: list[tuple[str, "Tensor"]] | None = None
                        ) -> tuple:
    """A hashable token identifying the model's current weights.

    ``params`` lets hot-path callers pass a cached ``sorted(
    model.named_parameters())`` list — the parameter *set* of a model is
    fixed after construction, only ``.data`` values change, and walking
    the module tree every query costs more than the checksums themselves.
    """
    if mode not in FINGERPRINT_MODES:
        raise ValueError(f"fingerprint mode must be one of "
                         f"{FINGERPRINT_MODES}, got {mode!r}")
    if params is None:
        params = sorted(model.named_parameters())
    if mode == "full":
        digest = hashlib.blake2b(digest_size=16)
        for name, param in params:
            digest.update(name.encode("utf-8"))
            digest.update(str(param.data.shape).encode("utf-8"))
            digest.update(np.ascontiguousarray(param.data).tobytes())
        return ("full", digest.hexdigest())
    parts: list[tuple] = []
    for name, param in params:
        data = param.data
        flat = data.reshape(-1)
        # Whole-array sum: any dense update (optimizer steps touch every
        # entry) flips it.  Large arrays add two contiguous window sums to
        # also catch partial edits that happen to preserve the total; for
        # small arrays the windows would cost more in reduction-dispatch
        # overhead than they add in power.
        if flat.size >= 4096:
            third = flat.size // 3
            parts.append((name, data.shape, float(np.add.reduce(flat)),
                          float(np.add.reduce(flat[:third])),
                          float(np.add.reduce(flat[-third:]))))
        else:
            parts.append((name, data.shape, float(np.add.reduce(flat))))
    return ("fast", tuple(parts))


class LatencyWindow:
    """Sliding window of per-request latencies for percentile/QPS readouts.

    Keeps the most recent ``capacity`` completions as
    ``(latency_seconds, completed_at)`` pairs (monotonic-clock timestamps).
    Percentiles interpolate linearly over the window; throughput is
    completions over the window's completion-time span — both are *recent*
    figures by construction, so a long-lived gateway reports current load,
    not its lifetime average.  ``count`` is the lifetime total.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._latencies: deque[float] = deque(maxlen=capacity)
        self._completed: deque[float] = deque(maxlen=capacity)
        self.count = 0

    def record(self, latency: float, completed_at: float) -> None:
        """Fold one completed request into the window."""
        self._latencies.append(float(latency))
        self._completed.append(float(completed_at))
        self.count += 1

    def __len__(self) -> int:
        return len(self._latencies)

    def percentile(self, q: float) -> float:
        """Latency percentile (seconds) over the window; NaN when empty."""
        if not self._latencies:
            return float("nan")
        return float(np.percentile(
            np.fromiter(self._latencies, dtype=np.float64), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def qps(self) -> float:
        """Completions per second across the window's time span."""
        if len(self._completed) < 2:
            return 0.0
        span = self._completed[-1] - self._completed[0]
        return (len(self._completed) - 1) / span if span > 0 else 0.0

    def summary(self) -> dict:
        """Plain-dict readout (milliseconds for the percentiles)."""
        return {"count": self.count,
                "window": len(self._latencies),
                "p50_ms": self.p50 * 1e3,
                "p99_ms": self.p99 * 1e3,
                "qps": self.qps}


@dataclass
class ServiceStats:
    """Observability counters for one :class:`DDIScreeningService`.

    ``pairs_scored`` counts *useful* exact decoder evaluations only: pairs
    whose scores a caller could observe.  Screening charges
    ``num_drugs - len(excluded)`` per query (excluded candidates — always
    at least the query itself — are filtered and never reported);
    approximate screening charges its shortlist scan to
    ``prefilter_pairs`` (one cheap inner-product comparison per candidate)
    and only the exact rescores of the surviving shortlist to
    ``pairs_scored``.

    The ``gateway_*`` fields are maintained by
    :class:`~repro.serving.gateway.ScreeningGateway`: admission /
    deadline / flush counters, a batch-size histogram (batch size →
    number of flushes at that size), and a :class:`LatencyWindow` of
    end-to-end request latencies (enqueue → response) exposing
    p50/p99/QPS.

    The living-catalog fields track streaming mutations:
    ``registrations`` counts drugs registered onto the live service (with
    end-to-end timings in ``registration_latency``),
    ``appends_committed`` / ``compactions`` / ``rollbacks`` count catalog
    versions committed to the attached shard store, and
    ``gateway_epoch_swaps`` counts flushes that observed a different
    catalog epoch than the previous flush — how often in-flight traffic
    crossed a catalog version boundary.
    """

    corpus_encodes: int = 0        # full catalog-context rebuilds
    incremental_encodes: int = 0   # drugs embedded without a rebuild
    cache_hits: int = 0            # queries answered from cached embeddings
    invalidations: int = 0         # caches dropped (stale weights / explicit)
    cache_loads: int = 0           # warm restarts from a persisted cache
    pairs_scored: int = 0          # exact decoder pair evaluations (eligible)
    prefilter_pairs: int = 0       # approximate-mode prefilter comparisons
    screens: int = 0
    parallel_screens: int = 0      # queries answered by the process pool
    remote_screens: int = 0        # queries answered by remote shard workers
    registrations: int = 0         # drugs registered onto the live catalog
    appends_committed: int = 0     # store versions committed by appends
    compactions: int = 0           # store versions committed by compaction
    rollbacks: int = 0             # store versions committed by rollback
    gateway_requests: int = 0      # requests admitted to the gateway queue
    gateway_rejections: int = 0    # admission-control fast-fails (queue full)
    gateway_expirations: int = 0   # deadlines missed before/during scoring
    gateway_failures: int = 0      # admitted requests failed by an exception
    gateway_batches: int = 0       # coalesced service calls (flushes)
    gateway_epoch_swaps: int = 0   # flushes that crossed a catalog epoch
    gateway_batch_sizes: dict = field(default_factory=dict)
    gateway_latency: LatencyWindow = field(default_factory=LatencyWindow)
    registration_latency: LatencyWindow = field(
        default_factory=LatencyWindow)

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["gateway_batch_sizes"] = dict(self.gateway_batch_sizes)
        out["gateway_latency"] = self.gateway_latency.summary()
        out["registration_latency"] = self.registration_latency.summary()
        return out


# Cache versions are allocated from one process-wide monotonic counter, so a
# version number is never reused — not across mutations of one cache, and not
# across cache *instances* (a snapshot loaded over a warm service must never
# collide with a version the previous cache object already handed out, or
# derived structures keyed on the version would serve stale data).
_VERSION_COUNTER = itertools.count(1)


@dataclass
class EmbeddingCache:
    """Embedding matrix + encoder context, valid for one weights fingerprint.

    Alongside the raw embeddings the cache can hold the *candidate-side
    decoder projections* (``decoder.candidate_projections``), the per-
    (weights, catalog) precompute that makes screening queries one
    broadcast-add instead of a catalog-sized GEMM.  ``version`` is a
    globally unique token reassigned on every content change (from
    ``_VERSION_COUNTER``) so derived structures (the service's sharded
    catalog, an open shard store) know when to rebuild — and can never
    confuse two caches' states, even across :meth:`load` round-trips.
    """

    fingerprint: tuple | None = None
    context: EncoderContext | None = None
    embeddings: np.ndarray | None = None  # (num_catalog_drugs, hidden_dim)
    projections: dict[str, np.ndarray] | None = None  # candidate precompute
    # Low-rank prefilter factors ({"mean", "components"}) behind the
    # projections' "sketch" rows; per (weights, catalog) version like them.
    sketch_factors: dict[str, np.ndarray] | None = None
    catalog_digest: str | None = None     # set by save()/load() snapshots
    shard_manifest: str | None = None     # shard-store manifest path, if any
    version: int = 0                      # globally unique content token
    stats: ServiceStats = field(default_factory=ServiceStats)

    @property
    def valid(self) -> bool:
        return self.fingerprint is not None

    def matches(self, fingerprint: tuple) -> bool:
        return self.valid and self.fingerprint == fingerprint

    def drop(self) -> None:
        if self.valid:
            self.stats.invalidations += 1
        self.fingerprint = None
        self.context = None
        self.embeddings = None
        self.projections = None
        self.sketch_factors = None
        self.version = next(_VERSION_COUNTER)

    def install(self, fingerprint: tuple, context: EncoderContext,
                embeddings: np.ndarray,
                projections: dict[str, np.ndarray] | None = None) -> None:
        self.fingerprint = fingerprint
        self.context = context
        self.embeddings = embeddings
        self.projections = projections
        self.sketch_factors = None
        self.version = next(_VERSION_COUNTER)
        self.stats.corpus_encodes += 1

    def adopt(self, fingerprint: tuple, context: EncoderContext,
              embeddings: np.ndarray,
              projections: dict[str, np.ndarray] | None = None) -> None:
        """Install content that was *not* produced by an encode pass.

        Identical to :meth:`install` except ``corpus_encodes`` stays
        untouched — the cold-boot path (``DDIScreeningService.from_store``)
        adopts embeddings gathered from persisted shards, and its whole
        point is that no corpus encode ever ran.
        """
        self.fingerprint = fingerprint
        self.context = context
        self.embeddings = embeddings
        self.projections = projections
        self.sketch_factors = None
        self.version = next(_VERSION_COUNTER)

    def append_rows(self, rows: np.ndarray,
                    projections: dict[str, np.ndarray] | None = None) -> None:
        if not self.valid:
            raise RuntimeError("cannot append to an invalid cache")
        previous = self.embeddings
        self.embeddings = np.concatenate([self.embeddings, rows], axis=0)
        if self.projections is not None:
            if projections is None or set(projections) != set(self.projections):
                # No matching precompute for the new rows: fall back to a
                # lazy full recompute on the next ensure_projections call.
                self.projections = None
            else:
                # A projection that *is* the embedding matrix (the dot
                # decoder's identity precompute) stays an alias instead of
                # forking into a second full copy.
                self.projections = {
                    name: (self.embeddings if matrix is previous
                           else np.concatenate([matrix, projections[name]],
                                               axis=0))
                    for name, matrix in self.projections.items()}
        self.version = next(_VERSION_COUNTER)
        self.stats.incremental_encodes += len(rows)

    def truncate_rows(self, num_rows: int) -> None:
        """Drop every row past ``num_rows`` (the rollback counterpart of
        :meth:`append_rows`).

        Rows are append-only, so the surviving prefix is bitwise-identical
        to the cache content as of when row ``num_rows`` was the end of
        the catalog — which is what lets a service rollback restore exact
        screening for a retained store version.
        """
        if not self.valid:
            raise RuntimeError("cannot truncate an invalid cache")
        current = len(self.embeddings)
        if not 0 < num_rows <= current:
            raise ValueError(f"cannot truncate {current} cached rows "
                             f"to {num_rows}")
        previous = self.embeddings
        self.embeddings = np.ascontiguousarray(self.embeddings[:num_rows])
        if self.projections is not None:
            self.projections = {
                name: (self.embeddings if matrix is previous
                       else np.ascontiguousarray(matrix[:num_rows]))
                for name, matrix in self.projections.items()}
        self.version = next(_VERSION_COUNTER)

    def ensure_projections(self, decoder) -> dict[str, np.ndarray]:
        """Candidate projections for the cached embeddings, computing once.

        ``decoder`` is any module exposing ``candidate_projections`` (see
        :mod:`repro.core.decoder`).  Snapshots written before projections
        existed load with ``projections=None`` and recompute here.
        """
        if not self.valid:
            raise RuntimeError("cannot project an invalid cache")
        if self.projections is None:
            self.projections = decoder.candidate_projections(self.embeddings)
            self.sketch_factors = None  # factors described dropped rows
            self.version = next(_VERSION_COUNTER)
        return self.projections

    def ensure_sketch(self, decoder,
                      rank: int | None = None) -> dict[str, np.ndarray]:
        """Low-rank prefilter factors + ``"sketch"`` projection rows, once.

        ``decoder`` must expose ``sketch_factors`` / ``sketch_candidates``
        (the MLP decoder's PCA surrogate).  The sketch rows live *inside*
        the projections dict, so they ride shard blocking, persistence,
        and the shard store exactly like the exact-kernel projections;
        the factors ride alongside for query-side sketching.
        """
        projections = self.ensure_projections(decoder)
        if "sketch" in projections and self.sketch_factors is not None:
            return self.sketch_factors
        self.sketch_factors = decoder.sketch_factors(projections, rank=rank)
        projections["sketch"] = decoder.sketch_candidates(
            projections, self.sketch_factors)
        self.version = next(_VERSION_COUNTER)
        return self.sketch_factors

    # ------------------------------------------------------------------
    # Persistence: ``.npz`` with the weight fingerprint baked in, so a warm
    # restart of the screening service can skip the initial corpus encode —
    # and can *prove* the snapshot still matches the model it is serving.
    # ------------------------------------------------------------------
    def save(self, path: str | Path,
             catalog_digest: str | None = None) -> Path:
        """Write embeddings + encoder context + fingerprint as one ``.npz``.

        ``catalog_digest`` identifies the drug catalog the embedding rows
        belong to (the weights fingerprint alone cannot: one model serves
        many catalogs); loaders compare it before trusting the rows.
        """
        if not self.valid:
            raise RuntimeError("cannot save an invalid cache")
        # np.savez appends ".npz" itself when the suffix is missing; resolve
        # that here so the returned path is the file that actually exists.
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        arrays = {
            "fingerprint_json": np.asarray(
                _fingerprint_to_json(self.fingerprint)),
            "catalog_digest": np.asarray(
                catalog_digest if catalog_digest is not None
                else (self.catalog_digest or "")),
            "embeddings": self.embeddings,
            "num_context_layers": np.asarray(self.context.num_layers),
            # Shard-store manifest path (out-of-core tier), if one was
            # written for this cache's contents — lets a warm restart
            # reattach the memory-mapped shards automatically.
            "shard_manifest": np.asarray(self.shard_manifest or ""),
        }
        for index, layer in enumerate(self.context.layer_node_feats):
            arrays[f"context_layer_{index}"] = layer.data
        if self.projections is not None:
            arrays["projection_names"] = np.asarray(
                sorted(self.projections), dtype=str)
            # Identity projections (the dot decoder) alias the embedding
            # matrix — record the alias instead of writing the array twice.
            aliases = [name for name, matrix in self.projections.items()
                       if matrix is self.embeddings]
            arrays["projection_aliases"] = np.asarray(sorted(aliases),
                                                      dtype=str)
            for name in self.projections:
                if name not in aliases:
                    arrays[f"projection_{name}"] = self.projections[name]
        if self.sketch_factors is not None:
            arrays["sketch_mean"] = self.sketch_factors["mean"]
            arrays["sketch_components"] = self.sketch_factors["components"]
            if self.sketch_factors.get("std") is not None:
                arrays["sketch_std"] = self.sketch_factors["std"]
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "EmbeddingCache":
        """Read a :meth:`save` snapshot back (fresh stats, detached context)."""
        with np.load(Path(path), allow_pickle=False) as archive:
            fingerprint = _fingerprint_from_json(
                str(archive["fingerprint_json"]))
            digest = str(archive["catalog_digest"])
            num_layers = int(archive["num_context_layers"])
            context = EncoderContext(layer_node_feats=tuple(
                Tensor(archive[f"context_layer_{index}"])
                for index in range(num_layers)))
            embeddings = archive["embeddings"]
            manifest = (str(archive["shard_manifest"])
                        if "shard_manifest" in archive.files else "")
            projections = None
            if "projection_names" in archive.files:
                aliases = (set(str(a) for a in archive["projection_aliases"])
                           if "projection_aliases" in archive.files else set())
                projections = {str(name): (embeddings if str(name) in aliases
                                           else archive[f"projection_{name}"])
                               for name in archive["projection_names"]}
            sketch_factors = None
            if "sketch_mean" in archive.files:
                sketch_factors = {
                    "mean": archive["sketch_mean"],
                    "components": archive["sketch_components"]}
                if "sketch_std" in archive.files:
                    sketch_factors["std"] = archive["sketch_std"]
        cache = cls()
        cache.fingerprint = fingerprint
        cache.context = context
        cache.embeddings = embeddings
        cache.projections = projections
        cache.sketch_factors = sketch_factors
        cache.catalog_digest = digest or None
        cache.shard_manifest = manifest or None
        # A loaded snapshot is new content as far as derived structures are
        # concerned: give it a fresh globally unique version so it can never
        # collide with a version an earlier cache object handed out.
        cache.version = next(_VERSION_COUNTER)
        return cache
