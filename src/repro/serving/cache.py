"""Versioned drug-embedding cache for the DDI screening service.

The cache binds three things together: the catalog's embedding matrix, the
frozen :class:`~repro.core.encoder.EncoderContext` new drugs are encoded
against, and a *fingerprint* of the model weights that produced both.  Any
weight update (an optimizer step, ``load_state_dict``, a manual edit) changes
the fingerprint, which the service detects on the next query and rebuilds the
cache — stale embeddings are never served.

Two fingerprint modes are available:

- ``"fast"`` (default): per-parameter shape + sum + strided sample sums.
  O(params) numpy reductions, ~100x cheaper than hashing the raw bytes, and
  any realistic training update (dense optimizers touch every entry) flips
  it.  It is a checksum, not a cryptographic digest.
- ``"full"``: BLAKE2b over every parameter's bytes — exact, for deployments
  that would rather pay milliseconds per query than trust a checksum.

``DDIScreeningService.invalidate()`` remains the explicit, guaranteed path.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.encoder import EncoderContext
from ..nn import Module, Tensor

FINGERPRINT_MODES = ("fast", "full")


def _fingerprint_to_json(fingerprint: tuple) -> str:
    """Serialise a fingerprint tuple losslessly (floats survive via repr)."""
    def convert(value):
        if isinstance(value, tuple):
            return {"t": [convert(v) for v in value]}
        return value

    return json.dumps(convert(fingerprint))


def _fingerprint_from_json(payload: str) -> tuple:
    def restore(value):
        if isinstance(value, dict):
            return tuple(restore(v) for v in value["t"])
        return value

    return restore(json.loads(payload))


def weights_fingerprint(model: Module, mode: str = "fast") -> tuple:
    """A hashable token identifying the model's current weights."""
    if mode not in FINGERPRINT_MODES:
        raise ValueError(f"fingerprint mode must be one of "
                         f"{FINGERPRINT_MODES}, got {mode!r}")
    if mode == "full":
        digest = hashlib.blake2b(digest_size=16)
        for name, param in sorted(model.named_parameters()):
            digest.update(name.encode("utf-8"))
            digest.update(str(param.data.shape).encode("utf-8"))
            digest.update(np.ascontiguousarray(param.data).tobytes())
        return ("full", digest.hexdigest())
    parts: list[tuple] = []
    for name, param in sorted(model.named_parameters()):
        data = param.data
        flat = data.reshape(-1)
        parts.append((name, data.shape, float(flat.sum()),
                      float(flat[::7].sum()), float(flat[1::13].sum())))
    return ("fast", tuple(parts))


@dataclass
class ServiceStats:
    """Observability counters for one :class:`DDIScreeningService`."""

    corpus_encodes: int = 0        # full catalog-context rebuilds
    incremental_encodes: int = 0   # drugs embedded without a rebuild
    cache_hits: int = 0            # queries answered from cached embeddings
    invalidations: int = 0         # caches dropped (stale weights / explicit)
    cache_loads: int = 0           # warm restarts from a persisted cache
    pairs_scored: int = 0
    screens: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class EmbeddingCache:
    """Embedding matrix + encoder context, valid for one weights fingerprint."""

    fingerprint: tuple | None = None
    context: EncoderContext | None = None
    embeddings: np.ndarray | None = None  # (num_catalog_drugs, hidden_dim)
    catalog_digest: str | None = None     # set by save()/load() snapshots
    stats: ServiceStats = field(default_factory=ServiceStats)

    @property
    def valid(self) -> bool:
        return self.fingerprint is not None

    def matches(self, fingerprint: tuple) -> bool:
        return self.valid and self.fingerprint == fingerprint

    def drop(self) -> None:
        if self.valid:
            self.stats.invalidations += 1
        self.fingerprint = None
        self.context = None
        self.embeddings = None

    def install(self, fingerprint: tuple, context: EncoderContext,
                embeddings: np.ndarray) -> None:
        self.fingerprint = fingerprint
        self.context = context
        self.embeddings = embeddings
        self.stats.corpus_encodes += 1

    def append_rows(self, rows: np.ndarray) -> None:
        if not self.valid:
            raise RuntimeError("cannot append to an invalid cache")
        self.embeddings = np.concatenate([self.embeddings, rows], axis=0)
        self.stats.incremental_encodes += len(rows)

    # ------------------------------------------------------------------
    # Persistence: ``.npz`` with the weight fingerprint baked in, so a warm
    # restart of the screening service can skip the initial corpus encode —
    # and can *prove* the snapshot still matches the model it is serving.
    # ------------------------------------------------------------------
    def save(self, path: str | Path,
             catalog_digest: str | None = None) -> Path:
        """Write embeddings + encoder context + fingerprint as one ``.npz``.

        ``catalog_digest`` identifies the drug catalog the embedding rows
        belong to (the weights fingerprint alone cannot: one model serves
        many catalogs); loaders compare it before trusting the rows.
        """
        if not self.valid:
            raise RuntimeError("cannot save an invalid cache")
        # np.savez appends ".npz" itself when the suffix is missing; resolve
        # that here so the returned path is the file that actually exists.
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        arrays = {
            "fingerprint_json": np.asarray(
                _fingerprint_to_json(self.fingerprint)),
            "catalog_digest": np.asarray(
                catalog_digest if catalog_digest is not None
                else (self.catalog_digest or "")),
            "embeddings": self.embeddings,
            "num_context_layers": np.asarray(self.context.num_layers),
        }
        for index, layer in enumerate(self.context.layer_node_feats):
            arrays[f"context_layer_{index}"] = layer.data
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "EmbeddingCache":
        """Read a :meth:`save` snapshot back (fresh stats, detached context)."""
        with np.load(Path(path), allow_pickle=False) as archive:
            fingerprint = _fingerprint_from_json(
                str(archive["fingerprint_json"]))
            digest = str(archive["catalog_digest"])
            num_layers = int(archive["num_context_layers"])
            context = EncoderContext(layer_node_feats=tuple(
                Tensor(archive[f"context_layer_{index}"])
                for index in range(num_layers)))
            embeddings = archive["embeddings"]
        cache = cls()
        cache.fingerprint = fingerprint
        cache.context = context
        cache.embeddings = embeddings
        cache.catalog_digest = digest or None
        return cache
