"""Multi-process shard executor for the screening engine.

:class:`ParallelShardExecutor` fans the per-shard streaming top-k of a
persisted catalog (:class:`~repro.serving.store.ShardStore`) out to a
process pool and reduces the per-shard winners with the engine's
deterministic cross-shard merge.  The design keeps the parallel plan
bitwise-identical to the serial in-memory engine:

- Workers never receive catalog arrays.  The pool initializer hands each
  worker the *manifest path*; a worker assigned shard *i* memory-maps
  shard *i*'s files itself (``np.load(..., mmap_mode="r")``).  The only
  per-task payload is the picklable weight-free screening kernel
  (:func:`repro.core.decoder.make_screen_kernel`), the query-side
  projections (a few rows), and the per-query padded-k budget — a few
  kilobytes per screen.
- Every worker runs :func:`repro.serving.shards.screen_shard` — the same
  function the serial engine runs over its in-memory views — so per-shard
  results are bitwise-equal by construction, and the parent's
  :func:`~repro.serving.shards.finalize_screen` reduce (merge under the
  total (score desc, index asc) order, exclusion filter, truncate) is the
  same code in both plans.  ``Pool.map`` preserves shard order, so the
  merge sees shards in exactly the serial order.

The pool prefers the ``fork`` start method when the platform offers it
(workers inherit the imported interpreter; startup is milliseconds) and
falls back to the default (``spawn``) elsewhere — everything shipped to
workers is module-level and picklable either way.

Worker death is survived, not propagated: the pool is a
``concurrent.futures.ProcessPoolExecutor``, which raises
:class:`~concurrent.futures.process.BrokenProcessPool` when a worker is
killed mid-task (OOM killer, SIGKILL, segfault) instead of hanging.  On
breakage the executor discards the pool, rebuilds it once, and re-runs
the whole screen; if the rebuilt pool breaks too it degrades to serial
execution over the parent's memory-mapped store — same
:func:`~repro.serving.shards.screen_shard`, same bytes, so the degraded
answer is still bitwise-identical, just slower.  :attr:`stats` counts
rebuilds and serial fallbacks so operators can see the degradation.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..nn.functional import stable_sigmoid
from .shards import (finalize_screen, normalize_exclude, normalize_top_k,
                     screen_shard)
from .store import ShardStore


def exact_score_fn(kernel, query_proj: dict,
                   two_sided: bool = False) -> Callable:
    """The exact-mode probability kernel, shared by every execution plan.

    Serial in-memory screening, serial screening over a memory-mapped
    catalog, and pool workers all build their ``score_block`` callback
    here, from the same kernel object type — which is what makes their
    scores bitwise-comparable.
    """
    def exact_probs(_emb_block, proj_block):
        probs = stable_sigmoid(kernel.score_block(query_proj, proj_block))
        if two_sided:
            probs = 0.5 * (probs + stable_sigmoid(
                kernel.score_block(query_proj, proj_block, reverse=True)))
        return probs
    return exact_probs


# ---------------------------------------------------------------------------
# Worker-side machinery (module-level for picklability under spawn).
# ---------------------------------------------------------------------------
_WORKER_STORE: ShardStore | None = None


def _init_worker(manifest_path: str, mmap_mode: str | None) -> None:
    """Pool initializer: open the shard store once per worker process.

    Opened as a *reader* (``recover=False``, the default): only the
    owning service process recovers torn state, a pool worker must never
    mutate the directory it shares with its siblings.  The worker pins
    the catalog version committed at pool creation — the service closes
    the pool on every store mutation, so a fresh pool reopens here at
    the new version.
    """
    global _WORKER_STORE
    _WORKER_STORE = ShardStore(manifest_path, mmap_mode=mmap_mode)


def _screen_shard_task(task: tuple) -> list[tuple[np.ndarray, np.ndarray]]:
    """One unit of pool work: stream one memory-mapped shard's top-k."""
    shard_id, block_size, kernel, query_proj, two_sided, num_queries, \
        padded = task
    shard = _WORKER_STORE.open_shard(shard_id)
    score = exact_score_fn(kernel, query_proj, two_sided)
    return screen_shard(shard, block_size, score, num_queries, padded)


class ParallelShardExecutor:
    """Process-pool fan-out over the shards of one :class:`ShardStore`.

    The pool is created lazily on the first :meth:`screen` and reused —
    worker startup and the per-worker store open are paid once, not per
    query.  Call :meth:`close` (or use the executor as a context manager)
    to release the workers; the executor can be reused afterwards (a new
    pool spins up on demand).
    """

    def __init__(self, store: ShardStore | str | Path,
                 num_workers: int | None = None,
                 mmap_mode: str | None = "r",
                 start_method: str | None = None):
        if not isinstance(store, ShardStore):
            store = ShardStore(store, mmap_mode=mmap_mode)
        if num_workers is None:
            num_workers = min(os.cpu_count() or 1, store.num_shards)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._store = store
        self.num_workers = num_workers
        self._mmap_mode = mmap_mode
        self._start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        self.stats = {"pool_rebuilds": 0, "serial_fallbacks": 0}

    @property
    def store(self) -> ShardStore:
        return self._store

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            methods = mp.get_all_start_methods()
            method = self._start_method or (
                "fork" if "fork" in methods else None)
            ctx = mp.get_context(method)
            self._pool = ProcessPoolExecutor(
                max_workers=min(self.num_workers, self._store.num_shards),
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(str(self._store.path), self._mmap_mode))
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool without waiting on its corpses."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def screen(self, kernel, query_proj: dict, num_queries: int,
               top_k: int | Sequence[int],
               block_size: int | None = None,
               exclude: Sequence[np.ndarray] | np.ndarray | None = None,
               two_sided: bool = False
               ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Parallel exact-mode screen; bitwise-equal to the serial engine.

        Same contract as :meth:`ShardedEmbeddingCatalog.screen`: one
        ``(indices, probabilities)`` pair per query, sorted by
        (probability desc, index asc), exclusions removed; ``top_k`` may
        be one shared budget or a per-query sequence.
        """
        block_size = block_size or self._store.block_size
        top_ks = normalize_top_k(top_k, num_queries)
        excludes = normalize_exclude(exclude, num_queries)
        padded = [k + e.size if k > 0 else 0
                  for k, e in zip(top_ks, excludes)]
        tasks = [(shard_id, block_size, kernel, query_proj, two_sided,
                  num_queries, padded)
                 for shard_id in range(self._store.num_shards)]
        per_shard = self._run_tasks(tasks)
        return finalize_screen(per_shard, padded, excludes, top_ks)

    def _run_tasks(self, tasks: list[tuple]
                   ) -> list[list[tuple[np.ndarray, np.ndarray]]]:
        """Pool map with survival: rebuild once on a broken pool, then
        degrade to serial execution over the parent's mapped store.

        ``ProcessPoolExecutor.map`` preserves task order, and every
        recovery path screens the same shard bytes with the same
        ``screen_shard`` — results are bitwise-identical whichever plan
        answered.
        """
        for round_index in range(2):
            try:
                return list(self._ensure_pool().map(
                    _screen_shard_task, tasks))
            except BrokenProcessPool:
                self._discard_pool()
                if round_index == 0:
                    self.stats["pool_rebuilds"] += 1
        self.stats["serial_fallbacks"] += 1
        per_shard = []
        for (shard_id, block_size, kernel, query_proj, two_sided,
             num_queries, padded) in tasks:
            score = exact_score_fn(kernel, query_proj, two_sided)
            per_shard.append(screen_shard(
                self._store.open_shard(shard_id), block_size, score,
                num_queries, padded))
        return per_shard

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelShardExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __del__(self):
        # Best-effort cleanup if close() was never called; don't wait
        # because __del__ may run at interpreter shutdown.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
