"""Precision-tier helpers: dtype resolution, int8 quantization, gates.

The serving stack exposes three independent speed/accuracy dials
(:class:`~repro.serving.service.DDIScreeningService` composes them):

- ``precision="float32"`` — the whole blockwise screen (projections,
  score blocks, top-k state) runs in float32, halving memory bandwidth
  on the GEMM-bound hot loop.  Rankings are validated against the
  float64 reference with :func:`rank_agreement`.
- ``approx=True`` — sketch-GEMM shortlist + exact rerank; validated
  with :func:`recall_at_k`.
- ``quantize="int8"`` — the on-disk shard store holds symmetric
  per-column-scaled int8 rows (~8x smaller); the mmap prefilter streams
  int8 pages and the shortlist reranks against exact rows.

:func:`quantize_int8` / :func:`dequantize_int8` implement the store's
scheme; the round-trip error of any entry is bounded by half its
column's scale (rounding to the nearest code), which is what the
hypothesis invariant in the test suite pins down.
"""

from __future__ import annotations

import numpy as np

SERVING_PRECISIONS = ("float64", "float32")
QUANTIZATION_SCHEMES = ("int8",)


def resolve_precision(precision: str) -> np.dtype:
    """Validate a service ``precision=`` knob and return its numpy dtype."""
    if precision not in SERVING_PRECISIONS:
        raise ValueError(f"precision must be one of {SERVING_PRECISIONS}, "
                         f"got {precision!r}")
    return np.dtype(precision)


def quantize_int8(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-column int8 quantization: ``(codes, scales)``.

    ``scales[j] = max|column j| / 127`` (1.0 for all-zero columns, so
    dequantization is always a plain multiply) and
    ``codes = round(matrix / scales)`` — every entry round-trips within
    ``scales[j] / 2`` of its original value.  Scales are float64
    regardless of the input dtype; codes are int8.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("quantize_int8 expects a 2-D matrix")
    peak = np.abs(matrix).max(axis=0) if len(matrix) else \
        np.zeros(matrix.shape[1])
    scales = np.asarray(peak, dtype=np.float64) / 127.0
    scales[scales == 0.0] = 1.0
    codes = np.clip(np.round(matrix / scales), -127, 127).astype(np.int8)
    return codes, scales


def dequantize_int8(codes: np.ndarray, scales: np.ndarray,
                    dtype: np.dtype | str = np.float32) -> np.ndarray:
    """Reconstruct ``codes * scales`` in ``dtype`` (float32 by default)."""
    codes = np.asarray(codes)
    scales = np.asarray(scales, dtype=np.float64)
    return codes.astype(dtype) * scales.astype(dtype, copy=False)


def rank_agreement(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Fraction of the reference top-k set the candidate ranking kept.

    Order-insensitive set overlap — the gate for the float32 tier, where
    ULP-level score shifts may swap near-ties but must not change which
    candidates surface.  Returns 1.0 for two empty rankings.
    """
    reference = np.asarray(reference).reshape(-1)
    candidate = np.asarray(candidate).reshape(-1)
    if not reference.size:
        return 1.0
    overlap = np.intersect1d(reference, candidate).size
    return overlap / reference.size


def recall_at_k(reference: np.ndarray, candidate: np.ndarray,
                k: int | None = None) -> float:
    """Recall of the exact top-k inside an approximate ranking.

    ``k`` defaults to the reference length; both rankings are truncated
    to ``k`` before the overlap is measured.
    """
    reference = np.asarray(reference).reshape(-1)
    candidate = np.asarray(candidate).reshape(-1)
    if k is None:
        k = reference.size
    return rank_agreement(reference[:k], candidate[:k])


def max_abs_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Largest absolute elementwise difference (0.0 for empty inputs)."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if not reference.size:
        return 0.0
    return float(np.max(np.abs(reference - candidate)))
