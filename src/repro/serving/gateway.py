"""Asyncio serving gateway with dynamic micro-batching.

:class:`DDIScreeningService` scores a whole query batch in one catalog pass
(:meth:`~repro.serving.service.DDIScreeningService.screen_batch`), but a
live deployment does not receive batches — it receives many small
concurrent requests.  :class:`ScreeningGateway` is the front door that
turns one into the other:

1. Concurrent :meth:`screen` / :meth:`score_pairs` / :meth:`screen_smiles`
   awaits land in a FIFO queue as ``(payload, future)`` records.
2. A single batcher task collects them — flushing as soon as ``max_batch``
   requests are buffered or ``max_wait_ms`` has elapsed since the first
   unflushed arrival, whichever comes first (the classic buffer-and-flush
   loop; an idle gateway adds no latency beyond the wait window).
3. Each flush groups compatible requests (same request kind and screening
   flags) and issues **one** coalesced service call per group —
   ``screen_batch`` with per-query ``top_k``/``exclude``,
   ``screen_smiles_batch``, or a single vectorized ``score_pairs`` over
   the concatenated pair lists — then fans the per-request results back
   out through the futures.

Because the engine keeps an independent accumulator per query and projects
query rows individually, a screen answered inside a coalesced flush is
**bitwise-identical** to the same call made serially — including flushes
that mix different ``top_k`` values or exclusion lists.  Coalesced
``score_pairs`` results equal one vectorized call over the combined batch
(BLAS may batch GEMM rows differently than a serial per-request call;
differences, when any, are last-ulp).

Operational controls:

- **Admission control**: submissions beyond ``max_queue`` pending requests
  fast-fail with :class:`GatewayOverloaded` instead of growing the queue
  without bound (counted in ``stats.gateway_rejections``).
- **Per-request deadlines**: ``timeout_ms`` (or the gateway-wide
  ``default_timeout_ms``) is an end-to-end budget; a request whose
  deadline passes before its batch is scored fails with
  :class:`DeadlineExceeded` and is dropped from the flush, and one whose
  deadline elapses *during* scoring (a retrying remote screen, a
  degraded executor) fails the same way instead of returning late
  (``stats.gateway_expirations`` counts both).  Requests failed by a
  scoring exception are counted in ``stats.gateway_failures``.
- **Graceful drain**: :meth:`close` stops admitting new requests, flushes
  everything already queued, and only then stops the batcher; every
  accepted request gets its answer.  :meth:`drain` is the non-terminal
  variant (barrier: wait until the current backlog is flushed).
- **Isolation**: if a coalesced call raises, the batch is retried one
  request at a time so only the offending request sees the error —
  a malformed request cannot poison its flush neighbours.
- **Observability**: every admitted request is timed enqueue → response
  into ``ServiceStats.gateway_latency`` (p50/p99/QPS over a sliding
  window) and every flush into the ``gateway_batch_sizes`` histogram.

A weight update between enqueue and flush is safe: the coalesced service
call re-checks the cache fingerprint (``_ensure_fresh``) before scoring,
so every request in a flush is answered from one post-update cache
version — embeddings are never mixed across versions.

The gateway is single-event-loop: create it, submit to it, and close it
from one running loop.  Scoring runs inline on the loop (numpy releases
the GIL inside kernels, and the flush *is* the throughput path — handing
it to a thread would only add latency jitter for a CPU-bound call).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

import numpy as np

from .service import DDIScreeningService, ScreenHit


class GatewayClosed(RuntimeError):
    """Submitted to a gateway that is draining or already closed."""


class GatewayOverloaded(RuntimeError):
    """Admission-control fast-fail: the request queue is at ``max_queue``."""


class DeadlineExceeded(TimeoutError):
    """The request's deadline elapsed before its batch was scored."""


@dataclass
class _Request:
    """One queued caller: payload, result future, and timing bookkeeping."""

    key: tuple                    # coalescing key (kind + screening flags)
    payload: dict
    future: asyncio.Future
    enqueued_at: float            # loop-time of admission
    deadline: float | None        # absolute loop-time budget, if any


@dataclass
class _Barrier:
    """Queue sentinel for :meth:`ScreeningGateway.drain`."""

    future: asyncio.Future


_STOP = object()


class ScreeningGateway:
    """Dynamic micro-batching front door for a :class:`DDIScreeningService`.

    Parameters
    ----------
    service:
        The screening service to serve.  The gateway never bypasses its
        cache lifecycle — every flush goes through the public batch entry
        points, staleness checks included.
    max_batch:
        Flush as soon as this many requests are buffered.  ``1`` disables
        coalescing (every request is its own flush) — the unbatched
        baseline the benchmark compares against.
    max_wait_ms:
        Flush at most this long after the first unflushed arrival.  The
        knob trades tail latency for batch fill: ``0`` flushes whatever
        is queued without waiting.
    max_queue:
        Admission cap on pending requests; submissions beyond it raise
        :class:`GatewayOverloaded` immediately.
    default_timeout_ms:
        End-to-end deadline applied to requests that do not pass their
        own ``timeout_ms`` (``None`` = no deadline).
    """

    def __init__(self, service: DDIScreeningService,
                 max_batch: int = 32, max_wait_ms: float = 2.0,
                 max_queue: int = 1024,
                 default_timeout_ms: float | None = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if default_timeout_ms is not None and default_timeout_ms <= 0:
            raise ValueError("default_timeout_ms must be positive")
        self._service = service
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self.default_timeout_ms = default_timeout_ms
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._closed = False
        self._last_epoch: int | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def service(self) -> DDIScreeningService:
        return self._service

    @property
    def stats(self):
        """The service's :class:`~repro.serving.cache.ServiceStats`."""
        return self._service.stats

    @property
    def pending(self) -> int:
        """Requests admitted but not yet flushed."""
        return self._queue.qsize()

    def stats_snapshot(self) -> dict:
        """One JSON-ready dict of everything observable about serving.

        The service counters (including the living-catalog fields:
        ``registrations``, ``appends_committed``, ``compactions``,
        ``rollbacks``, ``registration_latency``, ``gateway_epoch_swaps``)
        plus the gateway's queue depth and the catalog epoch/version the
        next flush will be answered under.
        """
        snapshot = self._service.stats.as_dict()
        snapshot["pending"] = self.pending
        snapshot["catalog_epoch"] = self._service.catalog_epoch
        snapshot["catalog_version"] = self._service.catalog_version
        return snapshot

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    async def screen(self, query: int | str, top_k: int = 5,
                     exclude: tuple = (), symmetric: bool = False,
                     approx: bool = False, approx_oversample: int = 4,
                     parallel: bool | None = None,
                     timeout_ms: float | None = None) -> list[ScreenHit]:
        """Batched :meth:`DDIScreeningService.screen`; same result, awaited.

        Requests sharing the same flags (``symmetric`` / ``approx`` /
        ``approx_oversample`` / ``parallel``) coalesce into one
        ``screen_batch`` flush even when their ``top_k`` or ``exclude``
        differ — results are bitwise what a serial ``screen`` returns.
        """
        key = ("screen", bool(symmetric), bool(approx),
               int(approx_oversample), parallel)
        payload = {"query": query, "top_k": top_k,
                   "exclude": tuple(exclude)}
        return await self._submit(key, payload, timeout_ms)

    async def screen_smiles(self, smiles: str, top_k: int = 5,
                            symmetric: bool = False,
                            allow_unknown: bool = False,
                            approx: bool = False,
                            approx_oversample: int = 4,
                            parallel: bool | None = None,
                            timeout_ms: float | None = None
                            ) -> list[ScreenHit]:
        """Batched transient-SMILES screening (one encode per flush)."""
        key = ("smiles", bool(symmetric), bool(approx),
               int(approx_oversample), parallel, bool(allow_unknown))
        payload = {"smiles": smiles, "top_k": top_k}
        return await self._submit(key, payload, timeout_ms)

    async def score_pairs(self, pairs: np.ndarray,
                          timeout_ms: float | None = None) -> np.ndarray:
        """Batched :meth:`DDIScreeningService.score_pairs`.

        All queued pair lists are concatenated into a single vectorized
        decoder call; each caller gets back its own slice.  Pairs are
        validated here, synchronously, so a malformed request fails the
        caller immediately instead of travelling to the flush.
        """
        checked = self._service._check_pairs(pairs)
        payload = {"pairs": checked}
        return await self._submit(("pairs",), payload, timeout_ms)

    async def drain(self) -> None:
        """Wait until every request admitted so far has been answered.

        The barrier goes through the queue even when the queue looks
        empty: requests the batcher has already collected into its
        in-memory buffer are still unanswered, and the barrier is what
        forces that buffer to flush.
        """
        if self._task is None or self._task.done():
            return
        barrier = _Barrier(asyncio.get_running_loop().create_future())
        self._queue.put_nowait(barrier)
        await barrier.future

    async def close(self) -> None:
        """Graceful shutdown: reject new work, flush the backlog, stop.

        Every request admitted before ``close`` still gets its result
        (or its error); only then does the batcher task exit.  Idempotent.
        """
        already_closed, self._closed = self._closed, True
        if self._task is None:
            return
        if not already_closed and not self._task.done():
            self._queue.put_nowait(_STOP)
        await asyncio.shield(self._task)
        self._task = None

    async def __aenter__(self) -> "ScreeningGateway":
        return self

    async def __aexit__(self, *exc) -> bool:
        await self.close()
        return False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def _submit(self, key: tuple, payload: dict,
                      timeout_ms: float | None) -> Any:
        if self._closed:
            raise GatewayClosed("gateway is closed to new requests")
        stats = self._service.stats
        if self._queue.qsize() >= self.max_queue:
            stats.gateway_rejections += 1
            raise GatewayOverloaded(
                f"gateway queue is full ({self.max_queue} pending)")
        loop = asyncio.get_running_loop()
        if self._task is None or self._task.done():
            self._task = loop.create_task(self._run())
        if timeout_ms is None:
            timeout_ms = self.default_timeout_ms
        if timeout_ms is not None and timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive")
        now = loop.time()
        request = _Request(
            key=key, payload=payload, future=loop.create_future(),
            enqueued_at=now,
            deadline=None if timeout_ms is None else now + timeout_ms / 1e3)
        self._queue.put_nowait(request)
        stats.gateway_requests += 1
        return await request.future

    # ------------------------------------------------------------------
    # Batcher
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        """Buffer-and-flush loop: one iteration collects and scores a batch."""
        loop = asyncio.get_running_loop()
        max_wait = self.max_wait_ms / 1e3
        while True:
            item = await self._queue.get()
            stop = item is _STOP
            barriers: list[_Barrier] = []
            batch: list[_Request] = []
            if isinstance(item, _Barrier):
                barriers.append(item)
            elif isinstance(item, _Request):
                batch.append(item)
            # Collect until the batch is full, the wait window closes, or
            # a control sentinel forces a flush point.
            flush_at = loop.time() + max_wait
            while not stop and not barriers and len(batch) < self.max_batch:
                if max_wait <= 0 or not batch:
                    if self._queue.empty():
                        break
                    item = self._queue.get_nowait()
                else:
                    remaining = flush_at - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(self._queue.get(),
                                                      remaining)
                    except asyncio.TimeoutError:
                        break
                if item is _STOP:
                    stop = True
                elif isinstance(item, _Barrier):
                    barriers.append(item)
                else:
                    batch.append(item)
            if batch:
                self._flush(batch)
            for barrier in barriers:
                if not barrier.future.done():
                    barrier.future.set_result(None)
            if stop:
                # Drain whatever arrived after the stop sentinel was cut
                # in front of (nothing new is admitted once closed).
                leftovers: list[_Request] = []
                while not self._queue.empty():
                    item = self._queue.get_nowait()
                    if isinstance(item, _Request):
                        leftovers.append(item)
                    elif isinstance(item, _Barrier):
                        if not item.future.done():
                            item.future.set_result(None)
                if leftovers:
                    self._flush(leftovers)
                return

    def _flush(self, batch: list[_Request]) -> None:
        """Score one collected batch: expire, group, coalesce, fan out."""
        loop = asyncio.get_running_loop()
        stats = self._service.stats
        now = loop.time()
        live: list[_Request] = []
        for request in batch:
            if request.future.done():
                continue  # caller cancelled while queued
            if request.deadline is not None and now > request.deadline:
                stats.gateway_expirations += 1
                request.future.set_exception(DeadlineExceeded(
                    "request deadline elapsed before its batch was scored"))
                continue
            live.append(request)
        groups: dict[tuple, list[_Request]] = {}
        for request in live:
            groups.setdefault(request.key, []).append(request)
        for key, group in groups.items():
            self._flush_group(loop, key, group)

    def _expire_if_late(self, request: _Request, now: float) -> bool:
        """Fail ``request`` with :class:`DeadlineExceeded` if it is overdue.

        Used both before and *after* scoring: a deadline is an end-to-end
        budget, so time burned inside a slow flush (a retrying remote
        screen, a degraded executor) counts against it too — the caller
        must never receive a result after the budget it asked for.
        """
        if request.future.done():
            return True
        if request.deadline is not None and now > request.deadline:
            self._service.stats.gateway_expirations += 1
            request.future.set_exception(DeadlineExceeded(
                "request deadline elapsed during scoring"))
            return True
        return False

    def _flush_group(self, loop, key: tuple,
                     group: list[_Request]) -> None:
        stats = self._service.stats
        stats.gateway_batches += 1
        stats.gateway_batch_sizes[len(group)] = \
            stats.gateway_batch_sizes.get(len(group), 0) + 1
        # Living-catalog observability: this flush is answered under the
        # service's current catalog epoch; when it differs from the last
        # flush's, live traffic just crossed a catalog version boundary
        # (a registration, rollback, or rebuild landed in between).
        epoch = self._service.catalog_epoch
        if self._last_epoch is not None and epoch != self._last_epoch:
            stats.gateway_epoch_swaps += 1
        self._last_epoch = epoch
        try:
            results = self._score_group(key, group)
        except Exception:
            # Isolate the poison request: re-score one at a time so a
            # malformed request fails alone, not its flush neighbours.
            results = None
        if results is None:
            for request in group:
                if self._expire_if_late(request, loop.time()):
                    continue
                try:
                    value = self._score_group(key, [request])[0]
                except Exception as exc:  # noqa: BLE001 — forwarded
                    if not request.future.done():
                        stats.gateway_failures += 1
                        request.future.set_exception(exc)
                else:
                    if not self._expire_if_late(request, loop.time()):
                        request.future.set_result(value)
        else:
            now = loop.time()
            for request, value in zip(group, results):
                if not self._expire_if_late(request, now):
                    request.future.set_result(value)
        done = loop.time()
        for request in group:
            stats.gateway_latency.record(done - request.enqueued_at, done)

    def _score_group(self, key: tuple,
                     group: list[_Request]) -> list[Any]:
        """One coalesced service call for a group of compatible requests."""
        kind = key[0]
        if kind == "screen":
            _, symmetric, approx, oversample, parallel = key
            return self._service.screen_batch(
                [r.payload["query"] for r in group],
                top_k=[r.payload["top_k"] for r in group],
                exclude=[r.payload["exclude"] for r in group],
                symmetric=symmetric, approx=approx,
                approx_oversample=oversample, parallel=parallel)
        if kind == "smiles":
            _, symmetric, approx, oversample, parallel, allow_unknown = key
            return self._service.screen_smiles_batch(
                [r.payload["smiles"] for r in group],
                top_k=[r.payload["top_k"] for r in group],
                symmetric=symmetric, allow_unknown=allow_unknown,
                approx=approx, approx_oversample=oversample,
                parallel=parallel)
        arrays = [r.payload["pairs"] for r in group]
        probs = self._service.score_pairs(np.concatenate(arrays, axis=0))
        out, offset = [], 0
        for pairs in arrays:
            out.append(probs[offset:offset + len(pairs)].copy())
            offset += len(pairs)
        return out
